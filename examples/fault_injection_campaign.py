#!/usr/bin/env python3
"""A miniature Section V fault-injection campaign.

Trains a quick transition detector, then injects single-bit register flips
into live hypervisor executions across the six-benchmark suite and prints the
Fig. 8 / Fig. 9 / Fig. 10 / Table II summaries.

Pass ``--injections 30000 --scale 3`` to run at the paper's campaign size,
and ``--jobs 4`` to fan the campaign out over the sharded engine (results
are bit-identical to the serial run).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    LatencyStudy,
    coverage_by_benchmark,
    long_latency_breakdown,
    undetected_breakdown,
)
from repro.engine import CampaignEngine, EngineTelemetry, stderr_progress
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.faults.outcomes import DetectionTechnique
from repro.xentry import (
    TrainingConfig,
    VMTransitionDetector,
    collect_dataset,
    train_and_evaluate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--injections", type=int, default=6000,
                        help="campaign size (paper: 30,000)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="training sample-count multiplier")
    parser.add_argument("--seed", type=int, default=77)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (engine fan-out; 1 = serial)")
    args = parser.parse_args()

    print("=== training the transition detector ===")
    t0 = time.time()
    train = collect_dataset(
        TrainingConfig(fault_free_runs=int(2000 * args.scale),
                       injection_runs=int(7800 * args.scale), seed=5),
        stream="train",
    )
    test = collect_dataset(
        TrainingConfig(fault_free_runs=int(1000 * args.scale),
                       injection_runs=int(3900 * args.scale), seed=5),
        stream="test",
    )
    model = train_and_evaluate(train, test, algorithm="random_tree", seed=3)
    print(f"random tree: accuracy {model.accuracy:.1%}, "
          f"FP rate {model.false_positive_rate:.2%} "
          f"({time.time() - t0:.0f}s)")

    print(f"\n=== running {args.injections} injections ===")
    detector = VMTransitionDetector.from_classifier(model.classifier)
    config = CampaignConfig(n_injections=args.injections, seed=args.seed)
    if args.jobs > 1:
        telemetry = EngineTelemetry()
        telemetry.subscribe(stderr_progress(telemetry))
        result = CampaignEngine(
            config, jobs=args.jobs, n_shards=2 * args.jobs, detector=detector,
            telemetry=telemetry,
        ).run()
    else:
        campaign = FaultInjectionCampaign(config, detector=detector)

        def progress(done: int, total: int) -> None:
            sys.stdout.write(f"\r  {done}/{total} trials")
            sys.stdout.flush()

        result = campaign.run(progress=progress)
    print(f"\n{len(result)} trials, {len(result.manifested)} manifested "
          f"failures/corruptions ({time.time() - t0:.0f}s total)")

    print("\n=== Fig. 8: overall detection results ===")
    for name, cov in coverage_by_benchmark(result.records).items():
        print(cov.row(name))

    print("\n=== Fig. 9: long-latency errors by consequence ===")
    for klass, (detected, total) in long_latency_breakdown(result.records).items():
        rate = f"{detected / total:.1%}" if total else "---"
        print(f"  {klass.value:<16} detected {detected}/{total} ({rate})")

    print("\n=== Fig. 10: detection latency ===")
    study = LatencyStudy.from_records(result.records)
    print(study.table([100, 300, 500, 700, 1000]))
    within = study.fraction_within(DetectionTechnique.VM_TRANSITION, 700)
    print(f"  transition detections within 700 instructions: {within:.1%} "
          f"(paper: ~95%)")

    print("\n=== Table II: undetected faults ===")
    for kind, share in undetected_breakdown(result.records).items():
        print(f"  {kind.value:<16} {share:6.1%}")


if __name__ == "__main__":
    main()
