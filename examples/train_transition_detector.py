#!/usr/bin/env python3
"""Build the VM transition detector end to end (Section III.B).

Collects labeled feature vectors from fault-free runs and fault-injection
runs on the simulated platform, trains both tree algorithms the paper
compares (plain decision tree vs WEKA-style random tree), evaluates on a
held-out injection set, compiles the winner into the integer-comparison rule
table deployed at every VM entry, and demonstrates a live detection.

Takes about a minute at the default scale; pass ``--scale 3`` for the
paper's ~23,400-injection training campaign.
"""

from __future__ import annotations

import argparse
import time

from repro.faults import FaultSpec, capture_golden, run_trial
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.ml import compile_tree
from repro.xentry import (
    TrainingConfig,
    VMTransitionDetector,
    collect_dataset,
    train_and_evaluate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="sample-count multiplier (3 ~= paper scale)")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    def scaled(n: int) -> int:
        return max(50, int(n * args.scale))

    print("=== collecting training data (correct + incorrect executions) ===")
    t0 = time.time()
    train = collect_dataset(
        TrainingConfig(fault_free_runs=scaled(2000),
                       injection_runs=scaled(7800), seed=args.seed),
        stream="train",
    )
    test = collect_dataset(
        TrainingConfig(fault_free_runs=scaled(1000),
                       injection_runs=scaled(3900), seed=args.seed),
        stream="test",
    )
    print(f"collected in {time.time() - t0:.0f}s")
    print(f"train: {train.describe()}")
    print(f"test:  {test.describe()}")
    print("(paper: 12,024 training samples / 6,596 test samples)")

    print("\n=== training both tree algorithms ===")
    models = {
        algo: train_and_evaluate(train, test, algorithm=algo, seed=3)
        for algo in ("decision_tree", "random_tree")
    }
    for model in models.values():
        print()
        print(model.confusion.report(model.name))
    print("\n(paper: random tree 98.6% vs decision tree 96.1%, FP rate 0.7%)")

    print("\n=== compiling the deployed rules ===")
    winner = models["random_tree"]
    rules = compile_tree(winner.classifier)
    print(f"{rules.n_nodes} nodes, worst-case {rules.max_depth} integer "
          f"comparisons per VM entry")
    print("\nfirst rules of the tree:")
    print("\n".join(winner.classifier.rules_text().splitlines()[:12]))

    print("\n=== live detection demo ===")
    detector = VMTransitionDetector.from_classifier(winner.classifier)
    hv = XenHypervisor(seed=args.seed)
    activation = Activation(
        vmer=REGISTRY.by_name("grant_table_op").vmer, args=(16, 3), domain_id=1,
    )
    golden = capture_golden(hv, activation)
    # Stretch the rep movs count (the Fig. 5a scenario) and let the detector
    # judge the perturbed feature vector at VM entry.  Sweep injection points
    # so the flip lands while the count register is live.
    for bit in range(5, 10):
        record = next(
            (
                r
                for idx in range(golden.result.instructions)
                if (r := run_trial(hv, activation, FaultSpec("rcx", bit, idx),
                                   detector=detector, golden=golden)).manifested
            ),
            None,
        )
        if record is None:
            print(f"rcx bit {bit:>2}: masked at every injection point")
            continue
        print(f"rcx bit {bit:>2}: consequence={record.failure_class.value:<18} "
              f"detected_by={record.detected_by.value}")
    print(f"\ndetector stats: {detector.classifications} classifications, "
          f"{detector.mean_comparisons:.1f} comparisons on average")


if __name__ == "__main__":
    main()
