#!/usr/bin/env python3
"""Fault-free overhead studies: Fig. 3, Fig. 7 and Fig. 11 in one script.

No fault injection here — this is the performance side of the evaluation:
how often the hypervisor is activated per benchmark (Fig. 3), what Xentry's
detection costs per activation add up to (Fig. 7), and what the assumed
recovery scheme would cost given the classifier's false-positive rate
(Fig. 11).
"""

from __future__ import annotations

from repro.analysis import BoxStats, PerfOverheadModel
from repro.system import PlatformConfig, VirtualPlatform
from repro.workloads import BENCHMARKS, VirtMode, WorkloadGenerator
from repro.xentry import RecoveryCostModel, estimate_recovery_overhead


def fig3() -> None:
    print("=== Fig. 3: hypervisor activation frequency ===")
    header = (f"{'benchmark':<12} {'min':>10} {'q25':>10} {'median':>10} "
              f"{'q75':>10} {'max':>10}")
    for mode in VirtMode:
        print(f"\n[{mode.value}]")
        print(header)
        for profile in BENCHMARKS:
            generator = WorkloadGenerator(profile, mode, seed=3)
            stats = BoxStats.from_samples(generator.rate_per_second(600))
            print(f"{profile.name:<12} {stats.minimum:>10,.0f} {stats.q25:>10,.0f} "
                  f"{stats.median:>10,.0f} {stats.q75:>10,.0f} {stats.maximum:>10,.0f}")
    print("\n(paper: PV 5k-100k/s, freqmine peaking ~650k/s; HVM mostly 2k-10k/s)")


def fig7() -> None:
    print("\n=== Fig. 7: Xentry fault-free performance overhead ===")
    model = PerfOverheadModel()
    total = 0.0
    for profile in BENCHMARKS:
        study = model.study(profile, seed=4)
        total += study.mean_full
        print(f"{profile.name:<12} runtime-only {study.mean_runtime_only:7.3%}   "
              f"full avg {study.mean_full:7.3%}   full max {study.max_full:7.3%}")
    print(f"{'AVG':<12} {'':>22} full avg {total / len(BENCHMARKS):7.3%}")
    print("(paper: 2.5% average; bzip2 0.19% average; postmark 11.7% max)")


def fig11() -> None:
    print("\n=== Fig. 11: recovery overhead with false positives ===")
    platform = VirtualPlatform(PlatformConfig(seed=8))
    mean_instr = sum(
        platform.mean_handler_instructions(p.name, n_activations=100)
        for p in BENCHMARKS
    ) / len(BENCHMARKS)
    model = RecoveryCostModel(handler_ns=mean_instr / 2.13)  # Xeon E5506 clock
    print(f"(measured mean handler length: {mean_instr:.0f} instructions; "
          f"copy cost {model.copy_ns:.0f} ns; FP rate {model.false_positive_rate:.1%})")
    total = 0.0
    for profile in BENCHMARKS:
        study = estimate_recovery_overhead(profile, model=model, seed=3)
        total += study.mean
        print(f"{profile.name:<12} mean {study.mean:7.3%}   max {study.max:7.3%}   "
              f"spread {study.spread:9.5%}")
    print(f"{'AVG':<12} mean {total / len(BENCHMARKS):7.3%}")
    print("(paper: 2.7% average; mcf/bzip2 ~1.6%; postmark 6.3%; spread < 0.03%)")


if __name__ == "__main__":
    fig3()
    fig7()
    fig11()
