#!/usr/bin/env python3
"""A guided tour of the paper's error-propagation scenarios.

Walks Fig. 2 (short- vs long-latency propagation), Fig. 5a (extra dynamic
instructions from a corrupted ``rep movs`` counter), Fig. 5b (a valid but
incorrect branch in the event-channel path), and the Table II fault surfaces
(time values and stack values) — each reproduced concretely on the simulated
hypervisor with before/after evidence.
"""

from __future__ import annotations

from repro.faults import FaultSpec, capture_golden, compute_divergence
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine import AssertionViolation, HardwareException
from repro.errors import SimulationLimitExceeded


def run_faulty(hv, activation, golden, fault):
    """Replay the activation with the fault; return (result-or-exc, divergence)."""
    hv.restore(golden.checkpoint)
    hv.cpu.schedule_register_flip(fault.dynamic_index, fault.register, fault.bit)
    try:
        result = hv.execute(activation)
    except (HardwareException, AssertionViolation, SimulationLimitExceeded) as exc:
        return exc, None
    return result, compute_divergence(hv, activation, golden, result)


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    hv = XenHypervisor(seed=9)

    banner("Fig. 2 path 1 — short-latency error: fails inside host mode")
    act = Activation(vmer=REGISTRY.by_name("mmu_update").vmer, args=(8, 1), domain_id=1)
    golden = capture_golden(hv, act)
    outcome, _ = run_faulty(hv, act, golden, FaultSpec("rbp", 41, 3))
    print(f"flip bit 41 of rbp (the per-CPU globals base) at instruction 3:")
    print(f"  -> {outcome}")
    print("The error never crosses VM entry: a fatal page fault ends the")
    print("hypervisor execution — isolated if recovery re-initializes the host.")

    banner("Fig. 2 path 2 — long-latency error: crosses VM entry silently")
    hv.reset()
    act = Activation(vmer=REGISTRY.by_name("hvm_cpuid").vmer, args=(1,), domain_id=2)
    golden = capture_golden(hv, act)
    vcpu = hv.vcpu(2)
    golden_eax = vcpu.rax
    # Find a flip in the emulated result register that survives to the guest.
    for idx in range(golden.result.instructions):
        result, div = run_faulty(hv, act, golden, FaultSpec("rax", 13, idx))
        if div is not None and div.output_diffs and not div.path_changed:
            print(f"flip bit 13 of rax at instruction {idx} of the cpuid emulation:")
            print(f"  golden guest eax: {golden_eax:#x}")
            print(f"  faulty guest eax: {vcpu.rax:#x}")
            print(f"  dynamic path changed: {div.path_changed}")
            print("The hypervisor finishes normally; the guest consumes a wrong")
            print("cpuid result much later — the Section II.A example verbatim.")
            break

    banner("Fig. 5a — extra code: corrupted rep movs counter")
    hv.reset()
    act = Activation(vmer=REGISTRY.by_name("grant_table_op").vmer, args=(12, 2), domain_id=1)
    golden = capture_golden(hv, act)
    for idx in range(golden.result.instructions):
        result, div = run_faulty(hv, act, golden, FaultSpec("rcx", 6, idx))
        if not isinstance(result, Exception) and result.instructions > golden.result.instructions:
            print(f"flip bit 6 of rcx (the copy counter) at instruction {idx}:")
            print(f"  golden: {golden.result.instructions} instructions, "
                  f"RT/BR/RM/WM = {golden.result.features[1:]}")
            print(f"  faulty: {result.instructions} instructions, "
                  f"RT/BR/RM/WM = {result.features[1:]}")
            print("Extra dynamic instructions stretch every counter — exactly the")
            print("signature the VM transition classifier keys on.")
            break

    banner("Fig. 5b — incorrect branch target: event channel path")
    hv.reset()
    act = Activation(vmer=REGISTRY.by_name("event_channel_op").vmer, args=(9, 0), domain_id=1)
    golden = capture_golden(hv, act)
    dom = hv.domain(1)
    # Flip ZF right at the test/je pair inside evtchn_set_pending.
    found = False
    for idx in range(golden.result.instructions):
        result, div = run_faulty(hv, act, golden, FaultSpec("rflags", 6, idx))
        if div is not None and div.path_changed:
            print(f"flip ZF at instruction {idx} of evtchn_set_pending:")
            print(f"  port 9 pending after faulty run: {dom.is_port_pending(9)}")
            print(f"  vcpu marked pending:             {dom.vcpu(0).pending}")
            print(f"  instructions: {golden.result.instructions} -> {result.instructions}")
            print("A valid-but-wrong branch: vcpu_mark_events_pending is skipped")
            print("(or taken spuriously) — undetectable by control-flow *validity*")
            print("checks, but visible in the dynamic execution pattern.")
            found = True
            break
    if not found:
        print("(no ZF flip changed the path for this activation)")

    banner("Table II — time values: branch-free delivery, invisible to features")
    hv.reset()
    act = Activation(vmer=REGISTRY.by_name("set_timer_op").vmer, args=(500,), domain_id=1)
    golden = capture_golden(hv, act)
    for idx in range(golden.result.instructions):
        result, div = run_faulty(hv, act, golden, FaultSpec("rax", 19, idx))
        if div is not None and div.silent_data_only:
            kinds = {k.value for _, _, k, _, _ in div.output_diffs}
            print(f"flip bit 19 of rax at instruction {idx} of time delivery:")
            print(f"  corrupted output kinds: {sorted(kinds)}")
            print(f"  features changed: {div.features_changed}  "
                  f"path changed: {div.path_changed}")
            print("The guest receives a wrong time value while every detection")
            print("feature stays identical — the dominant Table II bucket (53%).")
            break

    banner("Table II — stack values: context save/restore corruption")
    hv.reset()
    act = Activation(vmer=REGISTRY.by_name("sched_op").vmer, args=(0, 0), domain_id=1)
    golden = capture_golden(hv, act)
    vcpu = hv.vcpu(1)
    for idx in range(golden.result.instructions):
        result, div = run_faulty(hv, act, golden, FaultSpec("r10", 21, idx))
        if div is not None and div.output_diffs and not div.path_changed:
            print(f"flip bit 21 of r10 at instruction {idx} of the context switch:")
            print(f"  guest register frame diff: "
                  f"{[(hex(a), hex(w), hex(n)) for a, _, _, w, n in div.output_diffs][:2]}")
            print("The corrupted value rode the stack through save/restore and")
            print("lands back in the guest's registers after VM entry.")
            break


if __name__ == "__main__":
    main()
