#!/usr/bin/env python3
"""Quickstart: boot the simulated platform, inject a soft error, watch
Xentry catch it.

Runs in a few seconds:

1. boot a Xen-like hypervisor hosting Dom0 + two para-virtualized guests;
2. drive a burst of postmark-like hypervisor activations under Xentry's
   runtime detection;
3. inject single-bit flips into live hypervisor executions and report what
   detects them.
"""

from __future__ import annotations

from repro.faults import FaultSpec, capture_golden, run_trial
from repro.hypervisor import Activation, REGISTRY
from repro.system import PlatformConfig, VirtualPlatform
from repro.workloads import VirtMode


def main() -> None:
    print("=== booting the simulated platform ===")
    platform = VirtualPlatform(PlatformConfig(n_domains=3, seed=42))
    hv = platform.hypervisor
    print(f"hypervisor text: {hv.program.size:,} bytes, "
          f"{len(hv.program):,} instructions, "
          f"{len(REGISTRY)} interceptable exit reasons")

    print("\n=== fault-free workload under Xentry ===")
    xentry = platform.deploy_xentry()
    outcomes = platform.run_workload("postmark", mode=VirtMode.PV, n_activations=200)
    clean = sum(1 for o in outcomes if o.vm_entry_permitted)
    print(f"{len(outcomes)} activations protected, {clean} clean "
          f"(error-free execution never trips a detector)")

    print("\n=== one soft error, end to end ===")
    # A cpuid trap-and-emulate activation: the Section II.A long-latency
    # example.  Flip a bit in the hypervisor's pointer to the globals block
    # right in the middle of the handler.
    activation = Activation(
        vmer=REGISTRY.by_name("general_protection").vmer,
        args=(2, 13), domain_id=1, seq=7,
    )
    hv.reset()
    golden = capture_golden(hv, activation)
    print(f"golden execution: {golden.result.instructions} instructions, "
          f"features {golden.result.features}")

    # The interrupt path carries the Listing 1 trap-number assertions.
    irq_activation = Activation(
        vmer=REGISTRY.by_name("do_irq").vmer, args=(5,), domain_id=1, seq=8,
    )
    irq_golden = capture_golden(hv, irq_activation)

    def find_fault(act, gold, predicate, candidates):
        """Sweep candidate fault specs until one matches the predicate."""
        for fault in candidates:
            record = run_trial(hv, act, fault, golden=gold, benchmark="demo")
            if predicate(record):
                return fault, record
        raise RuntimeError("no matching fault found")

    n = golden.result.instructions
    n_irq = irq_golden.result.instructions
    demos = [
        (
            "corrupted pointer -> fatal page fault (Fig. 2 path 1)",
            find_fault(
                activation, golden,
                lambda r: r.detected_by.value == "hw_exception",
                (FaultSpec("rbp", bit, idx) for idx in range(n) for bit in (40, 44)),
            ),
        ),
        (
            "corrupted guest-bound data -> silent data corruption (Fig. 2 path 2)",
            find_fault(
                activation, golden,
                lambda r: r.failure_class.value == "app_sdc",
                (FaultSpec(reg, bit, idx)
                 for idx in range(n)
                 for reg in ("rax", "rbx", "rdx")
                 for bit in (3, 17, 29)),
            ),
        ),
        (
            "corrupted trap number -> Listing 1 assertion",
            find_fault(
                irq_activation, irq_golden,
                lambda r: r.detected_by.value == "sw_assertion",
                (FaultSpec("rdi", bit, idx)
                 for idx in range(n_irq)
                 for bit in range(6, 40, 4)),
            ),
        ),
    ]
    for label, (fault, record) in demos:
        print(f"\n  scenario: {label}")
        print(f"    injected: bit {fault.bit} of {fault.register} "
              f"before dynamic instruction {fault.dynamic_index}")
        latency = (
            f"{record.detection_latency} instructions"
            if record.detection_latency is not None
            else "n/a"
        )
        print(f"    consequence if undetected: {record.failure_class.value}")
        print(f"    detected by:               {record.detected_by.value}")
        print(f"    detection latency:         {latency}")
        if record.detail:
            print(f"    detail:                    {record.detail}")

    print("\n=== Xentry runtime statistics ===")
    print(f"activations protected: {xentry.activations_protected}")
    for technique, count in xentry.detection_counts().items():
        print(f"  {technique.value}: {count}")


if __name__ == "__main__":
    main()
