#!/usr/bin/env python3
"""Detection-to-recovery, end to end (the Section VI scheme, executed).

The paper prices a copy-at-exit / restore-and-re-execute recovery scheme but
leaves the implementation as future work; ``repro.xentry.RecoveryManager``
implements it.  This demo drives the full loop with an *executable* guest
application consuming the results:

1. a guest issues cpuid-emulation and event-channel activations;
2. soft errors strike the hypervisor mid-handler;
3. Xentry detects (hardware exception / assertion), recovery restores the
   critical-state copy and re-executes;
4. the guest application's digest proves it observed exactly the fault-free
   results.
"""

from __future__ import annotations

from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.workloads import AppOutcome, GuestApplication
from repro.xentry import RecoveryManager, Xentry


def main() -> None:
    hv = XenHypervisor(seed=42)
    manager = RecoveryManager(Xentry(hv))
    app = GuestApplication()

    script = [
        ("hvm_cpuid", (1,), None),
        ("event_channel_op", (9, 0), ("r12", 43, 4)),   # corrupted domain ptr
        ("set_timer_op", (500,), None),
        ("do_irq", (7,), ("rdi", 44, 1)),               # corrupted vector
        ("grant_table_op", (12, 2), ("rbp", 41, 10)),   # corrupted globals ptr
        ("xen_version", (2,), None),
    ]

    print("=== golden pass (no faults) ===")
    golden_digests = []
    for seq, (name, args, _fault) in enumerate(script):
        activation = Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                                domain_id=1, seq=seq)
        hv.execute(activation)
        run = app.step(hv.domain(1))
        golden_digests.append(run.digest)
        print(f"  {name:<18} app outcome: {run.outcome.value}, "
              f"digest {run.digest:#018x}")

    print("\n=== protected pass with soft errors + recovery ===")
    hv.reset()
    app = GuestApplication()
    for seq, (name, args, fault) in enumerate(script):
        activation = Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                                domain_id=1, seq=seq)
        if fault is not None:
            register, bit, index = fault
            hv.cpu.schedule_register_flip(index, register, bit)
        outcome = manager.protect(activation)
        run = app.step(hv.domain(1))
        status = "RECOVERED" if outcome.recovered else (
            "clean" if not outcome.detected else "UNRECOVERED")
        match = "==" if run.digest == golden_digests[seq] else "!="
        print(f"  {name:<18} {status:<11} app digest {match} golden "
              f"({run.outcome.value})")
        assert run.outcome is AppOutcome.OK
        assert run.digest == golden_digests[seq], "guest saw corrupted state!"

    print("\n=== recovery statistics ===")
    print(f"  VM exits protected: {manager.exits_protected}")
    print(f"  recoveries:         {manager.recoveries}")
    print(f"  unrecoverable:      {manager.unrecoverable}")
    print("\nEvery injected soft error was detected and recovered before the")
    print("guest consumed anything — the isolation property the paper's")
    print("detection-first argument is about.")


if __name__ == "__main__":
    main()
