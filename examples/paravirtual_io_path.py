#!/usr/bin/env python3
"""The paravirtual I/O path, assembled from the substrate's subsystems.

Why the hypervisor is "activated about 650,000 times per second" under I/O
load (Section II.B): every block request a guest issues rides grant tables
(share the buffer), event channels (kick the backend), interrupts (device
completion) and the scheduler (wake the backend's VCPU) — four hypervisor
activations or more per request.  This demo wires those subsystems together
on a 2-core platform and pushes a burst of requests through, counting what
the hypervisor actually executed.
"""

from __future__ import annotations

from repro.hypervisor import XenHypervisor
from repro.hypervisor.events import EventChannelManager
from repro.hypervisor.grants import GrantFlags, GrantTableManager
from repro.hypervisor.scheduler import CreditScheduler

FRONTEND = 2   # the guest issuing block requests
BACKEND = 0    # Dom0 hosts the backend driver
DISK_PIRQ = 14


def main() -> None:
    hv = XenHypervisor(seed=7, n_cores=2)
    events = EventChannelManager(hv)
    grants = GrantTableManager(hv)
    scheduler = CreditScheduler(n_cpus=2)
    for domain in range(hv.n_domains):
        scheduler.add_vcpu(domain, weight=512 if domain == 0 else 256)

    print("=== connection setup (what xenbus does at device bring-up) ===")
    ring_grant = grants.grant_access(
        FRONTEND, BACKEND, frame=0x1000, flags=GrantFlags.READ | GrantFlags.WRITE
    )
    grants.map_grant(BACKEND, FRONTEND, ring_grant.ref)
    kick_front = events.alloc_unbound(FRONTEND)
    kick_back = events.bind_interdomain(kick_front, BACKEND)
    events.bind_pirq(BACKEND, pirq=DISK_PIRQ)
    print(f"  shared ring: grant ref {ring_grant.ref} "
          f"(dom{FRONTEND} -> dom{BACKEND}), mapped")
    print(f"  kick channel: dom{FRONTEND}:port{kick_front.port} <-> "
          f"dom{BACKEND}:port{kick_back.port}")
    print(f"  disk IRQ {DISK_PIRQ} routed to dom{BACKEND}")

    print("\n=== pushing 8 block requests through the path ===")
    total_instructions = 0
    activations = 0
    for request in range(8):
        # 1. Frontend fills the shared ring across the grant.
        result = grants.copy_through(ring_grant, words=8 + request)
        total_instructions += result.instructions
        activations += 1
        # 2. Frontend kicks the backend's event channel.
        result = events.notify(kick_front)
        total_instructions += result.instructions
        activations += 1
        scheduler.wake(BACKEND)
        # 3. The device completes: physical interrupt into the backend.
        result = events.raise_pirq(DISK_PIRQ)
        total_instructions += result.instructions
        activations += 1
        # 4. Backend kicks completion back to the frontend.
        result = events.notify(kick_back)
        total_instructions += result.instructions
        activations += 1
        scheduler.wake(FRONTEND)
    print(f"  {activations} hypervisor activations, "
          f"{total_instructions:,} host-mode instructions "
          f"for 8 requests ({activations / 8:.0f} activations/request)")
    print(f"  frontend sees completions pending: "
          f"{hv.domain(FRONTEND).vcpu(0).pending}")

    print("\n=== why this matters for Xentry ===")
    print("At the paper's postmark rates (tens of thousands of requests per")
    print("second), every one of these activations is a window for a soft")
    print("error to corrupt state bound for a guest — and a VM entry at")
    print("which Xentry gets to check the execution before the guest runs.")

    print("\n=== teardown ===")
    grants.unmap_grant(BACKEND, FRONTEND, ring_grant.ref)
    grants.end_access(FRONTEND, ring_grant.ref)
    events.close(kick_front)
    print(f"  grants live: {len(grants.grants_of(FRONTEND))}, "
          f"channels live (dom{FRONTEND}): {len(events.channels_of(FRONTEND))}")


if __name__ == "__main__":
    main()
