"""Scenario loading and validation: YAML/dict → :class:`Scenario`.

The schema follows py-chaos-agent's ``load_config`` shape — one block per
fault class with ``enabled``/``probability`` keys — extended with campaign
and workload sections::

    name: mixed
    campaign:                 # optional CampaignConfig overrides
      benchmarks: [mcf, postmark]
      n_injections: 600
    faults:                   # required: at least one enabled block
      register:               # single-bit register flips (the paper model)
        probability: 0.5
        registers: [rax, rbx] # optional restriction
        bits: [0, 63]         # optional bit range
      multibit:               # n_bits flips in one register, atomically
        probability: 0.2
        n_bits: 3
      burst:                  # time-correlated storm across registers
        probability: 0.2
        n_flips: 4
      memory:                 # uncorrected memory flip (MemoryFaultModel)
        probability: 0.1
        subsystem: scheduler  # optional: scheduler | event_channels |
                              #   grant_tables | timekeeping
    workloads:                # optional per-benchmark activation-mix overrides
      mcf:
        reason_mix: {mmu_update: 40.0}
        background_weight: 0.01

Enabled probabilities must sum to 1.0.  Every validation failure raises
:class:`~repro.errors.ScenarioError` carrying the source path and the dotted
key path of the offending entry.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CampaignConfigError, ScenarioError
from repro.faults.model import (
    MEMORY_SUBSYSTEMS,
    BurstFaultModel,
    CompositeFaultModel,
    FaultModel,
    FaultModelComponent,
    MemoryFaultModel,
    MultiBitFaultModel,
)
from repro.hypervisor.vmexit import REGISTRY
from repro.workloads.base import VirtMode
from repro.workloads.suite import BENCHMARK_NAMES
from repro.scenarios.spec import Scenario, WorkloadOverride

__all__ = ["FAULT_KINDS", "load_scenario", "scenario_from_dict"]

#: Recognized ``faults:`` block names, in sampling (cumulative) order.
FAULT_KINDS = ("register", "multibit", "burst", "memory")

#: Campaign-section keys a scenario may override, with (type, minimum).
_CAMPAIGN_FIELDS = {
    "benchmarks": None,  # handled specially
    "mode": None,        # handled specially
    "n_injections": (int, 1),
    "n_domains": (int, 2),
    "warmup_activations": (int, 0),
    "injections_per_golden": (int, 1),
    "followup_activations": (int, 0),
}

_MODES = {"pv": VirtMode.PV, "hvm": VirtMode.HVM}


def load_scenario(path: str | Path) -> Scenario:
    """Load and validate a YAML scenario file."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise CampaignConfigError(
            "scenario files need PyYAML (pip install pyyaml); "
            "dict scenarios via scenario_from_dict work without it"
        ) from exc
    path = Path(path)
    source = str(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file: {exc}", source=source)
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"invalid YAML: {exc}", source=source)
    if not isinstance(data, dict):
        raise ScenarioError(
            f"scenario must be a mapping, got {type(data).__name__}",
            source=source,
        )
    if "name" not in data:
        data = {"name": path.stem, **data}
    return scenario_from_dict(data, source=source)


def scenario_from_dict(data: dict, *, source: str = "") -> Scenario:
    """Validate a scenario mapping (already parsed) into a :class:`Scenario`."""
    if not isinstance(data, dict):
        raise ScenarioError(
            f"scenario must be a mapping, got {type(data).__name__}",
            source=source,
        )
    known = {"name", "campaign", "faults", "workloads"}
    for key in data:
        if key not in known:
            raise ScenarioError(
                f"unknown key (expected one of {sorted(known)})",
                source=source, keypath=str(key),
            )
    name = data.get("name", "scenario")
    if not isinstance(name, str) or not name:
        raise ScenarioError(
            "name must be a non-empty string", source=source, keypath="name"
        )
    faults = _parse_faults(data.get("faults"), source)
    workloads = _parse_workloads(data.get("workloads", {}), source)
    campaign = _parse_campaign(data.get("campaign", {}), source)
    return Scenario(
        name=name,
        faults=faults,
        workloads=workloads,
        campaign=campaign,
        source=source,
    )


def _fail(message: str, source: str, keypath: str) -> ScenarioError:
    return ScenarioError(message, source=source, keypath=keypath)


def _require_mapping(value, source: str, keypath: str) -> dict:
    if not isinstance(value, dict):
        raise _fail(
            f"expected a mapping, got {type(value).__name__}", source, keypath
        )
    return value


def _parse_bits(block: dict, source: str, keypath: str) -> tuple[int, int]:
    bits = block.get("bits", (0, 63))
    if (
        not isinstance(bits, (list, tuple))
        or len(bits) != 2
        or not all(isinstance(b, int) and not isinstance(b, bool) for b in bits)
    ):
        raise _fail("bits must be a [lo, hi] pair of integers", source, f"{keypath}.bits")
    return (bits[0], bits[1])


def _parse_registers(block: dict, source: str, keypath: str) -> dict:
    registers = block.get("registers")
    if registers is None:
        return {}
    if not isinstance(registers, (list, tuple)) or not all(
        isinstance(r, str) for r in registers
    ):
        raise _fail(
            "registers must be a list of register names",
            source, f"{keypath}.registers",
        )
    return {"registers": tuple(registers)}


def _parse_int(block: dict, key: str, source: str, keypath: str) -> dict:
    value = block.get(key)
    if value is None:
        return {}
    if not isinstance(value, int) or isinstance(value, bool):
        raise _fail(f"{key} must be an integer", source, f"{keypath}.{key}")
    return {key: value}


def _parse_faults(section, source: str) -> CompositeFaultModel:
    if section is None:
        raise _fail("scenario needs a faults section", source, "faults")
    section = _require_mapping(section, source, "faults")
    components: list[FaultModelComponent] = []
    for kind in section:
        if kind not in FAULT_KINDS:
            raise _fail(
                f"unknown fault kind (expected one of {list(FAULT_KINDS)})",
                source, f"faults.{kind}",
            )
    for kind in FAULT_KINDS:
        if kind not in section:
            continue
        keypath = f"faults.{kind}"
        block = _require_mapping(section[kind], source, keypath)
        known = {"enabled", "probability", "registers", "bits", "n_bits",
                 "n_flips", "subsystem"}
        for key in block:
            if key not in known:
                raise _fail(
                    f"unknown key (expected one of {sorted(known)})",
                    source, f"{keypath}.{key}",
                )
        enabled = block.get("enabled", True)
        if not isinstance(enabled, bool):
            raise _fail("enabled must be a boolean", source, f"{keypath}.enabled")
        if not enabled:
            continue
        probability = block.get("probability", 1.0)
        if isinstance(probability, bool) or not isinstance(probability, (int, float)):
            raise _fail(
                "probability must be a number",
                source, f"{keypath}.probability",
            )
        kwargs: dict = {"bits": _parse_bits(block, source, keypath)}
        if kind in ("register", "multibit", "burst"):
            kwargs.update(_parse_registers(block, source, keypath))
            if "subsystem" in block:
                raise _fail(
                    "subsystem only applies to memory faults",
                    source, f"{keypath}.subsystem",
                )
        if kind == "multibit":
            kwargs.update(_parse_int(block, "n_bits", source, keypath))
        elif kind == "burst":
            kwargs.update(_parse_int(block, "n_flips", source, keypath))
        elif kind == "memory":
            subsystem = block.get("subsystem")
            if subsystem is not None and subsystem not in MEMORY_SUBSYSTEMS:
                raise _fail(
                    f"unknown subsystem {subsystem!r} "
                    f"(choose from {list(MEMORY_SUBSYSTEMS)})",
                    source, f"{keypath}.subsystem",
                )
            kwargs["subsystem"] = subsystem
        model_cls = {
            "register": FaultModel,
            "multibit": MultiBitFaultModel,
            "burst": BurstFaultModel,
            "memory": MemoryFaultModel,
        }[kind]
        try:
            model = model_cls(**kwargs)
            components.append(
                FaultModelComponent(
                    label=kind, probability=float(probability), model=model
                )
            )
        except CampaignConfigError as exc:
            raise _fail(str(exc), source, keypath) from exc
    if not components:
        raise _fail("no fault kind is enabled", source, "faults")
    try:
        return CompositeFaultModel(components=tuple(components))
    except CampaignConfigError as exc:
        raise _fail(str(exc), source, "faults") from exc


def _parse_workloads(section, source: str) -> tuple[WorkloadOverride, ...]:
    section = _require_mapping(section, source, "workloads")
    overrides: list[WorkloadOverride] = []
    for benchmark in section:
        keypath = f"workloads.{benchmark}"
        if benchmark not in BENCHMARK_NAMES:
            raise _fail(
                f"unknown benchmark (choose from {list(BENCHMARK_NAMES)})",
                source, keypath,
            )
        block = _require_mapping(section[benchmark], source, keypath)
        known = {"reason_mix", "background_weight"}
        for key in block:
            if key not in known:
                raise _fail(
                    f"unknown key (expected one of {sorted(known)})",
                    source, f"{keypath}.{key}",
                )
        mix = _require_mapping(
            block.get("reason_mix", {}), source, f"{keypath}.reason_mix"
        )
        entries: list[tuple[str, float]] = []
        for reason, weight in mix.items():
            reason_path = f"{keypath}.reason_mix.{reason}"
            try:
                REGISTRY.by_name(reason)
            except Exception as exc:
                raise _fail(str(exc), source, reason_path) from exc
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise _fail("weight must be a number", source, reason_path)
            if weight < 0:
                raise _fail("weight must be non-negative", source, reason_path)
            entries.append((reason, float(weight)))
        background = block.get("background_weight")
        if background is not None:
            if isinstance(background, bool) or not isinstance(
                background, (int, float)
            ):
                raise _fail(
                    "background_weight must be a number",
                    source, f"{keypath}.background_weight",
                )
            if background < 0:
                raise _fail(
                    "background_weight must be non-negative",
                    source, f"{keypath}.background_weight",
                )
            background = float(background)
        overrides.append(
            WorkloadOverride(
                benchmark=benchmark,
                reason_mix=tuple(entries),
                background_weight=background,
            )
        )
    return tuple(overrides)


def _parse_campaign(section, source: str) -> tuple[tuple[str, object], ...]:
    section = _require_mapping(section, source, "campaign")
    overrides: list[tuple[str, object]] = []
    for key, value in section.items():
        keypath = f"campaign.{key}"
        if key not in _CAMPAIGN_FIELDS:
            raise _fail(
                f"unknown key (expected one of {sorted(_CAMPAIGN_FIELDS)})",
                source, keypath,
            )
        if key == "benchmarks":
            if not isinstance(value, (list, tuple)) or not value:
                raise _fail(
                    "benchmarks must be a non-empty list", source, keypath
                )
            for bench in value:
                if bench not in BENCHMARK_NAMES:
                    raise _fail(
                        f"unknown benchmark {bench!r} "
                        f"(choose from {list(BENCHMARK_NAMES)})",
                        source, keypath,
                    )
            overrides.append((key, tuple(value)))
        elif key == "mode":
            if value not in _MODES:
                raise _fail(
                    f"mode must be one of {sorted(_MODES)}", source, keypath
                )
            overrides.append((key, _MODES[value]))
        else:
            expected, minimum = _CAMPAIGN_FIELDS[key]
            if not isinstance(value, expected) or isinstance(value, bool):
                raise _fail(
                    f"{key} must be an integer", source, keypath
                )
            if value < minimum:
                raise _fail(
                    f"{key} must be >= {minimum}", source, keypath
                )
            overrides.append((key, value))
    return tuple(overrides)
