"""The validated scenario object and its campaign semantics.

A :class:`Scenario` is the in-memory form of one scenario file: a composite
fault model (what to inject), optional per-benchmark activation-mix overrides
(what workload to drive), and optional campaign-parameter overrides (how big
a campaign to run).  It is frozen and picklable, so it rides inside a
:class:`~repro.faults.campaign.CampaignConfig` to engine pool workers
unchanged.

Determinism contract: a scenario never owns an RNG.  Every fault is drawn
from the named stream ``(seed, "scenario", benchmark, mode, group, trial)``
— a pure function of the campaign's root seed and the trial's coordinates —
so serial, sharded and twin-batched runs of the same scenario are
bit-identical, and any trial can be re-drawn in isolation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.errors import ScenarioError
from repro.faults.model import (
    CompositeFaultModel,
    FaultModel,
    model_digest_payload,
)
from repro.hypervisor.layout import HypervisorLayout
from repro.workloads.base import WorkloadProfile

__all__ = ["Scenario", "WorkloadOverride"]


@dataclass(frozen=True)
class WorkloadOverride:
    """Per-benchmark activation-mix override.

    ``reason_mix`` entries replace (or add to) the profile's own weights;
    ``background_weight`` replaces the profile default when given.  Stored
    as a tuple of pairs so the override is hashable alongside the frozen
    config it rides in.
    """

    benchmark: str
    reason_mix: tuple[tuple[str, float], ...] = ()
    background_weight: float | None = None

    def apply(self, profile: WorkloadProfile) -> WorkloadProfile:
        """Return ``profile`` with this override merged in."""
        changes: dict = {}
        if self.reason_mix:
            mix = dict(profile.reason_mix)
            mix.update(self.reason_mix)
            changes["reason_mix"] = mix
        if self.background_weight is not None:
            changes["background_weight"] = self.background_weight
        return dataclasses.replace(profile, **changes) if changes else profile


@dataclass(frozen=True)
class Scenario:
    """One validated, digestable scenario.

    ``campaign`` holds campaign-parameter overrides from the file's
    ``campaign:`` section as ``(field, value)`` pairs — applied onto the
    base config by :meth:`apply`, after which they are visible in the
    config itself (and hence its digest).
    """

    name: str
    faults: CompositeFaultModel
    workloads: tuple[WorkloadOverride, ...] = ()
    campaign: tuple[tuple[str, object], ...] = ()
    #: Where the scenario came from (file path); excluded from equality so
    #: the same scenario loaded from two paths compares (and digests) equal.
    source: str = field(default="", compare=False)

    # -- campaign integration -------------------------------------------------

    def apply(self, base):
        """Merge this scenario into ``base`` (a CampaignConfig).

        The *degenerate* case — exactly one component, probability 1.0, on
        the plain single-bit register model, with no workload overrides —
        normalizes to a scenario-less config carrying that model as its
        ``fault_model``: the campaign then takes the legacy sampling path
        and the legacy digest, making a probability-1.0 single-bit scenario
        byte-identical to the equivalent scenario-less campaign.
        """
        overrides = dict(self.campaign)
        baseline = self.baseline_model()
        if baseline is not None:
            return dataclasses.replace(
                base, fault_model=baseline, scenario=None, **overrides
            )
        return dataclasses.replace(base, scenario=self, **overrides)

    def baseline_model(self) -> FaultModel | None:
        """The single-bit register model this scenario degenerates to, or
        ``None`` when it is a genuine multi-model/overridden scenario."""
        if self.workloads:
            return None
        if len(self.faults.components) != 1:
            return None
        model = self.faults.components[0].model
        return model if type(model) is FaultModel else None

    def profile_for(self, profile: WorkloadProfile) -> WorkloadProfile:
        """Apply this scenario's override for ``profile``'s benchmark."""
        for override in self.workloads:
            if override.benchmark == profile.name:
                return override.apply(profile)
        return profile

    # -- sampling -------------------------------------------------------------

    def sample_trial(
        self,
        seed: int,
        benchmark: str,
        mode: str,
        group: int,
        trial: int,
        *,
        run_length: int,
        layout: HypervisorLayout,
    ):
        """Draw the fault for one trial — pure in (seed, trial coordinates)."""
        rng = rng_mod.stream(seed, "scenario", benchmark, mode, group, trial)
        return self.faults.sample(rng, run_length, layout)

    # -- identity -------------------------------------------------------------

    def digest_payload(self) -> dict:
        """JSON-able identity for the planner's config digest.

        Covers everything that shapes trial records and is *not* otherwise
        visible on the config: the fault mixture and the workload overrides.
        Campaign-parameter overrides are excluded — :meth:`apply` folds them
        into config fields the digest already covers.  The name is a label,
        not an identity: renaming a scenario changes neither records nor
        digest.
        """
        return {
            "faults": model_digest_payload(self.faults),
            "workloads": [
                {
                    "benchmark": o.benchmark,
                    "reason_mix": [[name, w] for name, w in o.reason_mix],
                    "background_weight": o.background_weight,
                }
                for o in sorted(self.workloads, key=lambda o: o.benchmark)
            ],
        }

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        parts = []
        for c in self.faults.components:
            model = c.model
            label = c.label
            subsystem = getattr(model, "subsystem", None)
            if subsystem:
                label += f"[{subsystem}]"
            parts.append(f"{label} {c.probability:.0%}")
        line = f"{self.name}: " + " + ".join(parts)
        if self.workloads:
            benches = ", ".join(o.benchmark for o in self.workloads)
            line += f" (workload overrides: {benches})"
        return line

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name", source=self.source)
        seen = set()
        for override in self.workloads:
            if override.benchmark in seen:
                raise ScenarioError(
                    f"duplicate workload override for {override.benchmark!r}",
                    source=self.source,
                    keypath="workloads",
                )
            seen.add(override.benchmark)
