"""Declarative fault-injection scenarios (the ROADMAP scenario DSL).

A scenario composes fault models — single-bit register flips (the paper's
Section V.B model), multi-bit upsets, time-correlated bursts, memory flips
optionally targeted at one hypervisor subsystem — with per-benchmark
activation-mix overrides and campaign-parameter overrides, all behind one
validated YAML/dict schema (:mod:`repro.scenarios.loader`).

Scenarios are deterministic by construction: every trial's fault is drawn
from a named RNG stream keyed on the campaign seed and the trial's
coordinates, and the scenario's identity enters the planner's config digest.
"""

from repro.scenarios.loader import FAULT_KINDS, load_scenario, scenario_from_dict
from repro.scenarios.spec import Scenario, WorkloadOverride

__all__ = [
    "FAULT_KINDS",
    "Scenario",
    "WorkloadOverride",
    "load_scenario",
    "scenario_from_dict",
]
