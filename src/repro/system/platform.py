"""VirtualPlatform: the full simulated system in one object.

Wires the pieces the way the paper's testbed does (Section V.A): a
hypervisor hosting Dom0 plus guest domains, a benchmark workload driving
hypervisor activations, and — optionally — Xentry protecting every VM
transition.  This is the object examples and the Fig. 3 harness drive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignConfigError
from repro.hypervisor.scheduler import CreditScheduler
from repro.hypervisor.xen import ActivationResult, XenHypervisor
from repro.workloads.base import VirtMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.suite import get_profile
from repro.xentry.framework import ProtectedOutcome, Xentry
from repro.xentry.transition import VMTransitionDetector

__all__ = ["PlatformConfig", "VirtualPlatform"]


@dataclass(frozen=True)
class PlatformConfig:
    """Shape of the simulated host (mirrors the paper's Simics setup:
    one Dom0 plus para-virtualized DomUs, one VCPU each)."""

    n_domains: int = 3
    vcpus_per_domain: int = 1
    n_cores: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_domains < 2:
            raise CampaignConfigError("need Dom0 plus at least one guest")
        if self.n_cores < 1:
            raise CampaignConfigError("need at least one core")


class VirtualPlatform:
    """A booted simulated host running a chosen benchmark."""

    def __init__(self, config: PlatformConfig | None = None) -> None:
        self.config = config or PlatformConfig()
        self.hypervisor = XenHypervisor(
            n_domains=self.config.n_domains,
            vcpus_per_domain=self.config.vcpus_per_domain,
            n_cores=self.config.n_cores,
            seed=self.config.seed,
        )
        self.scheduler = CreditScheduler(n_cpus=self.config.n_cores)
        for domain_id in range(self.config.n_domains):
            for vcpu_id in range(self.config.vcpus_per_domain):
                # Dom0 gets double weight, as operators commonly configure.
                weight = 512 if domain_id == 0 else 256
                self.scheduler.add_vcpu(domain_id, vcpu_id, weight=weight)
        self.xentry: Xentry | None = None

    # -- protection -------------------------------------------------------------

    def deploy_xentry(
        self, transition_detector: VMTransitionDetector | None = None
    ) -> Xentry:
        """Install Xentry between the hypervisor and its guests."""
        self.xentry = Xentry(
            self.hypervisor, transition_detector=transition_detector
        )
        return self.xentry

    # -- workload execution -------------------------------------------------------

    def _generator(self, benchmark: str, mode: VirtMode) -> WorkloadGenerator:
        return WorkloadGenerator(
            get_profile(benchmark),
            mode,
            seed=self.config.seed,
            n_domains=self.config.n_domains,
        )

    def run_workload(
        self,
        benchmark: str,
        *,
        mode: VirtMode = VirtMode.PV,
        n_activations: int = 100,
        start_seq: int = 0,
    ) -> list[ActivationResult | ProtectedOutcome]:
        """Execute a burst of the benchmark's hypervisor activations.

        With Xentry deployed, each activation goes through
        :meth:`~repro.xentry.framework.Xentry.protect`; otherwise it executes
        unprotected.
        """
        generator = self._generator(benchmark, mode)
        out: list[ActivationResult | ProtectedOutcome] = []
        for activation in generator.activations(n_activations, start_seq=start_seq):
            if self.xentry is not None:
                out.append(self.xentry.protect(activation))
            else:
                out.append(self.hypervisor.execute(activation))
        return out

    def run_workload_smp(
        self,
        benchmark: str,
        *,
        mode: VirtMode = VirtMode.PV,
        n_activations: int = 100,
        start_seq: int = 0,
    ) -> dict[int, list[ActivationResult]]:
        """Execute a workload across all cores, placed by the credit scheduler.

        Each activation is serviced on the physical core its target VCPU is
        currently scheduled on (the hypervisor runs in the context of the
        VCPU that trapped); the scheduler's accounting ticks as work flows.
        Returns the per-core activation results.
        """
        generator = self._generator(benchmark, mode)
        per_core: dict[int, list[ActivationResult]] = {
            cpu: [] for cpu in range(self.config.n_cores)
        }
        epoch = 0
        for activation in generator.activations(n_activations, start_seq=start_seq):
            if epoch % 8 == 0:
                self.scheduler.replenish()
            epoch += 1
            core_id = self._core_for(activation.domain_id, activation.vcpu_id)
            result = self.hypervisor.execute(activation, core_id=core_id)
            self.scheduler.tick(core_id)
            per_core[core_id].append(result)
        return per_core

    def _core_for(self, domain_id: int, vcpu_id: int) -> int:
        """Physical core currently running (or picked for) the target VCPU."""
        vcpu = self.scheduler.vcpu(domain_id, vcpu_id)
        if vcpu.running_on is not None:
            return vcpu.running_on
        # Let every idle core schedule until the target lands somewhere.
        for cpu in range(self.config.n_cores):
            picked = self.scheduler.schedule(cpu)
            if picked is not None and picked.key == vcpu.key:
                return cpu
        # Target still parked (e.g. all cores busy with others): run its
        # activation on core 0, the way a directed event preempts.
        return 0

    # -- measurement (Fig. 3) ----------------------------------------------------------

    def activation_rates(
        self, benchmark: str, *, mode: VirtMode = VirtMode.PV, seconds: int = 300
    ) -> np.ndarray:
        """Per-second hypervisor activation rates for a benchmark run."""
        return self._generator(benchmark, mode).rate_per_second(seconds)

    def mean_handler_instructions(
        self, benchmark: str, *, mode: VirtMode = VirtMode.PV, n_activations: int = 200
    ) -> float:
        """Mean dynamic handler length under this workload (overhead models)."""
        self.hypervisor.reset()
        results = self.run_workload(benchmark, mode=mode, n_activations=n_activations)
        lengths = [
            r.instructions
            for r in results
            if isinstance(r, ActivationResult)
        ] + [
            r.result.instructions
            for r in results
            if isinstance(r, ProtectedOutcome) and r.result is not None
        ]
        if not lengths:
            raise CampaignConfigError("no activations completed")
        return float(np.mean(lengths))
