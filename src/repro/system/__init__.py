"""Full-system wiring: hypervisor + workloads + Xentry in one platform."""

from repro.system.platform import PlatformConfig, VirtualPlatform

__all__ = ["PlatformConfig", "VirtualPlatform"]
