"""The benchmark suite: mcf, bzip2, freqmine, canneal, x264, postmark.

Rate parameters are calibrated to the ranges the paper reports (Fig. 3 and
Section II.B): para-virtualized activation rates between ~5,000/s and
~100,000/s with freqmine peaking near 650,000/s, and hardware-assisted rates
mostly between 2,000/s and 10,000/s.  Reason mixes follow each benchmark's
character: postmark hammers I/O paths (interrupts, event channels, grant
copies), mcf stresses memory-management hypercalls, bzip2/canneal mostly see
timer ticks and scheduling.

``blocking_fraction`` and ``hypervisor_cpu_share`` are calibrated so the
fault-free overhead study reproduces the Fig. 7 ordering (postmark worst at
~11.7% max, bzip2 best at ~0.2% average) and the Fig. 11 recovery overheads
(~2.7% average, postmark 6.3%, mcf/bzip2 ~1.6%).
"""

from __future__ import annotations

from repro.errors import CampaignConfigError
from repro.workloads.base import RateDistribution, WorkloadClass, WorkloadProfile

__all__ = ["BENCHMARKS", "BENCHMARK_NAMES", "get_profile"]

_IO_MIX = {
    "general_protection": 6.0,   # PV cpuid/privileged-instruction traps
    "xen_version": 2.0,
    "get_debugreg": 1.0,
    "do_irq": 30.0,
    "event_channel_op": 18.0,
    "grant_table_op": 14.0,
    "do_softirq": 10.0,
    "sched_op": 8.0,
    "set_timer_op": 4.0,
    "console_io": 2.0,
    "iret": 6.0,
    "hvm_io_instruction": 10.0,
    "hvm_external_interrupt": 8.0,
}

_MEM_MIX = {
    "general_protection": 5.0,   # PV cpuid/privileged-instruction traps
    "xen_version": 1.5,
    "mmu_update": 24.0,
    "update_va_mapping": 16.0,
    "memory_op": 12.0,
    "mmuext_op": 8.0,
    "page_fault": 10.0,
    "do_irq": 4.0,
    "sched_op": 4.0,
    "iret": 4.0,
    "hvm_ept_violation": 14.0,
}

_CPU_MIX = {
    "general_protection": 4.0,   # PV cpuid/privileged-instruction traps
    "xen_version": 1.5,
    "get_debugreg": 1.0,
    "apic_timer": 22.0,
    "do_softirq": 8.0,
    "sched_op": 6.0,
    "set_timer_op": 5.0,
    "iret": 4.0,
    "do_irq": 3.0,
    "hvm_cpuid": 4.0,
    "hvm_pause": 3.0,
}

BENCHMARKS: tuple[WorkloadProfile, ...] = (
    WorkloadProfile(
        name="mcf",
        klass=WorkloadClass.MEMORY,
        pv_rate=RateDistribution(median=7_500, sigma=0.55),
        hvm_rate=RateDistribution(median=2_600, sigma=0.40),
        reason_mix=_MEM_MIX,
        blocking_fraction=0.18,
        hypervisor_cpu_share=0.05,
    ),
    WorkloadProfile(
        name="bzip2",
        klass=WorkloadClass.CPU,
        pv_rate=RateDistribution(median=8_000, sigma=0.45),
        hvm_rate=RateDistribution(median=2_200, sigma=0.35),
        reason_mix=_CPU_MIX,
        blocking_fraction=0.05,
        hypervisor_cpu_share=0.03,
    ),
    WorkloadProfile(
        name="freqmine",
        klass=WorkloadClass.IO,
        pv_rate=RateDistribution(median=7_500, sigma=1.30),  # heavy tail peaking ~650k/s
        hvm_rate=RateDistribution(median=5_800, sigma=0.45),
        reason_mix=_IO_MIX,
        blocking_fraction=0.12,
        hypervisor_cpu_share=0.10,
    ),
    WorkloadProfile(
        name="canneal",
        klass=WorkloadClass.CPU,
        pv_rate=RateDistribution(median=14_000, sigma=0.50),
        hvm_rate=RateDistribution(median=3_500, sigma=0.40),
        reason_mix={**_CPU_MIX, "mmu_update": 6.0, "memory_op": 4.0},
        blocking_fraction=0.08,
        hypervisor_cpu_share=0.04,
    ),
    WorkloadProfile(
        name="x264",
        klass=WorkloadClass.IO,
        pv_rate=RateDistribution(median=13_500, sigma=0.60),
        hvm_rate=RateDistribution(median=5_500, sigma=0.45),
        reason_mix={**_IO_MIX, "mmu_update": 5.0},
        blocking_fraction=0.22,
        hypervisor_cpu_share=0.07,
    ),
    WorkloadProfile(
        name="postmark",
        klass=WorkloadClass.IO,
        pv_rate=RateDistribution(median=30_000, sigma=0.55),
        hvm_rate=RateDistribution(median=9_000, sigma=0.40),
        reason_mix=_IO_MIX,
        blocking_fraction=0.55,
        hypervisor_cpu_share=0.14,
    ),
)

BENCHMARK_NAMES: tuple[str, ...] = tuple(p.name for p in BENCHMARKS)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by name."""
    for profile in BENCHMARKS:
        if profile.name == name:
            return profile
    raise CampaignConfigError(
        f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}"
    )
