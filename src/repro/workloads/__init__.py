"""Benchmark workload models: activation rates and exit-reason mixes.

The paper's six benchmarks (SPEC2006 mcf/bzip2, PARSEC freqmine/canneal/x264,
Postmark) are modeled by the hypervisor activity they induce — activation-rate
distributions calibrated to Fig. 3 and per-class exit-reason mixes.
"""

from repro.workloads.base import (
    RateDistribution,
    VirtMode,
    WorkloadClass,
    WorkloadProfile,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.guestapp import AppOutcome, AppRun, GuestApplication
from repro.workloads.suite import BENCHMARK_NAMES, BENCHMARKS, get_profile

__all__ = [
    "AppOutcome",
    "AppRun",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "RateDistribution",
    "VirtMode",
    "WorkloadClass",
    "GuestApplication",
    "WorkloadGenerator",
    "WorkloadProfile",
    "get_profile",
]
