"""Deterministic activation-stream generation.

Turns a :class:`~repro.workloads.base.WorkloadProfile` into the two things the
experiments consume:

* per-second activation *rates* (Fig. 3, the overhead models), and
* concrete :class:`~repro.hypervisor.xen.Activation` sequences with reasons
  drawn from the profile's mix and arguments drawn inside each reason's legal
  ranges (fault-injection campaigns, training-set collection).

Everything is seeded through :mod:`repro.rng`, so a campaign is reproducible
from its root seed alone.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.errors import CampaignConfigError
from repro.hypervisor.vmexit import ExitReason, ExitReasonRegistry, REGISTRY
from repro.hypervisor.xen import Activation
from repro.workloads.base import VirtMode, WorkloadProfile

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Seeded activation stream for one (benchmark, virt-mode) pair."""

    def __init__(
        self,
        profile: WorkloadProfile,
        mode: VirtMode,
        *,
        seed: int = 0,
        n_domains: int = 3,
        registry: ExitReasonRegistry = REGISTRY,
    ) -> None:
        if n_domains < 2:
            raise CampaignConfigError("need Dom0 plus at least one guest domain")
        self.profile = profile
        self.mode = mode
        self.seed = seed
        self.n_domains = n_domains
        self.registry = registry
        pool = registry.pv_reasons if mode is VirtMode.PV else registry.hvm_reasons
        self._reasons: tuple[ExitReason, ...] = pool
        weights = np.array(
            [profile.reason_mix.get(r.name, profile.background_weight) for r in pool],
            dtype=np.float64,
        )
        total = weights.sum()
        if total <= 0:
            raise CampaignConfigError(
                f"profile {profile.name!r} has no positive weight in {mode.value} mode"
            )
        self._weights = weights / total

    # -- rates (Fig. 3) --------------------------------------------------------

    def rate_per_second(self, n_seconds: int) -> np.ndarray:
        """Per-second activation rates over an ``n_seconds`` measurement."""
        rng = rng_mod.stream(self.seed, "rates", self.profile.name, self.mode.value)
        return self.profile.rate(self.mode).sample(rng, n_seconds)

    def mean_rate(self, n_seconds: int = 300) -> float:
        """Mean activations/second over a standard measurement window."""
        return float(self.rate_per_second(n_seconds).mean())

    # -- activation streams ------------------------------------------------------

    def reason_probability(self, name: str) -> float:
        """Probability that one activation is the named reason."""
        for reason, w in zip(self._reasons, self._weights):
            if reason.name == name:
                return float(w)
        return 0.0

    def activations(self, n: int, *, start_seq: int = 0, stream: str = "activations") -> list[Activation]:
        """Generate ``n`` concrete activations.

        Arguments are drawn uniformly inside each reason's ``arg_ranges`` so
        fault-free executions never violate handler preconditions; the target
        domain is a guest VM, with Dom0 handling a share of I/O-class work
        (backend drivers live there).
        """
        rng = rng_mod.stream(self.seed, stream, self.profile.name, self.mode.value, start_seq)
        idx = rng.choice(len(self._reasons), size=n, p=self._weights)
        out: list[Activation] = []
        dom0_share = 0.15 if self.profile.klass.value == "io" else 0.06
        for i in range(n):
            reason = self._reasons[int(idx[i])]
            args = tuple(
                int(rng.integers(lo, hi + 1)) for lo, hi in reason.arg_ranges
            )
            if rng.random() < dom0_share:
                domain = 0
            else:
                domain = int(rng.integers(1, self.n_domains))
            out.append(
                Activation(
                    vmer=reason.vmer,
                    args=args,
                    domain_id=domain,
                    vcpu_id=0,
                    seq=start_seq + i,
                )
            )
        return out
