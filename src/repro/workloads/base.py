"""Workload profile abstraction.

The paper exercises the hypervisor with six benchmarks (Section V.A) chosen to
stress different hypervisor functions: I/O (postmark, freqmine, x264), CPU
(canneal, bzip2) and memory (mcf).  Since "the hypervisor is the software
under test rather than the benchmarks", a benchmark matters only through the
hypervisor activity it induces.  A :class:`WorkloadProfile` captures exactly
that: how often the hypervisor is activated (Fig. 3) and with which mix of
exit reasons, per virtualization mode.

Activation-rate distributions are log-normal, parameterized by the median and
a spread factor — matching the heavy-tailed per-second rates of Fig. 3 (the
box plots span decades and freqmine's max reaches ~650k/s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CampaignConfigError

__all__ = ["WorkloadClass", "VirtMode", "RateDistribution", "WorkloadProfile"]


class WorkloadClass(enum.Enum):
    """What the benchmark primarily stresses (Section V.A selection)."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"


class VirtMode(enum.Enum):
    """Virtualization mode (Fig. 3 compares both)."""

    PV = "para-virtualization"
    HVM = "hardware-assisted"


@dataclass(frozen=True)
class RateDistribution:
    """Log-normal hypervisor-activation rate in activations/second.

    ``median`` is the 50th percentile; ``sigma`` the log-space standard
    deviation.  Samples are clipped to ``floor`` so a quiet second still
    produces timer activity, and to ``ceiling`` — the host can only service
    so many VM exits per second (the paper's observed peak is ~650,000/s).
    """

    median: float
    sigma: float
    floor: float = 100.0
    ceiling: float = 700_000.0

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise CampaignConfigError("rate median must be > 0 and sigma >= 0")
        if not self.floor <= self.median <= self.ceiling:
            raise CampaignConfigError("median must sit between floor and ceiling")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` per-second activation rates."""
        rates = self.median * np.exp(self.sigma * rng.standard_normal(n))
        return np.clip(rates, self.floor, self.ceiling)


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the simulation needs to know about one benchmark.

    ``reason_mix`` maps exit-reason *names* to relative weights per virt
    mode; reasons absent from the mix still receive a small background weight
    so every handler gets exercised (as the timer tick and bookkeeping
    hypercalls do on a real host).

    ``blocking_fraction`` models how much of each activation sits on the
    application's critical path: I/O-bound applications wait for their
    activations (overhead hurts), CPU-bound ones overlap them.  This drives
    the Fig. 7/Fig. 11 per-benchmark overhead differences.

    ``hypervisor_cpu_share`` is the fraction of a CPU the hypervisor consumes
    serving this workload (the OProfile measurement of Section VI).
    """

    name: str
    klass: WorkloadClass
    pv_rate: RateDistribution
    hvm_rate: RateDistribution
    reason_mix: dict[str, float] = field(default_factory=dict)
    background_weight: float = 0.02
    blocking_fraction: float = 0.3
    hypervisor_cpu_share: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.blocking_fraction <= 1.0:
            raise CampaignConfigError("blocking_fraction must be within [0, 1]")
        if not 0.0 < self.hypervisor_cpu_share <= 1.0:
            raise CampaignConfigError("hypervisor_cpu_share must be within (0, 1]")
        if any(w < 0 for w in self.reason_mix.values()):
            raise CampaignConfigError("reason weights must be non-negative")

    def rate(self, mode: VirtMode) -> RateDistribution:
        return self.pv_rate if mode is VirtMode.PV else self.hvm_rate
