"""Executable guest-application model.

The campaign classifies fault consequences from golden-run divergence rules
(:mod:`repro.faults.propagation`).  This module provides the *executable*
counterpart: a small application model that actually consumes what the
hypervisor delivered — register values, time, trap numbers, grant frames —
and exhibits the paper's observable outcomes:

* dereferencing a corrupted pointer-like value → **segmentation fault**
  (APP crash: "applications exit abnormally such as segmentation faults");
* a corrupted trap/interrupt number above the architectural limit → the
  guest kernel panics (one-VM failure);
* time running backwards → the application misbehaves without crashing;
* any other corrupted input → the run completes but "the result produced by
  the application is different from the one produced by the correct
  execution" (APP SDC).

Used by tests to validate the rule-based classifier against observable
behaviour, and by examples to make consequences concrete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hypervisor.domain import DomainView

__all__ = ["AppOutcome", "AppRun", "GuestApplication"]

_MASK64 = (1 << 64) - 1
_FNV = 0x100000001B3


class AppOutcome(enum.Enum):
    """Observable result of one application step."""

    OK = "ok"
    SEGFAULT = "segfault"            # APP crash
    KERNEL_PANIC = "kernel_panic"    # one-VM failure (bad trap delivery)
    MISBEHAVED = "misbehaved"        # wrong-but-running (time anomaly)


@dataclass(frozen=True)
class AppRun:
    """Outcome + the application's result digest for SDC comparison."""

    outcome: AppOutcome
    digest: int
    detail: str = ""

    def is_sdc_against(self, golden: "AppRun") -> bool:
        """Silent data corruption: both runs finish OK but results differ."""
        return (
            self.outcome is AppOutcome.OK
            and golden.outcome is AppOutcome.OK
            and self.digest != golden.digest
        )


@dataclass
class GuestApplication:
    """A guest workload step that consumes hypervisor-delivered values.

    The application owns a virtual address window (``heap_base`` ..
    ``heap_base + heap_words*8``); any hypervisor-delivered value it treats
    as a pointer must fall inside it, as a real application's would fall
    inside its mapped address space.
    """

    heap_base: int = 0x0000_5000_0000_0000
    heap_words: int = 4096
    last_time: int = field(default=0)

    @property
    def heap_end(self) -> int:
        return self.heap_base + self.heap_words * 8

    def _pointer_ok(self, value: int) -> bool:
        return self.heap_base <= value < self.heap_end

    def step(self, domain: DomainView, vcpu_id: int = 0) -> AppRun:
        """Consume the current guest-visible state and run one app step."""
        vcpu = domain.vcpu(vcpu_id)
        digest = 0xCBF29CE484222325

        def fold(value: int) -> None:
            nonlocal digest
            digest = ((digest ^ (value & _MASK64)) * _FNV) & _MASK64

        # 1. Trap delivery: the guest kernel dispatches through its IDT —
        #    vectors are architecturally bounded.
        trapno = vcpu.trapno
        if trapno > 255:
            return AppRun(AppOutcome.KERNEL_PANIC, 0,
                          f"IDT dispatch with vector {trapno:#x}")
        fold(trapno)

        # 2. Register results (cpuid outputs, query answers): values the app
        #    computes with.  cpuid-style results are architecturally 32-bit;
        #    anything wider is consumed as a *pointer* by the runtime (e.g. a
        #    returned buffer address) and gets dereferenced.
        for slot_index in range(4):
            value = vcpu.reg(slot_index)
            if value >> 32:
                if not self._pointer_ok(value):
                    return AppRun(AppOutcome.SEGFAULT, 0,
                                  f"dereference of {value:#x}")
                fold(value - self.heap_base)
            else:
                fold(value)

        # 3. Time: applications tolerate skew but not time running backwards.
        now = vcpu.system_time
        if now < self.last_time:
            self.last_time = now
            return AppRun(AppOutcome.MISBEHAVED, digest,
                          "clock went backwards")
        self.last_time = now
        fold(now)

        # 4. Shared grant frames: bulk-transfer payloads feed the result.
        for w in range(domain.layout.grant_frames.words):
            fold(domain.memory.read_u64(domain.layout.grant_frames.word_address(w)))

        # 5. Event state steers the application's next action.
        fold(1 if vcpu.pending else 0)
        return AppRun(AppOutcome.OK, digest)
