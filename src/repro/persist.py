"""Persistence: deployable rule tables, campaign records, datasets.

Four artifact kinds cross process boundaries in a real deployment of this
system, and each gets a stable on-disk format:

* **compiled rule tables** (JSON) — the artifact that would be compiled into
  the hypervisor; training happens offline (the paper trains in WEKA from
  Simics traces, then implements the rules in Xen);
* **trained models** (JSON) — a rule table bundled with the held-out
  evaluation it shipped with (``repro-xentry train --save-model``);
* **campaign records** (JSON lines) — one fault-injection trial per line, so
  multi-hour campaigns can be analyzed incrementally and merged;
* **datasets** (``.npz``) — labeled feature matrices for re-training.

A fifth kind, the **golden artifact** (:mod:`repro.artifacts`), is binary
(checkpoint pages and numpy columns dominate it), but its structured rim —
activations, activation results, core checkpoints — round-trips through the
JSON codecs below, so the artifact header stays greppable and the binary
layer stays a pure blob index.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DatasetError
from repro.faults.outcomes import (
    BurstFaultSpec,
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    MemoryFaultSpec,
    MultiBitFaultSpec,
    RecoveryRecord,
    TrialRecord,
    UndetectedKind,
)
from repro.ml.dataset import Dataset
from repro.ml.export import CompiledRules

__all__ = [
    "ModelArtifact",
    "save_rules",
    "load_rules",
    "save_model",
    "load_model",
    "save_records",
    "load_records",
    "append_records_jsonl",
    "iter_records_jsonl",
    "save_dataset",
    "load_dataset",
    "activation_to_dict",
    "activation_from_dict",
    "activation_result_to_dict",
    "activation_result_from_dict",
    "core_checkpoint_to_dict",
    "core_checkpoint_from_dict",
]

_RULES_FORMAT = "xentry-rules-v1"
_MODEL_FORMAT = "xentry-model-v1"
_RECORDS_FORMAT = "xentry-records-v1"


# -- compiled rules -----------------------------------------------------------


def save_rules(rules: CompiledRules, path: str | Path) -> None:
    """Serialize a compiled rule table to JSON."""
    payload = {
        "format": _RULES_FORMAT,
        "feature_names": list(rules.feature_names),
        "feature": rules.feature.tolist(),
        "threshold": rules.threshold.tolist(),
        "left": rules.left.tolist(),
        "right": rules.right.tolist(),
        "prediction": rules.prediction.tolist(),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_rules(path: str | Path) -> CompiledRules:
    """Load a rule table saved by :func:`save_rules`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _RULES_FORMAT:
        raise DatasetError(f"{path}: not a {_RULES_FORMAT} file")
    return _rules_from_payload(payload)


def _rules_from_payload(payload: dict) -> CompiledRules:
    return CompiledRules(
        feature=np.array(payload["feature"], dtype=np.int16),
        threshold=np.array(payload["threshold"], dtype=np.int64),
        left=np.array(payload["left"], dtype=np.int32),
        right=np.array(payload["right"], dtype=np.int32),
        prediction=np.array(payload["prediction"], dtype=np.int8),
        feature_names=tuple(payload["feature_names"]),
    )


# -- trained models -----------------------------------------------------------


@dataclass(frozen=True)
class ModelArtifact:
    """A trained model loaded back from disk: rules + evaluation metadata.

    The deployable half of a :class:`~repro.xentry.training.TrainedModel`
    (the fitted Python tree object does not round-trip, the compiled table
    does) plus the held-out evaluation it shipped with.  Implements the
    detector protocol, so a loaded artifact drops straight into campaigns.
    """

    name: str
    rules: CompiledRules
    evaluation: dict

    def flags_incorrect(self, features) -> bool:
        """Detector protocol: delegate to the compiled rule table."""
        return self.rules.flags_incorrect(features)

    def classify_batch(self, X) -> tuple:
        """Batch detector protocol: ``(labels, comparisons)`` for a matrix.

        Delegates to :meth:`CompiledRules.classify_batch`, so a loaded
        artifact drops straight into the streaming scorer's micro-batch
        path with labels bit-identical to the in-memory model it was
        saved from.
        """
        return self.rules.classify_batch(X)

    def predict_batch(self, X):
        """Batch labels only (delegates to the compiled table)."""
        return self.rules.predict_batch(X)

    def flags_incorrect_batch(self, X):
        """Vectorized detector predicate (delegates to the compiled table)."""
        return self.rules.flags_incorrect_batch(X)


def save_model(model, path: str | Path) -> None:
    """Serialize a trained model (duck-typed ``TrainedModel``) as JSON.

    Stores the compiled rule table plus the evaluation headline — confusion
    counts, accuracy, detection/false-positive rates, and the train/test set
    summaries — so a saved model documents the numbers it was shipped with.
    """
    rules = model.rules
    if rules is None:
        raise DatasetError("model has no compiled rules to save")
    confusion = model.confusion
    payload = {
        "format": _MODEL_FORMAT,
        "name": model.name,
        "feature_names": list(rules.feature_names),
        "feature": rules.feature.tolist(),
        "threshold": rules.threshold.tolist(),
        "left": rules.left.tolist(),
        "right": rules.right.tolist(),
        "prediction": rules.prediction.tolist(),
        "evaluation": {
            "train": model.train_set.describe(),
            "test": model.test_set.describe(),
            "accuracy": confusion.accuracy,
            "detection_rate": confusion.detection_rate,
            "false_positive_rate": confusion.false_positive_rate,
            "confusion": {
                "true_negative": confusion.true_negative,
                "false_positive": confusion.false_positive,
                "false_negative": confusion.false_negative,
                "true_positive": confusion.true_positive,
            },
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_model(path: str | Path) -> ModelArtifact:
    """Load a model saved by :func:`save_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _MODEL_FORMAT:
        raise DatasetError(f"{path}: not a {_MODEL_FORMAT} file")
    return ModelArtifact(
        name=payload["name"],
        rules=_rules_from_payload(payload),
        evaluation=payload["evaluation"],
    )


# -- campaign records -----------------------------------------------------------


def _recovery_to_dict(recovery: RecoveryRecord) -> dict:
    return {
        "policy": recovery.policy,
        "action": recovery.action,
        "recovered": recovery.recovered,
        "attempts": recovery.attempts,
        "downtime": recovery.downtime_instructions,
        "divergent_words": recovery.divergent_words,
        "outputs_divergent": recovery.outputs_divergent,
        "state_digest": recovery.state_digest,
        "golden_digest": recovery.golden_digest,
        "detail": recovery.detail,
    }


def _recovery_from_dict(data: dict) -> RecoveryRecord:
    return RecoveryRecord(
        policy=data["policy"],
        action=data["action"],
        recovered=data["recovered"],
        attempts=data["attempts"],
        downtime_instructions=data["downtime"],
        divergent_words=data["divergent_words"],
        outputs_divergent=data["outputs_divergent"],
        state_digest=data["state_digest"],
        golden_digest=data["golden_digest"],
        detail=data.get("detail", ""),
    )


def _record_to_dict(record: TrialRecord) -> dict:
    payload = {
        "benchmark": record.benchmark,
        "vmer": record.vmer,
        "register": record.fault.register,
        "bit": record.fault.bit,
        "index": record.fault.dynamic_index,
        "activated": record.activated,
        "failure": record.failure_class.value,
        "detected_by": record.detected_by.value,
        "latency": record.detection_latency,
        "undetected_kind": record.undetected_kind.value if record.undetected_kind else None,
        "detail": record.detail,
    }
    # Non-register fault classes carry a discriminator plus their extra
    # coordinates; plain FaultSpec records omit them, so single-bit record
    # streams stay byte-identical to the pre-scenario format (just as
    # detection-only streams stay pre-recovery-identical below).
    fault = record.fault
    if isinstance(fault, MemoryFaultSpec):
        payload["fault"] = "memory"
        payload["address"] = fault.address
    elif isinstance(fault, MultiBitFaultSpec):
        payload["fault"] = "multibit"
        payload["bits"] = list(fault.bits)
    elif isinstance(fault, BurstFaultSpec):
        payload["fault"] = "burst"
        payload["flips"] = [[reg, bit] for reg, bit in fault.flips]
    # Only recovery-mode campaigns emit the key: detection-only record
    # streams stay byte-identical to the pre-recovery format.
    if record.recovery is not None:
        payload["recovery"] = _recovery_to_dict(record.recovery)
    return payload


def _fault_from_dict(data: dict):
    kind = data.get("fault", "register")
    if kind == "memory":
        return MemoryFaultSpec(data["address"], data["bit"])
    if kind == "multibit":
        return MultiBitFaultSpec(
            data["register"], tuple(data["bits"]), data["index"]
        )
    if kind == "burst":
        return BurstFaultSpec(
            tuple((reg, bit) for reg, bit in data["flips"]), data["index"]
        )
    if kind != "register":
        raise DatasetError(f"unknown fault class {kind!r} in record")
    return FaultSpec(data["register"], data["bit"], data["index"])


def _record_from_dict(data: dict) -> TrialRecord:
    recovery = data.get("recovery")
    return TrialRecord(
        benchmark=data["benchmark"],
        vmer=data["vmer"],
        fault=_fault_from_dict(data),
        activated=data["activated"],
        failure_class=FailureClass(data["failure"]),
        detected_by=DetectionTechnique(data["detected_by"]),
        detection_latency=data["latency"],
        undetected_kind=(
            UndetectedKind(data["undetected_kind"]) if data["undetected_kind"] else None
        ),
        detail=data.get("detail", ""),
        recovery=_recovery_from_dict(recovery) if recovery else None,
    )


def save_records(records, path: str | Path) -> int:
    """Write trial records as JSON lines (header line first); returns count."""
    records = list(records)
    with open(path, "w") as fh:
        fh.write(json.dumps({"format": _RECORDS_FORMAT, "count": len(records)}) + "\n")
        for record in records:
            fh.write(json.dumps(_record_to_dict(record)) + "\n")
    return len(records)


def load_records(path: str | Path) -> tuple[TrialRecord, ...]:
    """Read trial records saved by :func:`save_records`."""
    with open(path) as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _RECORDS_FORMAT:
            raise DatasetError(f"{path}: not a {_RECORDS_FORMAT} file")
        records = tuple(_record_from_dict(json.loads(line)) for line in fh if line.strip())
    if header.get("count") is not None and header["count"] != len(records):
        raise DatasetError(
            f"{path}: header says {header['count']} records, found {len(records)} "
            "(truncated file?)"
        )
    return records


def append_records_jsonl(
    records: Iterable[TrialRecord], path: str | Path, *, fsync: bool = False
) -> int:
    """Append trial records to a headerless JSONL stream; returns the count.

    The streaming companion to :func:`save_records`: multi-hour campaigns
    (and the engine's shard workers) can flush batches incrementally instead
    of holding every record in memory for one final write.  ``fsync=True``
    makes the batch durable before returning (the engine journals this way).
    """
    count = 0
    with open(path, "a") as fh:
        for record in records:
            fh.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    return count


def iter_records_jsonl(path: str | Path) -> Iterator[TrialRecord]:
    """Stream trial records from a file written by :func:`append_records_jsonl`.

    Yields records one at a time (constant memory); blank lines are skipped
    so concatenated batch files parse cleanly.
    """
    with open(path) as fh:
        for line in fh:
            if line.strip():
                yield _record_from_dict(json.loads(line))


# -- golden-artifact structural codecs ----------------------------------------
#
# The JSON-able rim of a golden artifact (repro.artifacts.codec): everything
# except page contents and numpy columns.  Kept here with the other on-disk
# formats so one module owns every serialization contract.  Imports are local
# to the functions — persist is imported by training code that must not pull
# the machine simulator in.


def activation_to_dict(activation) -> dict:
    """Serialize an :class:`~repro.hypervisor.xen.Activation`."""
    return {
        "vmer": activation.vmer,
        "args": list(activation.args),
        "domain_id": activation.domain_id,
        "vcpu_id": activation.vcpu_id,
        "seq": activation.seq,
    }


def activation_from_dict(data: dict):
    """Rebuild an activation serialized by :func:`activation_to_dict`."""
    from repro.hypervisor.xen import Activation

    return Activation(
        vmer=data["vmer"],
        args=tuple(data["args"]),
        domain_id=data["domain_id"],
        vcpu_id=data["vcpu_id"],
        seq=data["seq"],
    )


def activation_result_to_dict(result) -> dict:
    """Serialize an :class:`~repro.hypervisor.xen.ActivationResult`.

    The exit reason is stored by VMER (rebuilt from the registry) and the
    exit op by name, so the payload is plain JSON scalars throughout.
    """
    return {
        "activation": activation_to_dict(result.activation),
        "vmer": result.reason.vmer,
        "exit_op": result.exit_op.name,
        "instructions": result.instructions,
        "path_hash": result.path_hash,
        "sample": list(result.sample.as_tuple()),
        "tsc_end": result.tsc_end,
    }


def activation_result_from_dict(data: dict, *, registry):
    """Rebuild a result serialized by :func:`activation_result_to_dict`."""
    from repro.hypervisor.xen import ActivationResult
    from repro.machine.isa import Op
    from repro.machine.perfcounters import CounterSample

    return ActivationResult(
        activation=activation_from_dict(data["activation"]),
        reason=registry.by_vmer(data["vmer"]),
        exit_op=Op[data["exit_op"]],
        instructions=data["instructions"],
        path_hash=data["path_hash"],
        sample=CounterSample(*data["sample"]),
        tsc_end=data["tsc_end"],
    )


def core_checkpoint_to_dict(core) -> dict:
    """Serialize a :class:`~repro.machine.cpu.CoreCheckpoint` (all scalars;
    the tracer's address list is empty under the campaign's light tracer)."""
    count, path_hash, addresses = core.tracer
    return {
        "index": core.index,
        "regs": list(core.regs),
        "pmu": list(core.pmu),
        "tracer": [count, path_hash, list(addresses)],
        "tsc": core.tsc,
        "assert_checks": core.assert_checks,
    }


def core_checkpoint_from_dict(data: dict):
    """Rebuild a core checkpoint serialized by :func:`core_checkpoint_to_dict`."""
    from repro.machine.cpu import CoreCheckpoint

    count, path_hash, addresses = data["tracer"]
    return CoreCheckpoint(
        index=data["index"],
        regs=tuple(data["regs"]),
        # The PMU snapshot nests one tuple (the collection-window base);
        # JSON round-trips it as a list, so re-tuple recursively.
        pmu=tuple(tuple(x) if isinstance(x, list) else x for x in data["pmu"]),
        tracer=(count, path_hash, tuple(addresses)),
        tsc=data["tsc"],
        assert_checks=data["assert_checks"],
    )


# -- datasets ----------------------------------------------------------------------


def save_dataset(dataset: Dataset, path: str | Path) -> None:
    """Save a labeled dataset as ``.npz``."""
    np.savez_compressed(
        path,
        X=dataset.X,
        y=dataset.y,
        feature_names=np.array(dataset.feature_names),
    )


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`."""
    data = np.load(path, allow_pickle=False)
    return Dataset(
        data["X"],
        data["y"],
        tuple(str(n) for n in data["feature_names"]),
    )
