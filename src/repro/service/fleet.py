"""Deterministic fleet simulator: hosts x VMs emitting feature rows.

Models a fleet of hypervisor hosts, each running several guest VMs whose
activations produce the paper's five-feature rows (VMER, RT, BR, RM, WM —
Table I).  Every host draws from its own named RNG stream
(``rng.stream(seed, "fleet", host)``), so a host's emission sequence depends
only on ``(seed, host)`` — it is bit-identical no matter how many other hosts
exist, how rows are batched downstream, or how the tick loop interleaves
hosts.  A configurable fraction of rows carry an *injected fault*: their
counters are perturbed the way an activated soft error perturbs real
executions (inflated/deflated instruction, branch and memory counts), and the
row remembers its ground truth so the service can label verdicts.

Bursts model the failure mode backpressure exists for: every
``burst_every`` ticks a host emits ``burst_rows`` extra rows in one tick,
which overflows bounded queues deterministically (drops depend only on the
emission schedule and the queue depth, never on micro-batch size).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro import rng
from repro.errors import CampaignConfigError
from repro.hypervisor import REGISTRY

__all__ = ["FleetConfig", "FleetRow", "FleetSimulator", "HostStream"]

#: Counter envelopes for a nominal activation, loosely matching the ranges
#: the simulated hypervisor's handlers produce (see Fig. 3 harnesses).
_RT_RANGE = (40, 900)
_BR_RANGE = (2, 120)
_RM_RANGE = (1, 90)
_WM_RANGE = (0, 60)


@dataclass(frozen=True)
class FleetConfig:
    """Shape and seeding of the simulated fleet."""

    hosts: int = 8
    vms_per_host: int = 4
    seed: int = 5
    inject_fraction: float = 0.02
    rows_per_tick: int = 4       # mean rows per host per tick
    burst_every: int = 0         # 0 disables bursts
    burst_rows: int = 0

    def __post_init__(self) -> None:
        if self.hosts < 1 or self.vms_per_host < 1:
            raise CampaignConfigError("fleet needs at least one host and one VM")
        if not 0.0 <= self.inject_fraction <= 1.0:
            raise CampaignConfigError("inject_fraction must be in [0, 1]")
        if self.rows_per_tick < 1:
            raise CampaignConfigError("rows_per_tick must be >= 1")
        if self.burst_every < 0 or self.burst_rows < 0:
            raise CampaignConfigError("burst settings must be >= 0")


@dataclass
class FleetRow:
    """One activation feature row with its provenance and ground truth."""

    host: int
    vm: int
    tick: int
    features: tuple[int, int, int, int, int]  # (VMER, RT, BR, RM, WM)
    injected: bool
    emitted_at: float = 0.0  # perf-counter timestamp, set by the daemon


class HostStream:
    """One host's deterministic emission stream.

    All randomness comes from the host's named stream, consumed in a fixed
    per-row order (vm, vmer, counters, inject draw, perturbation), so row
    *i* of host *h* is a pure function of ``(seed, h, i)``.
    """

    #: Rows' worth of column data drawn per vectorized refill.
    BLOCK = 256

    def __init__(self, config: FleetConfig, host: int) -> None:
        self.config = config
        self.host = host
        self._rng = rng.stream(config.seed, "fleet", host)
        self._n_vmers = len(REGISTRY)
        self.emitted = 0
        self.injected = 0
        # Pre-drawn (vm, features, injected) tuples, newest last.  Refills
        # are vectorized in BLOCK-row chunks so emission costs one numpy
        # call per column per block instead of per tick (ticks are ~4 rows).
        self._buffer: list[tuple[int, tuple[int, int, int, int, int], bool]] = []

    def _refill(self, n: int) -> None:
        """Draw at least ``n`` more rows' worth of column data, vectorized.

        Draw order is fixed (each column, then the injection perturbation;
        perturbation draws are consumed for every row, applied only to the
        injected ones), so the stream stays a pure function of
        ``(seed, host, rows drawn so far)``.
        """
        g = self._rng
        config = self.config
        n = max(n, self.BLOCK)
        vm = g.integers(0, config.vms_per_host, n)
        vmer = g.integers(0, self._n_vmers, n)
        rt = g.integers(*_RT_RANGE, size=n)
        br = g.integers(*_BR_RANGE, size=n)
        rm = g.integers(*_RM_RANGE, size=n)
        wm = g.integers(*_WM_RANGE, size=n)
        injected = g.random(n) < config.inject_fraction
        # An activated flip derails the handler: control flow runs long or
        # short, and the memory mix shifts with it.
        scale = g.uniform(1.8, 6.0, n)
        scale = np.where(g.random(n) < 0.3, 1.0 / scale, scale)
        rm_hit = g.random(n) < 0.7
        wm_hit = g.random(n) < 0.7
        rt = np.where(injected, np.maximum(1, (rt * scale).astype(np.int64)), rt)
        br = np.where(injected, (br * scale).astype(np.int64), br)
        rm = np.where(injected & rm_hit, (rm * scale).astype(np.int64), rm)
        wm = np.where(injected & wm_hit, (wm * scale).astype(np.int64), wm)
        block = list(
            zip(
                vm.tolist(),
                zip(vmer.tolist(), rt.tolist(), br.tolist(),
                    rm.tolist(), wm.tolist()),
                injected.tolist(),
            )
        )
        block.reverse()  # popping from the end preserves draw order
        self._buffer[:0] = block

    def rows_for_tick(self, tick: int) -> list[FleetRow]:
        """Emit this tick's rows (jittered around ``rows_per_tick``)."""
        g = self._rng
        config = self.config
        mean = config.rows_per_tick
        n = int(g.integers(max(1, mean - 1), mean + 2))
        if (
            config.burst_every
            and config.burst_rows
            and tick % config.burst_every == config.burst_every - 1
        ):
            n += config.burst_rows
        if len(self._buffer) < n:
            self._refill(n - len(self._buffer))
        host = self.host
        buffer = self._buffer
        rows = []
        injected_count = 0
        for _ in range(n):
            vm, features, injected = buffer.pop()
            injected_count += injected
            rows.append(
                FleetRow(
                    host=host, vm=vm, tick=tick,
                    features=features, injected=injected,
                )
            )
        self.emitted += n
        self.injected += injected_count
        return rows


class FleetSimulator:
    """The whole fleet: one :class:`HostStream` per host, ticked in order."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.hosts = [HostStream(config, host) for host in range(config.hosts)]
        self.tick = 0
        self.emitted = 0
        self.injected = 0

    def next_tick(self, max_rows: int | None = None) -> list[FleetRow]:
        """Emit one tick of rows across the fleet, in host order.

        ``max_rows`` caps *cumulative* fleet emission: the tick is truncated
        mid-host once the cap is reached, at a point that depends only on
        the emission schedule (host order is fixed), never on downstream
        batching.
        """
        rows: list[FleetRow] = []
        for host in self.hosts:
            if max_rows is not None and self.emitted >= max_rows:
                break
            emitted = host.rows_for_tick(self.tick)
            if max_rows is not None:
                budget = max_rows - self.emitted
                if budget < len(emitted):
                    # Rewind the host's tallies for rows we refuse to ship.
                    for row in emitted[budget:]:
                        host.emitted -= 1
                        if row.injected:
                            host.injected -= 1
                    emitted = emitted[:budget]
            rows.extend(emitted)
            self.emitted += len(emitted)
            self.injected += sum(1 for row in emitted if row.injected)
        self.tick += 1
        return rows

    def stream(self, max_rows: int) -> Iterator[list[FleetRow]]:
        """Yield ticks until ``max_rows`` rows have been emitted."""
        while self.emitted < max_rows:
            yield self.next_tick(max_rows)

    def feature_matrix(self, rows: list[FleetRow]) -> np.ndarray:
        """Stack rows into the (n, 5) int64 matrix ``classify_batch`` takes."""
        return np.array([row.features for row in rows], dtype=np.int64)
