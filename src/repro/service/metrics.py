"""Prometheus-style metrics, from scratch: Counter, Gauge, Histogram.

The service needs the observability idiom of a real fleet daemon — labeled
counters asserted directly in tests (py-chaos-agent's ``INJECTIONS_TOTAL
.labels(failure_type='cpu', status='success')`` style) and a ``/metrics``
text exposition a Prometheus scraper would accept — without adding a
dependency the container does not have.  This module implements the three
metric kinds the service uses, with label support, thread safety (the scorer
thread and the scrape thread touch the same children), and the text
exposition format (version 0.0.4).

Percentile summaries are *not* duplicated here: histogram children expose
their raw cumulative buckets, and :meth:`Histogram.Child.latency_cdf` lowers
them onto :class:`repro.analysis.stats.Cdf`, the same machinery behind the
paper's Fig. 10 latency CDF.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Iterable, Sequence

import numpy as np

from repro.analysis.stats import Cdf
from repro.errors import CampaignConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "format_value",
]

#: Default histogram buckets (seconds), tuned for sub-millisecond decisions.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


def format_value(value: float) -> str:
    """Render a sample value the way the text format expects."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared child bookkeeping: one child per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        if not name.replace("_", "").replace(":", "").isalnum():
            raise CampaignConfigError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labelvalues: object):
        """Return (creating on first use) the child for one label set."""
        if set(labelvalues) != set(self.labelnames):
            raise CampaignConfigError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _default_child(self):
        """The single unlabeled child (only valid when labelnames is empty)."""
        if self.labelnames:
            raise CampaignConfigError(
                f"{self.name} is labeled; use .labels(...)"
            )
        return self.labels()

    def _make_child(self):
        raise NotImplementedError

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """Snapshot of (label values, child) pairs in creation order."""
        with self._lock:
            return list(self._children.items())

    def expose(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self.children():
            lines.extend(self._expose_child(key, child))
        return lines

    def _expose_child(self, key: tuple[str, ...], child) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"

    class Child:
        __slots__ = ("_lock", "_value")

        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._value = 0.0

        def inc(self, amount: float = 1.0) -> None:
            if amount < 0:
                raise CampaignConfigError("counters only go up")
            with self._lock:
                self._value += amount

        @property
        def value(self) -> float:
            with self._lock:
                return self._value

    def _make_child(self) -> "Counter.Child":
        return Counter.Child()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _expose_child(self, key: tuple[str, ...], child: "Counter.Child") -> list[str]:
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {format_value(child.value)}"]


class Gauge(_Metric):
    """A value that can go up and down (queue depths, in-flight work)."""

    kind = "gauge"

    class Child:
        __slots__ = ("_lock", "_value")

        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._value = 0.0

        def set(self, value: float) -> None:
            with self._lock:
                self._value = float(value)

        def inc(self, amount: float = 1.0) -> None:
            with self._lock:
                self._value += amount

        def dec(self, amount: float = 1.0) -> None:
            with self._lock:
                self._value -= amount

        @property
        def value(self) -> float:
            with self._lock:
                return self._value

    def _make_child(self) -> "Gauge.Child":
        return Gauge.Child()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _expose_child(self, key: tuple[str, ...], child: "Gauge.Child") -> list[str]:
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {format_value(child.value)}"]


class Histogram(_Metric):
    """Cumulative-bucket histogram (the ``le`` convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise CampaignConfigError("histogram needs at least one bucket")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds

    class Child:
        __slots__ = ("_lock", "bounds", "counts", "total", "count")

        def __init__(self, bounds: tuple[float, ...]) -> None:
            self._lock = threading.Lock()
            self.bounds = bounds
            self.counts = [0] * len(bounds)  # per-bucket (non-cumulative)
            self.total = 0.0
            self.count = 0

        def observe(self, value: float) -> None:
            index = bisect_left(self.bounds, value)
            with self._lock:
                self.counts[index] += 1
                self.total += value
                self.count += 1

        def cumulative(self) -> list[int]:
            """Counts at or below each bound (the exposition convention)."""
            with self._lock:
                out, running = [], 0
                for c in self.counts:
                    running += c
                    out.append(running)
                return out

        def latency_cdf(self) -> Cdf:
            """Lower the buckets onto the analysis-layer CDF machinery.

            Each observation is represented by its bucket's upper bound (the
            resolution the histogram actually has), so percentiles read off
            this CDF agree with what a Prometheus ``histogram_quantile``
            would report at bucket granularity.  The overflow bucket is
            represented by the largest finite bound.
            """
            with self._lock:
                counts = list(self.counts)
            finite = [b for b in self.bounds if b != math.inf]
            uppers = finite + [finite[-1]]  # +Inf observations clamp to last bound
            samples = np.repeat(uppers, counts)
            if samples.size == 0:
                raise CampaignConfigError("histogram has no observations")
            return Cdf.from_samples(samples)

    def _make_child(self) -> "Histogram.Child":
        return Histogram.Child(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def _expose_child(self, key: tuple[str, ...], child: "Histogram.Child") -> list[str]:
        lines = []
        cumulative = child.cumulative()
        for bound, count in zip(child.bounds, cumulative):
            names = self.labelnames + ("le",)
            values = key + (format_value(bound),)
            lines.append(
                f"{self.name}_bucket{_render_labels(names, values)} {count}"
            )
        labels = _render_labels(self.labelnames, key)
        lines.append(f"{self.name}_sum{labels} {format_value(child.total)}")
        lines.append(f"{self.name}_count{labels} {child.count}")
        return lines


class MetricsRegistry:
    """An ordered collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise CampaignConfigError(f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> _Metric:
        with self._lock:
            return self._metrics[name]

    def expose(self) -> str:
        """The full ``/metrics`` payload (trailing newline included)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"


#: Ground-truth-aware classification outcomes (the simulator knows which rows
#: carried an injected fault, so the service can label every verdict).
OUTCOMES: tuple[str, ...] = (
    "true_positive", "false_positive", "true_negative", "false_negative",
)


class ServiceMetrics:
    """The detection service's metric taxonomy on one registry.

    ``detections_total`` counts every scored row by ground-truth outcome —
    detections proper are the ``true_positive`` + ``false_positive`` children.
    Queue pressure is never silent: overflow drops land in
    ``rows_dropped_total`` with the host that dropped them.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.rows_emitted = self.registry.counter(
            "repro_rows_emitted_total",
            "Feature rows emitted by the fleet simulator.", ("host",),
        )
        self.rows_scored = self.registry.counter(
            "repro_rows_scored_total",
            "Feature rows classified by the detector.", ("host",),
        )
        self.rows_dropped = self.registry.counter(
            "repro_rows_dropped_total",
            "Rows evicted by queue backpressure (drop-oldest policy).", ("host",),
        )
        self.detections = self.registry.counter(
            "repro_detections_total",
            "Scored rows by ground-truth outcome.", ("outcome",),
        )
        self.recoveries = self.registry.counter(
            "repro_recoveries_total",
            "Recovery dispositions for scored detections: a true positive "
            "recovers the activation, a false positive re-executes "
            "spuriously.", ("outcome",),
        )
        self.batches = self.registry.counter(
            "repro_batches_scored_total",
            "Micro-batches drained through classify_batch.",
        )
        self.queue_depth = self.registry.gauge(
            "repro_queue_depth",
            "Rows currently queued per host.", ("host",),
        )
        self.pending_rows = self.registry.gauge(
            "repro_pending_rows",
            "Accepted rows waiting in the global micro-batch buffer.",
        )
        self.hosts_up = self.registry.gauge(
            "repro_fleet_hosts",
            "Simulated hypervisor hosts in the fleet.",
        )
        self.decision_latency = self.registry.histogram(
            "repro_decision_latency_seconds",
            "Wall-clock delay from row emission to classification.", ("host",),
        )

    def expose(self) -> str:
        return self.registry.expose()
