"""Scrape endpoint: ``/metrics`` and ``/healthz`` on a daemon thread.

Stdlib only (:mod:`http.server`): a ``ThreadingHTTPServer`` bound to
loopback serves the registry's text exposition at ``/metrics`` and a JSON
liveness document at ``/healthz``.  ``stop()`` is a graceful shutdown — the
listener stops accepting, in-flight scrapes finish, and the thread joins —
so the daemon can drain its queues, publish final counter values, and only
then take the endpoint down.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.metrics import MetricsRegistry

__all__ = ["MetricsServer"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve one registry until stopped; ``port=0`` binds an ephemeral port."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        health=None,
    ) -> None:
        self.registry = registry
        self._health = health or (lambda: {})
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path == "/metrics":
                    body = server.registry.expose().encode()
                    self._reply(200, _CONTENT_TYPE, body)
                elif self.path == "/healthz":
                    doc = {"status": "ok", **server._health()}
                    self._reply(200, "application/json", json.dumps(doc).encode())
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(self, code: int, ctype: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._started = False

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def stop(self) -> None:
        """Graceful shutdown: finish in-flight scrapes, then close."""
        if self._started:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._started = False
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
