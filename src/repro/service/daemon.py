"""The detection daemon: tick loop over the fleet, scored in micro-batches.

One run is a synchronous tick loop — deterministic by construction:

1. every host emits its tick's rows (seeded per-host streams, host order
   fixed), which are stamped and submitted to the scorer's bounded queues;
2. the scorer drains any queue holding a full micro-batch through
   ``classify_batch``;
3. at end of stream (row cap reached, duration elapsed, or SIGINT) the
   queues are drained to empty, final gauges are published, and only then
   does the scrape endpoint shut down.

Wall-clock never influences *what* is scored — only the stop condition in
``--duration`` mode and the latency histogram — so fixed-seed, row-capped
runs produce bit-identical :class:`~repro.service.scorer.ScoreTotals`
regardless of batch size, queue policy timing, or host machine.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.stats import Cdf
from repro.errors import CampaignConfigError
from repro.service.fleet import FleetConfig, FleetSimulator
from repro.service.http import MetricsServer
from repro.service.metrics import ServiceMetrics
from repro.service.scorer import MicroBatchScorer, OverflowPolicy, ScoreTotals

__all__ = ["DetectionService", "ServiceConfig", "ServiceReport"]

SUMMARY_FORMAT = "xentry-serve-summary-v1"


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one ``repro-xentry serve`` run needs."""

    fleet: FleetConfig = field(default_factory=FleetConfig)
    batch_rows: int = 256
    queue_depth: int = 1024
    policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST
    max_rows: int | None = 50_000
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.max_rows is None and self.duration is None:
            raise CampaignConfigError("need a stop condition: max_rows or duration")
        if self.max_rows is not None and self.max_rows < 1:
            raise CampaignConfigError("max_rows must be >= 1")


@dataclass(frozen=True)
class ServiceReport:
    """End-of-run summary: deterministic totals + wall-clock performance."""

    totals: ScoreTotals
    rows_emitted: int
    rows_injected: int
    ticks: int
    elapsed_seconds: float
    latency_percentiles: dict[str, float]  # p50/p95/p99, seconds

    @property
    def rows_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.totals.rows_scored / self.elapsed_seconds

    def deterministic_dict(self) -> dict:
        """The batch-size-invariant half (what the contract is diffed on)."""
        return {
            "format": SUMMARY_FORMAT,
            "rows_emitted": self.rows_emitted,
            "rows_injected": self.rows_injected,
            "ticks": self.ticks,
            "totals": self.totals.as_dict(),
        }

    def as_dict(self) -> dict:
        return {
            **self.deterministic_dict(),
            "elapsed_seconds": self.elapsed_seconds,
            "rows_per_sec": self.rows_per_sec,
            "latency_percentiles": self.latency_percentiles,
        }

    def summary(self) -> str:
        t = self.totals
        pct = self.latency_percentiles
        lines = [
            f"scored {t.rows_scored:,} rows in {t.batches:,} batches "
            f"({self.rows_per_sec:,.0f} rows/s, {self.ticks:,} ticks)",
            f"detections: {t.detections:,} "
            f"(TP {t.true_positive:,}  FP {t.false_positive:,}  "
            f"FN {t.false_negative:,}  TN {t.true_negative:,})",
            f"backpressure: {t.rows_dropped:,} rows dropped",
        ]
        if pct:
            lines.append(
                "decision latency: "
                f"p50 {pct['p50'] * 1e3:.2f} ms  "
                f"p95 {pct['p95'] * 1e3:.2f} ms  "
                f"p99 {pct['p99'] * 1e3:.2f} ms"
            )
        return "\n".join(lines)


class DetectionService:
    """Run a fleet's row stream through a detector, observably.

    ``model`` needs ``predict_batch(X) -> labels`` (a ``CompiledRules``, a
    loaded ``ModelArtifact``, or a forest).  ``metrics`` may be shared so a
    test or an embedding process can assert on the registry directly.
    """

    def __init__(
        self,
        config: ServiceConfig,
        model,
        *,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.fleet = FleetSimulator(config.fleet)
        self.scorer = MicroBatchScorer(
            model,
            self.metrics,
            batch_rows=config.batch_rows,
            queue_depth=config.queue_depth,
            policy=config.policy,
        )
        self._stop = False
        self._report: ServiceReport | None = None

    # -- lifecycle -----------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the run loop to finish the current tick, then drain."""
        self._stop = True

    def health(self) -> dict:
        """The ``/healthz`` document.

        ``status`` flips to ``degraded`` the moment any scored row is a
        positive detection — the fleet is still serving, but something
        tripped the detector and recoveries are being dispatched.
        """
        totals = self.scorer.totals
        return {
            "status": "degraded" if totals.detections else "ok",
            "hosts": self.config.fleet.hosts,
            "detections": totals.detections,
            "rows_emitted": self.fleet.emitted,
            "rows_scored": totals.rows_scored,
            "rows_dropped": totals.rows_dropped,
            "draining": self._stop,
            "done": self._report is not None,
        }

    def run(self, *, progress=None) -> ServiceReport:
        """Tick until the stop condition, drain, and summarize."""
        config = self.config
        self.metrics.hosts_up.set(config.fleet.hosts)
        started = time.perf_counter()
        deadline = (
            started + config.duration if config.duration is not None else None
        )
        ticks = 0
        while not self._stop:
            if config.max_rows is not None and self.fleet.emitted >= config.max_rows:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            rows = self.fleet.next_tick(config.max_rows)
            stamp = time.perf_counter()
            for row in rows:
                row.emitted_at = stamp
                self.scorer.submit(row)
            self.scorer.pump()
            ticks += 1
            if progress is not None and ticks % 256 == 0:
                progress(self.fleet.emitted, self.scorer.totals.rows_scored)
        self.scorer.drain()
        elapsed = time.perf_counter() - started
        self._report = ServiceReport(
            totals=self.scorer.totals,
            rows_emitted=self.fleet.emitted,
            rows_injected=self.fleet.injected,
            ticks=ticks,
            elapsed_seconds=elapsed,
            latency_percentiles=self.latency_percentiles(),
        )
        return self._report

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 decision latency via the analysis-layer CDF."""
        if not self.scorer.latencies:
            return {}
        cdf = Cdf.from_samples(self.scorer.latencies)
        return {
            "p50": cdf.percentile(0.50),
            "p95": cdf.percentile(0.95),
            "p99": cdf.percentile(0.99),
        }

    def endpoint(self, *, port: int = 0) -> MetricsServer:
        """A scrape endpoint bound to this service's registry and health."""
        return MetricsServer(self.metrics.registry, port=port, health=self.health)

    def write_summary(self, path: str | Path) -> None:
        """Persist the deterministic half of the report (contract diffing)."""
        if self._report is None:
            raise CampaignConfigError("service has not run yet")
        Path(path).write_text(
            json.dumps(self._report.deterministic_dict(), indent=1)
        )
