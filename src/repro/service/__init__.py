"""Streaming detection service: fleet simulation, micro-batch scoring, metrics.

The paper's Xentry is an *online* detector living inside Xen; this package is
the production-shaped counterpart for the reproduction — a long-lived daemon
that scores activation feature streams from a fleet of simulated hypervisor
hosts through a loaded model artifact, with Prometheus-style observability:

* :mod:`repro.service.fleet` — deterministic fleet simulator (hosts x VMs
  emitting (VMER, RT, BR, RM, WM) rows from seeded per-host RNG streams);
* :mod:`repro.service.scorer` — bounded per-host queues with explicit
  backpressure, drained into micro-batches through
  ``CompiledRules.classify_batch``;
* :mod:`repro.service.metrics` — from-scratch ``Counter``/``Gauge``/
  ``Histogram`` with labels and text exposition (no new dependency);
* :mod:`repro.service.http` — stdlib scrape endpoint (``/metrics``,
  ``/healthz``) with graceful shutdown;
* :mod:`repro.service.daemon` — the tick loop wiring it together, exposed as
  the ``repro-xentry serve`` subcommand.

Determinism contract: with a fixed seed and a row cap, the end-of-run
detection totals are bit-identical across runs and independent of the
micro-batch size (batching never changes a label; overflow drops depend only
on the emission schedule and queue depth).
"""

from repro.service.daemon import DetectionService, ServiceConfig, ServiceReport
from repro.service.fleet import FleetConfig, FleetRow, FleetSimulator, HostStream
from repro.service.http import MetricsServer
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from repro.service.scorer import (
    HostQueue,
    MicroBatchScorer,
    OverflowPolicy,
    ScoreTotals,
)

__all__ = [
    "Counter",
    "DetectionService",
    "FleetConfig",
    "FleetRow",
    "FleetSimulator",
    "Gauge",
    "Histogram",
    "HostQueue",
    "HostStream",
    "MetricsRegistry",
    "MetricsServer",
    "MicroBatchScorer",
    "OverflowPolicy",
    "ScoreTotals",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceReport",
]
