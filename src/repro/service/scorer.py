"""Micro-batch scoring with bounded per-host queues and explicit backpressure.

Two stages, mirroring a real ingest pipeline:

1. **Per-host bounded queues** absorb each tick's emission.  The consumer
   empties every queue once per pump, so a queue's fill only ever reflects
   the *current* producer burst — overflow (and therefore every drop) is a
   pure function of the emission schedule and ``queue_depth``, never of how
   scoring is batched downstream.
2. **A global pending buffer** collects accepted rows across hosts and is
   scored in exact ``batch_rows`` chunks through ``classify_batch`` (PR 4's
   vectorized path — bit-identical to per-row classification).  Rows wait in
   the buffer until a batch fills, which is where the batching/latency
   trade-off becomes visible in the latency histogram.

Backpressure is explicit, never silent:

* ``DROP_OLDEST`` — a full queue evicts its oldest row; the drop is counted
  per host (``repro_rows_dropped_total``) and tallied in the totals;
* ``BLOCK`` — the producer stalls until the consumer runs; in the
  synchronous tick loop that means the queue flushes to the buffer
  immediately and no row is ever lost.

Determinism contract: which rows are scored vs dropped depends only on
(seed, schedule, queue_depth, policy); labels are batch-size-invariant by
``classify_batch``'s bit-identity; hence end-of-run detection totals are
independent of ``batch_rows``.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CampaignConfigError
from repro.ml.dataset import INCORRECT
from repro.service.fleet import FleetRow
from repro.service.metrics import ServiceMetrics

__all__ = ["HostQueue", "MicroBatchScorer", "OverflowPolicy", "ScoreTotals"]


class OverflowPolicy(enum.Enum):
    """What a full per-host queue does with the next row."""

    DROP_OLDEST = "drop-oldest"
    BLOCK = "block"


@dataclass
class ScoreTotals:
    """Deterministic end-of-run tallies (no wall-clock terms).

    These mirror the counters in :class:`ServiceMetrics` and are what the
    determinism contract is asserted on: fixed seed + row cap => everything
    here except ``batches`` is equal across runs *and* across batch sizes.
    """

    rows_scored: int = 0
    rows_dropped: int = 0
    batches: int = 0
    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0
    dropped_by_host: dict[int, int] = field(default_factory=dict)

    @property
    def detections(self) -> int:
        return self.true_positive + self.false_positive

    def outcome_counts(self) -> dict[str, int]:
        return {
            "true_positive": self.true_positive,
            "false_positive": self.false_positive,
            "true_negative": self.true_negative,
            "false_negative": self.false_negative,
        }

    def as_dict(self) -> dict:
        """The batch-size-invariant tallies (``batches`` is deliberately
        excluded: how many drains it took is a function of ``batch_rows``,
        what was scored and decided is not)."""
        return {
            "rows_scored": self.rows_scored,
            "rows_dropped": self.rows_dropped,
            "detections": self.detections,
            "outcomes": self.outcome_counts(),
            "dropped_by_host": {
                str(host): n for host, n in sorted(self.dropped_by_host.items())
            },
        }


class _HostChildren:
    """One host's resolved metric children (labels() is per-row hot)."""

    __slots__ = ("emitted", "scored", "dropped", "queue_depth", "latency")

    def __init__(self, metrics: ServiceMetrics, host: int) -> None:
        self.emitted = metrics.rows_emitted.labels(host=host)
        self.scored = metrics.rows_scored.labels(host=host)
        self.dropped = metrics.rows_dropped.labels(host=host)
        self.queue_depth = metrics.queue_depth.labels(host=host)
        self.latency = metrics.decision_latency.labels(host=host)


class HostQueue:
    """A bounded FIFO of pending rows for one host."""

    def __init__(self, host: int, depth: int) -> None:
        if depth < 1:
            raise CampaignConfigError("queue depth must be >= 1")
        self.host = host
        self.depth = depth
        self.rows: deque[FleetRow] = deque()

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def full(self) -> bool:
        return len(self.rows) >= self.depth

    def push(self, row: FleetRow) -> FleetRow | None:
        """Append a row; returns the evicted row if the queue was full."""
        evicted = self.rows.popleft() if self.full else None
        self.rows.append(row)
        return evicted

    def take_all(self) -> list[FleetRow]:
        """Pop every queued row (the consumer's per-pump drain)."""
        rows = list(self.rows)
        self.rows.clear()
        return rows


class MicroBatchScorer:
    """Per-host bounded ingest, global micro-batch scoring.

    ``model`` is anything with the batch detector protocol —
    ``predict_batch(X) -> labels`` — which :class:`~repro.ml.export
    .CompiledRules` and a loaded :class:`~repro.persist.ModelArtifact` both
    satisfy.
    """

    def __init__(
        self,
        model,
        metrics: ServiceMetrics,
        *,
        batch_rows: int = 256,
        queue_depth: int = 1024,
        policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
        clock=time.perf_counter,
    ) -> None:
        if batch_rows < 1:
            raise CampaignConfigError("batch_rows must be >= 1")
        self.model = model
        self.metrics = metrics
        self.batch_rows = batch_rows
        self.queue_depth = queue_depth
        self.policy = policy
        self.clock = clock
        self.totals = ScoreTotals()
        self.latencies: list[float] = []  # per-row decision latency, seconds
        self._queues: dict[int, HostQueue] = {}
        self._pending: deque[FleetRow] = deque()
        # Label lookups hash the label set on every call; the hot path runs
        # per row, so each host's children are resolved once and cached.
        self._host_children: dict[int, _HostChildren] = {}

    # -- ingestion -----------------------------------------------------------

    def _queue(self, host: int) -> HostQueue:
        queue = self._queues.get(host)
        if queue is None:
            queue = self._queues[host] = HostQueue(host, self.queue_depth)
        return queue

    def _children(self, host: int) -> "_HostChildren":
        children = self._host_children.get(host)
        if children is None:
            children = self._host_children[host] = _HostChildren(
                self.metrics, host
            )
        return children

    def submit(self, row: FleetRow) -> None:
        """Enqueue one row, applying the overflow policy if needed."""
        queue = self._queue(row.host)
        children = self._children(row.host)
        children.emitted.inc()
        if queue.full and self.policy is OverflowPolicy.BLOCK:
            # Producer would block; the consumer accepts the backlog now.
            self._accept(queue)
        evicted = queue.push(row)
        if evicted is not None:
            self.totals.rows_dropped += 1
            self.totals.dropped_by_host[queue.host] = (
                self.totals.dropped_by_host.get(queue.host, 0) + 1
            )
            children.dropped.inc()
        children.queue_depth.set(len(queue))

    # -- draining ------------------------------------------------------------

    def _accept(self, queue: HostQueue) -> None:
        """Move a queue's backlog into the global pending buffer."""
        rows = queue.take_all()
        if rows:
            self._pending.extend(rows)
            self._children(queue.host).queue_depth.set(0)
        self.metrics.pending_rows.set(len(self._pending))

    def pump(self) -> int:
        """One consumer cycle: accept all backlogs, score full batches."""
        for host in sorted(self._queues):
            self._accept(self._queues[host])
        scored = 0
        while len(self._pending) >= self.batch_rows:
            scored += self._score(self._take_batch(self.batch_rows))
        return scored

    def drain(self) -> int:
        """Flush everything (end of stream / graceful shutdown)."""
        scored = self.pump()
        while self._pending:
            scored += self._score(self._take_batch(self.batch_rows))
        return scored

    def queue_depths(self) -> dict[int, int]:
        return {host: len(q) for host, q in sorted(self._queues.items())}

    @property
    def pending(self) -> int:
        return len(self._pending)

    def _take_batch(self, n: int) -> list[FleetRow]:
        rows = [
            self._pending.popleft() for _ in range(min(n, len(self._pending)))
        ]
        self.metrics.pending_rows.set(len(self._pending))
        return rows

    def _score(self, rows: list[FleetRow]) -> int:
        if not rows:
            return 0
        X = np.array([row.features for row in rows], dtype=np.int64)
        labels = self.model.predict_batch(X)
        now = self.clock()
        outcomes = {name: 0 for name in (
            "true_positive", "false_positive", "true_negative", "false_negative",
        )}
        by_host: dict[int, int] = {}
        latencies = self.latencies
        flagged_labels = np.asarray(labels) == INCORRECT
        for row, flagged in zip(rows, flagged_labels.tolist()):
            if flagged:
                outcome = "true_positive" if row.injected else "false_positive"
            else:
                outcome = "false_negative" if row.injected else "true_negative"
            outcomes[outcome] += 1
            by_host[row.host] = by_host.get(row.host, 0) + 1
            if row.emitted_at:
                latency = max(0.0, now - row.emitted_at)
                latencies.append(latency)
                self._children(row.host).latency.observe(latency)
        for outcome, count in outcomes.items():
            if count:
                setattr(self.totals, outcome, getattr(self.totals, outcome) + count)
                self.metrics.detections.labels(outcome=outcome).inc(count)
        # Every positive detection dispatches the recovery path: a true
        # positive restores-and-re-executes ("recovered"), a false positive
        # pays the same cost for nothing ("spurious").
        if outcomes["true_positive"]:
            self.metrics.recoveries.labels(outcome="recovered").inc(
                outcomes["true_positive"]
            )
        if outcomes["false_positive"]:
            self.metrics.recoveries.labels(outcome="spurious").inc(
                outcomes["false_positive"]
            )
        for host, count in by_host.items():
            self._children(host).scored.inc(count)
        self.totals.rows_scored += len(rows)
        self.totals.batches += 1
        self.metrics.batches.inc()
        return len(rows)
