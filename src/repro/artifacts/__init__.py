"""Content-addressed golden artifact cache with zero-copy distribution.

Every golden group of a fault-injection campaign is a pure function of the
digest-relevant subset of :class:`~repro.faults.campaign.CampaignConfig`
and its ``(benchmark, group)`` coordinate, so its products — the
:class:`~repro.faults.propagation.GoldenRun`, the checkpoint ladder, and
the lock-step :class:`~repro.machine.lockstep.TwinPlan` — can be captured
once, stored by content address, and served to every later run and every
pool worker:

* :mod:`repro.artifacts.store` — the on-disk store and the golden digest;
* :mod:`repro.artifacts.codec` — the versioned, checksummed binary format;
* :mod:`repro.artifacts.shm` — zero-copy segment publication for pools;
* :mod:`repro.artifacts.runtime` — the capture-or-load policy and stats.

Submodules import lazily where needed (``store`` reaches into
``repro.faults``); import concrete names from the submodules.
"""

__all__ = ["codec", "runtime", "shm", "store"]
