"""Content-addressed on-disk store for golden-group artifacts.

Every golden group of a campaign — the fault-free :class:`GoldenRun` with
its checkpoint ladder, plus the lock-step :class:`TwinPlan` lowered from its
full trace — is a pure function of the digest-relevant subset of
:class:`~repro.faults.campaign.CampaignConfig` and the ``(benchmark, group)``
coordinates.  :func:`golden_digest` fingerprints exactly that subset, and
:class:`GoldenStore` keys one artifact file per digest under::

    <root>/golden/<digest[:2]>/<digest>.art

Writes are atomic (unique temp file + fsync + ``os.replace``), so a crashed
or concurrent campaign can never leave a torn artifact behind a valid name;
two workers racing to capture the same group write byte-identical content,
so last-rename-wins is harmless.  Reads are checksum-verified by the codec:
a truncated, corrupted or version-bumped file *never* raises out of the
store — it counts as ``artifact_corrupt`` and the campaign falls back to
live capture, under the standing contract that trial records are
byte-identical with the cache cold, warm, shared or disabled.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.artifacts.codec import ArtifactCorrupt, decode_group, encode_group
from repro.faults.campaign import CampaignConfig, benchmark_geometry

__all__ = ["GoldenStore", "golden_digest"]

#: Version tag of the digest payload; bump when the artifact *identity*
#: changes (what a golden group depends on), independent of the binary
#: format version in :mod:`repro.artifacts.codec`.
DIGEST_FORMAT = "xentry-golden-v1"


def golden_digest(config: CampaignConfig, benchmark: str, group: int) -> str:
    """Content address of one golden group's artifact.

    The payload holds everything the golden products depend on — and nothing
    else, so detector/recovery/fault-model sweeps over the same workload
    share artifacts:

    * the activation stream identity: seed, benchmark, mode, domain count,
      warmup length, and the *bulk draw geometry* (``stream_length`` and
      ``stride``) — the workload generator draws the whole activation-index
      array up front, so activation ``i`` depends on the total stream
      length, not just its prefix;
    * the group coordinate within that stream;
    * ``ladder_interval`` (rung placement is part of the artifact) and
      ``twin_batch`` (whether a :class:`TwinPlan` is captured);
    * the scenario payload when one is armed (workload overrides reshape
      the activation mix; the whole payload keys conservatively).

    ``fault_model``, ``recover`` and the detector are deliberately absent:
    they shape *trials*, never the fault-free golden products.
    """
    # Imported here, not at module scope: repro.engine.pool imports this
    # module, and importing the engine package from here would close that
    # loop for any artifacts-first import order.
    from repro.engine.planner import payload_digest

    geo = benchmark_geometry(config)
    payload: dict = {
        "format": DIGEST_FORMAT,
        "seed": config.seed,
        "benchmark": benchmark,
        "group": group,
        "mode": config.mode.value,
        "n_domains": config.n_domains,
        "warmup_activations": config.warmup_activations,
        "stride": geo.stride,
        "stream_length": geo.n_goldens * geo.stride,
        "ladder_interval": config.ladder_interval,
        "twin_batch": config.twin_batch,
    }
    if config.scenario is not None:
        payload["scenario"] = config.scenario.digest_payload()
    return payload_digest(payload)


class GoldenStore:
    """Filesystem half of the artifact cache (one directory, many digests).

    The store never raises on a bad artifact: :meth:`load_bytes` /
    :meth:`load` return ``None`` for missing *and* corrupt files (corruption
    is counted by the runtime layer), and :meth:`save` degrades to a no-op
    on an unwritable directory — caching is an optimization, not a
    correctness dependency.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, digest: str) -> Path:
        """Content-addressed location of one artifact."""
        return self.root / "golden" / digest[:2] / f"{digest}.art"

    def load_bytes(self, digest: str) -> bytes | None:
        """Raw artifact bytes, or ``None`` when absent/unreadable.

        No validation happens here — the codec's checksum check runs at
        decode time, which also covers bytes republished through shared
        memory.
        """
        try:
            return self.path_for(digest).read_bytes()
        except OSError:
            return None

    def load(self, digest: str, *, registry):
        """Decode one artifact; ``None`` when absent, raises ArtifactCorrupt
        for present-but-invalid bytes (the runtime layer converts that into
        an ``artifact_corrupt`` count plus live-capture fallback)."""
        blob = self.load_bytes(digest)
        if blob is None:
            return None
        payload = decode_group(blob, registry=registry)
        if payload.digest != digest:
            raise ArtifactCorrupt(
                f"artifact self-identifies as {payload.digest}, filed as {digest}"
            )
        return payload

    def save(self, digest: str, blob: bytes) -> bool:
        """Atomically publish ``blob`` under ``digest``; False on failure.

        The temp name is unique per process so concurrent captures of the
        same group never collide mid-write; both rename byte-identical
        content into place.
        """
        path = self.path_for(digest)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False

    def encode(self, digest: str, golden, plan_state) -> bytes:
        """Encode one group's products (thin codec passthrough)."""
        return encode_group(digest, golden, plan_state)

    def contains(self, digest: str) -> bool:
        """True when an artifact file exists for ``digest`` (no validation)."""
        return self.path_for(digest).is_file()
