"""Binary codec for golden-group artifacts.

One artifact holds everything a worker needs to run a golden group's trials
without executing the fault-free twin: the :class:`GoldenRun` (result,
outputs, heap image, pre-run checkpoint, follow-up results, checkpoint
ladder) and the lock-step :class:`TwinPlan` state.  The layout::

    MAGIC (8 bytes, includes the format version byte)
    u64   header length
    JSON  header (structured rim via repro.persist codecs + blob index)
    pad   to 8-byte alignment
    blobs (checkpoint pages, heap image, numpy columns; each 8-aligned)
    blake2b-16 checksum of everything above

Two properties matter more than compactness:

* **Deduplicated pages.**  Checkpoint-ladder rungs share almost every page
  with their neighbours; pages are stored once and referenced by index, and
  the decoder materializes one buffer per unique page *shared across every
  checkpoint of the group* — restoring the copy-on-write structural sharing
  :meth:`Memory.restore` exploits (its diff is by buffer identity).
* **Mappable columns.**  TwinPlan position columns are raw little-endian
  int64 runs at 8-aligned offsets, so a decoder handed a ``memoryview``
  over a shared-memory segment builds its arrays with ``np.frombuffer`` —
  zero-copy, every pool worker scanning the same physical pages.

No pickle anywhere: a corrupt or adversarial artifact can fail to decode
(:class:`ArtifactCorrupt`), never execute.  The trailing checksum makes
truncation, bit rot and torn writes indistinguishable from any other
corruption — one fallback path, counted once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.faults.propagation import GoldenRun
from repro.hypervisor.xen import MachineCheckpoint
from repro.machine.lockstep import TwinPlan
from repro.machine.memory import MemoryCheckpoint
from repro.persist import (
    activation_result_from_dict,
    activation_result_to_dict,
    core_checkpoint_from_dict,
    core_checkpoint_to_dict,
)

__all__ = [
    "ArtifactCorrupt",
    "ArtifactPayload",
    "CODEC_FORMAT",
    "MAGIC",
    "PLAN_ABSENT",
    "PLAN_NONE",
    "PLAN_PRESENT",
    "decode_group",
    "encode_group",
]

#: Last byte is the binary-format version: bump it and every older reader
#: treats the file as corrupt (fallback to live capture, never a misparse).
MAGIC = b"XENTART\x01"
CODEC_FORMAT = "xentry-artifact-v1"
_CHECKSUM_BYTES = 16

#: TwinPlan captured and usable.
PLAN_PRESENT = "plan"
#: TwinPlan capture was attempted and refused (trace mismatch): the cached
#: group must peel every twin, exactly like the live path would.
PLAN_NONE = "none"
#: No TwinPlan in the artifact (captured with twin batching off).
PLAN_ABSENT = "absent"

_COLUMN_DTYPE = np.dtype("<i8")


class ArtifactCorrupt(Exception):
    """An artifact's bytes are not a valid, checksummed encoding."""


@dataclass(frozen=True)
class ArtifactPayload:
    """A decoded artifact: the golden products plus the plan state."""

    digest: str
    golden: GoldenRun
    #: ``(PLAN_PRESENT, TwinPlan) | (PLAN_NONE, None) | (PLAN_ABSENT, None)``.
    plan_state: tuple[str, TwinPlan | None]
    #: Encoded size (telemetry: bytes served from cache instead of re-run).
    nbytes: int


class _BlobWriter:
    """Accumulates 8-aligned blobs, deduplicating by content."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.index: list[tuple[int, int]] = []  # (offset, length) per blob id
        self.offset = 0
        self._by_content: dict[bytes, int] = {}

    def add(self, data: bytes) -> int:
        """Store ``data`` (deduplicated) and return its blob id."""
        blob_id = self._by_content.get(data)
        if blob_id is not None:
            return blob_id
        pad = (-self.offset) % 8
        if pad:
            self.chunks.append(b"\x00" * pad)
            self.offset += pad
        blob_id = len(self.index)
        self._by_content[data] = blob_id
        self.index.append((self.offset, len(data)))
        self.chunks.append(data)
        self.offset += len(data)
        return blob_id


def _pages_ref(pages: dict[int, bytes], writer: _BlobWriter) -> list[list[int]]:
    """Lower a checkpoint's page dict to ``[page_base, blob_id]`` pairs.

    Sorted by base so identical checkpoints encode identically (artifact
    bytes are content-addressed; determinism keeps racing writers benign).
    """
    return [[base, writer.add(bytes(pages[base]))] for base in sorted(pages)]


def encode_group(
    digest: str, golden: GoldenRun, plan_state: tuple[str, TwinPlan | None]
) -> bytes:
    """Encode one golden group's products into artifact bytes."""
    writer = _BlobWriter()
    header: dict = {
        "format": CODEC_FORMAT,
        "digest": digest,
        "golden": {
            "result": activation_result_to_dict(golden.result),
            "followups": [activation_result_to_dict(f) for f in golden.followups],
            "outputs": [[addr, golden.outputs[addr]] for addr in sorted(golden.outputs)],
            "heap": writer.add(golden.heap_image),
            "checkpoint": _pages_ref(golden.checkpoint.pages, writer),
            "ladder": [
                {
                    "core": core_checkpoint_to_dict(rung.core),
                    "pages": _pages_ref(rung.memory.pages, writer),
                }
                for rung in golden.ladder
            ],
        },
    }
    state, plan = plan_state
    if state == PLAN_PRESENT:
        if plan is None:
            raise ValueError("plan_state says present but no plan given")
        header["plan"] = {
            "state": state,
            "instructions": plan.instructions,
            "tops": _column_ref(plan.tops, writer),
            "reads_pos": [_column_ref(c, writer) for c in plan.reads_pos],
            "writes_pos": [_column_ref(c, writer) for c in plan.writes_pos],
        }
    elif state in (PLAN_NONE, PLAN_ABSENT):
        header["plan"] = {"state": state}
    else:
        raise ValueError(f"unknown plan state {state!r}")
    header["blobs"] = [[off, length] for off, length in writer.index]

    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    prefix_len = len(MAGIC) + 8 + len(header_bytes)
    pad = (-prefix_len) % 8
    parts = [
        MAGIC,
        len(header_bytes).to_bytes(8, "little"),
        header_bytes,
        b"\x00" * pad,
        *writer.chunks,
    ]
    body = b"".join(parts)
    return body + hashlib.blake2b(body, digest_size=_CHECKSUM_BYTES).digest()


def _column_ref(column: np.ndarray, writer: _BlobWriter) -> int:
    return writer.add(np.ascontiguousarray(column, dtype=_COLUMN_DTYPE).tobytes())


def decode_group(buf: bytes | memoryview, *, registry) -> ArtifactPayload:
    """Decode artifact bytes; raises :class:`ArtifactCorrupt` on anything
    that is not a checksummed, well-formed encoding.

    When ``buf`` is a ``memoryview`` (a shared-memory segment), TwinPlan
    columns become zero-copy ``np.frombuffer`` views and checkpoint pages
    zero-copy sub-views of the segment; callers own the segment's lifetime
    (pool workers keep their attachment mapped for the process lifetime).
    """
    view = memoryview(buf)
    try:
        if len(view) < len(MAGIC) + 8 + _CHECKSUM_BYTES:
            raise ArtifactCorrupt("artifact truncated below minimum size")
        if bytes(view[: len(MAGIC)]) != MAGIC:
            raise ArtifactCorrupt("bad magic or unsupported artifact version")
        body, checksum = view[:-_CHECKSUM_BYTES], view[-_CHECKSUM_BYTES:]
        expect = hashlib.blake2b(body, digest_size=_CHECKSUM_BYTES).digest()
        if bytes(checksum) != expect:
            raise ArtifactCorrupt("artifact checksum mismatch")
        header_len = int.from_bytes(view[len(MAGIC) : len(MAGIC) + 8], "little")
        header_end = len(MAGIC) + 8 + header_len
        if header_end > len(body):
            raise ArtifactCorrupt("artifact header extends past payload")
        try:
            header = json.loads(bytes(view[len(MAGIC) + 8 : header_end]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactCorrupt(f"artifact header unreadable: {exc}") from exc
        if header.get("format") != CODEC_FORMAT:
            raise ArtifactCorrupt(
                f"artifact format {header.get('format')!r} != {CODEC_FORMAT}"
            )
        blob_base = header_end + ((-header_end) % 8)
        blob_area = body[blob_base:]

        def blob(blob_id: int) -> memoryview:
            off, length = header["blobs"][blob_id]
            if off + length > len(blob_area):
                raise ArtifactCorrupt(f"blob {blob_id} out of bounds")
            return blob_area[off : off + length]

        # One buffer per unique page blob, shared across every checkpoint
        # that references it (COW structural sharing survives the roundtrip).
        page_cache: dict[int, memoryview] = {}

        def pages_from(refs) -> dict[int, bytes]:
            out = {}
            for base, blob_id in refs:
                page = page_cache.get(blob_id)
                if page is None:
                    page = page_cache[blob_id] = blob(blob_id)
                out[base] = page
            return out

        g = header["golden"]
        golden = GoldenRun(
            result=activation_result_from_dict(g["result"], registry=registry),
            outputs={addr: value for addr, value in g["outputs"]},
            heap_image=blob(g["heap"]),
            checkpoint=MemoryCheckpoint(pages=pages_from(g["checkpoint"])),
            followups=tuple(
                activation_result_from_dict(f, registry=registry)
                for f in g["followups"]
            ),
            ladder=tuple(
                MachineCheckpoint(
                    core=core_checkpoint_from_dict(rung["core"]),
                    memory=MemoryCheckpoint(pages=pages_from(rung["pages"])),
                )
                for rung in g["ladder"]
            ),
        )

        def column(blob_id: int) -> np.ndarray:
            raw = blob(blob_id)
            if len(raw) % _COLUMN_DTYPE.itemsize:
                raise ArtifactCorrupt(f"column blob {blob_id} misaligned")
            return np.frombuffer(raw, dtype=_COLUMN_DTYPE)

        p = header["plan"]
        state = p["state"]
        if state == PLAN_PRESENT:
            plan_state = (
                PLAN_PRESENT,
                TwinPlan(
                    tops=column(p["tops"]),
                    reads_pos=tuple(column(c) for c in p["reads_pos"]),
                    writes_pos=tuple(column(c) for c in p["writes_pos"]),
                    instructions=p["instructions"],
                ),
            )
        elif state in (PLAN_NONE, PLAN_ABSENT):
            plan_state = (state, None)
        else:
            raise ArtifactCorrupt(f"unknown plan state {state!r}")
        return ArtifactPayload(
            digest=header["digest"],
            golden=golden,
            plan_state=plan_state,
            nbytes=len(view),
        )
    except ArtifactCorrupt:
        raise
    except Exception as exc:  # noqa: BLE001 — any malformed field is corruption
        raise ArtifactCorrupt(f"artifact decode failed: {type(exc).__name__}: {exc}") from exc
