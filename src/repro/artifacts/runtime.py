"""Capture-or-load policy for golden artifacts, plus the stats ledger.

:class:`GoldenSource` is the single object the campaign trial loop talks to:
``acquire`` tries the shared-memory segment first, then the on-disk store,
and ``offer`` publishes a freshly captured group back to disk so the *next*
run (or the next shard sharing the store) skips the capture.  Everything is
fail-open — a corrupt artifact, a vanished segment, or an unwritable store
degrades to live capture, never to an exception — because the standing
contract is that trial records are byte-identical with the cache cold, warm,
shared, or disabled.

The module-level :data:`STATS` ledger mirrors the translation-cache and
lock-step patterns (:data:`repro.machine.translator.CACHE`,
:data:`repro.machine.lockstep.STATS`): workers snapshot it around a shard
and ship the delta to the engine's telemetry; the serial CLI path diffs it
around the whole campaign.
"""

from __future__ import annotations

import time

from repro.artifacts import shm
from repro.artifacts.codec import ArtifactCorrupt, decode_group, encode_group
from repro.artifacts.store import GoldenStore, golden_digest

__all__ = ["GoldenSource", "STATS", "golden_source_for", "reset_stats", "stats"]

#: Process-wide artifact-cache ledger.  Counter semantics:
#:
#: * ``golden_hits`` / ``golden_misses`` — groups served from cache vs
#:   captured live (their sum is the number of groups that consulted the
#:   source; the manifest derives the hit rate from them);
#: * ``shm_hits`` — the subset of hits served zero-copy from a segment;
#: * ``artifact_corrupt`` — artifacts rejected by the codec (checksum,
#:   version, structure) and silently replaced by live capture;
#: * ``shm_lost`` — chaos-injected segment losses (the fallback drill);
#: * ``golden_capture_seconds`` / ``golden_load_seconds`` — wall-clock split
#:   behind the campaign summary's capture-vs-load line.
STATS: dict[str, int | float] = {
    "golden_hits": 0,
    "golden_misses": 0,
    "shm_hits": 0,
    "shm_lost": 0,
    "artifact_corrupt": 0,
    "artifact_bytes_loaded": 0,
    "artifact_bytes_written": 0,
    "artifact_write_errors": 0,
    "golden_capture_seconds": 0.0,
    "golden_load_seconds": 0.0,
}


def stats() -> dict[str, int | float]:
    """Snapshot of the process-wide artifact ledger."""
    return dict(STATS)


def reset_stats() -> None:
    """Zero the ledger (tests and per-shard delta accounting)."""
    for key, value in STATS.items():
        STATS[key] = 0.0 if isinstance(value, float) else 0


class GoldenSource:
    """One campaign run's view of the artifact cache.

    Holds the config (digest identity), the disk store, and optionally the
    name of a parent-published shared-memory segment.  :meth:`poison` — the
    ``shm_lost`` chaos hook — disables the source for the rest of the shard,
    forcing the genuine live-capture fallback rather than a softer retry.
    """

    def __init__(
        self, config, *, store: GoldenStore | None = None, segment: str | None = None
    ) -> None:
        self.config = config
        self.store = store
        self.segment = segment
        self._poisoned = False

    def poison(self) -> None:
        """Stop serving and saving artifacts (chaos: the cache is gone)."""
        self._poisoned = True

    def acquire(self, benchmark: str, group: int, *, registry):
        """Load one golden group's products, or ``None`` to capture live.

        Lookup order: shared segment (zero-copy), then disk store.  A corrupt
        artifact in either counts ``artifact_corrupt`` and falls through.
        """
        if self._poisoned or (self.store is None and self.segment is None):
            return None
        digest = golden_digest(self.config, benchmark, group)
        started = time.perf_counter()
        try:
            payload = self._from_segment(digest, registry)
            if payload is None and self.store is not None:
                try:
                    payload = self.store.load(digest, registry=registry)
                except ArtifactCorrupt:
                    STATS["artifact_corrupt"] += 1
                    payload = None
        finally:
            STATS["golden_load_seconds"] += time.perf_counter() - started
        if payload is None:
            STATS["golden_misses"] += 1
            return None
        STATS["golden_hits"] += 1
        STATS["artifact_bytes_loaded"] += payload.nbytes
        return payload

    def _from_segment(self, digest: str, registry):
        if self.segment is None:
            return None
        view = shm.attach(self.segment)
        if view is None:
            return None
        raw = view.get(digest)
        if raw is None:
            return None
        try:
            payload = decode_group(raw, registry=registry)
            if payload.digest != digest:
                raise ArtifactCorrupt("segment blob digest mismatch")
        except ArtifactCorrupt:
            STATS["artifact_corrupt"] += 1
            return None
        STATS["shm_hits"] += 1
        return payload

    def offer(self, benchmark: str, group: int, golden, plan_state) -> None:
        """Publish a live-captured group to the disk store (best effort)."""
        if self._poisoned or self.store is None:
            return
        digest = golden_digest(self.config, benchmark, group)
        blob = encode_group(digest, golden, plan_state)
        if self.store.save(digest, blob):
            STATS["artifact_bytes_written"] += len(blob)
        else:
            STATS["artifact_write_errors"] += 1


def golden_source_for(config, *, segment: str | None = None) -> GoldenSource | None:
    """Build the campaign's golden source, or ``None`` when caching is off.

    Full-trace campaigns (``config.trace``) never cache: the full tracer
    records per-instruction addresses whose replay cost *is* the product, and
    mixing traced and untraced captures under one digest would be wrong.
    """
    if not getattr(config, "golden_cache", True) or getattr(config, "trace", False):
        return None
    store = GoldenStore(config.artifacts) if config.artifacts else None
    if store is None and segment is None:
        return None
    return GoldenSource(config, store=store, segment=segment)
