"""Zero-copy artifact distribution over POSIX shared memory.

The parent process packs every artifact a shard will need into one
``multiprocessing.shared_memory`` segment (a TOC mapping golden digests to
blob extents, then the concatenated artifact blobs).  Pool workers attach by
name and decode straight out of the mapping — checkpoint pages and TwinPlan
columns become memoryviews/ndarray views over the *same physical pages* in
every worker, so a warm shard costs neither golden re-execution nor
per-worker deserialized copies.

Lifecycle rules (the part that keeps ``/dev/shm`` clean):

* The **parent owns every segment**: it creates, fills, and unlinks them.
  One segment per shard, unlinked the moment the shard is finished or
  quarantined, with a ``close_all()`` backstop on engine teardown.
* **Workers never close or unlink** (except chaos, below).  They keep the
  mapping for the process lifetime, because decoded artifacts hold zero-copy
  views into it.  Worker death (crash, chaos kill, pool rebuild) just drops
  the mapping; the name is still owned by the parent.  Workers also never
  touch the ``resource_tracker``: multiprocessing children share the
  parent's tracker, whose per-name cache is a *set*, so attach-side
  registrations collapse into the parent's and exactly one unregister — the
  parent's ``unlink()`` — balances them.  (The tracker doubles as the leak
  backstop: a parent killed before unlinking leaves the name to the tracker,
  which removes it at exit.)
* Attaching a vanished or malformed segment returns ``None`` — never raises
  — and the caller falls back to the disk store or live capture.  This is
  also the seam the ``shm_lost`` chaos kind exercises: it unlinks the
  segment's name mid-shard and the campaign must not notice.
"""

from __future__ import annotations

import json
import secrets
from multiprocessing import shared_memory

__all__ = [
    "SEGMENT_MAGIC",
    "SegmentPublisher",
    "SegmentView",
    "attach",
    "build_segment",
    "detach_all",
    "unlink_segment",
]

#: Last byte is the segment-format version (mirrors the artifact codec).
SEGMENT_MAGIC = b"XENTSHM\x01"


def build_segment(blobs: dict[str, bytes]) -> bytes:
    """Pack ``digest -> artifact bytes`` into one segment image.

    Layout: magic, u64 TOC length, JSON TOC (digest -> [offset, length]
    relative to the 8-aligned blob area), padding, blobs (each 8-aligned so
    int64 TwinPlan columns inside the artifacts stay mappable).
    """
    extents: dict[str, list[int]] = {}
    chunks: list[bytes] = []
    offset = 0
    for digest in sorted(blobs):
        pad = (-offset) % 8
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        blob = blobs[digest]
        extents[digest] = [offset, len(blob)]
        chunks.append(blob)
        offset += len(blob)
    toc = json.dumps(extents, sort_keys=True, separators=(",", ":")).encode()
    prefix_len = len(SEGMENT_MAGIC) + 8 + len(toc)
    return b"".join(
        [
            SEGMENT_MAGIC,
            len(toc).to_bytes(8, "little"),
            toc,
            b"\x00" * ((-prefix_len) % 8),
            *chunks,
        ]
    )


class SegmentView:
    """A parsed attachment: digest lookup over a mapped segment.

    Holds the :class:`SharedMemory` object alive for as long as any decoded
    artifact references its pages; attachments live until process exit.
    """

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.segment = segment
        view = memoryview(segment.buf)
        header = len(SEGMENT_MAGIC) + 8
        if len(view) < header or bytes(view[: len(SEGMENT_MAGIC)]) != SEGMENT_MAGIC:
            raise ValueError("bad segment magic")
        toc_len = int.from_bytes(view[len(SEGMENT_MAGIC) : header], "little")
        toc_end = header + toc_len
        if toc_end > len(view):
            raise ValueError("segment TOC extends past mapping")
        self.extents: dict[str, list[int]] = json.loads(bytes(view[header:toc_end]).decode())
        self._blob_area = view[toc_end + ((-toc_end) % 8) :]

    def get(self, digest: str) -> memoryview | None:
        """Zero-copy view of one artifact's bytes, or ``None`` if absent."""
        extent = self.extents.get(digest)
        if extent is None:
            return None
        offset, length = extent
        if offset + length > len(self._blob_area):
            return None
        return self._blob_area[offset : offset + length]


#: Process-local attachment registry: one mapping per segment name, shared by
#: every shard a worker executes against that segment.
_ATTACHED: dict[str, SegmentView] = {}


def attach(name: str) -> SegmentView | None:
    """Attach to a published segment by name; ``None`` when it is gone or
    unreadable (the caller falls back to disk / live capture)."""
    view = _ATTACHED.get(name)
    if view is not None:
        return view
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None
    # Note: no resource_tracker bookkeeping here.  The attach above
    # re-registered the name, but registrations are a set in the shared
    # tracker — the parent's create already holds the entry, and its
    # unlink() sends the one balancing unregister.
    try:
        view = SegmentView(segment)
    except (ValueError, json.JSONDecodeError):
        # Malformed image: keep our hands off (parent still owns the name),
        # just decline to serve from it.
        segment.buf.release()
        segment.close()
        return None
    _ATTACHED[name] = view
    return view


def detach_all() -> None:
    """Drop every attachment (test hygiene for in-process attach users).

    Only safe when no decoded artifact still references the mappings.
    """
    for view in _ATTACHED.values():
        try:
            view._blob_area.release()
            view.segment.buf.release()
            view.segment.close()
        except BufferError:  # pragma: no cover - caller violated the contract
            pass
    _ATTACHED.clear()


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of a segment *name* (chaos + teardown paths)."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    segment.close()
    try:
        # unlink() also sends the tracker's balancing unregister.
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        return False
    return True


class SegmentPublisher:
    """Parent-side segment lifecycle: one refcounted segment per shard.

    ``prepare`` builds a shard's segment from already-stored artifact bytes
    (a cold store yields no segment — nothing to share yet); ``finished``
    unlinks it once the shard reaches a *terminal* state — merged or
    quarantined; retried attempts and rebuilt pools re-attach the same name
    in between; ``close_all`` is the teardown backstop so no name outlives
    the engine, however it exits.
    """

    def __init__(self) -> None:
        self._segments: dict[int, shared_memory.SharedMemory] = {}
        self.stats = {"shm_segments": 0, "shm_bytes": 0}

    def prepare(self, shard_index: int, blobs: dict[str, bytes]) -> str | None:
        """Publish ``blobs`` for one shard; returns the segment name.

        Idempotent per shard (a retried attempt reuses the live segment).
        ``None`` when there is nothing to publish or shared memory is
        unavailable — the shard then runs against the disk store alone.
        """
        held = self._segments.get(shard_index)
        if held is not None:
            return held.name
        if not blobs:
            return None
        payload = build_segment(blobs)
        for _ in range(8):
            name = f"xgold-{secrets.token_hex(6)}"
            try:
                segment = shared_memory.SharedMemory(
                    create=True, size=len(payload), name=name
                )
                break
            except FileExistsError:  # pragma: no cover - 48-bit collision
                continue
            except OSError:
                return None
        else:  # pragma: no cover - eight collisions in a row
            return None
        segment.buf[: len(payload)] = payload
        self._segments[shard_index] = segment
        self.stats["shm_segments"] += 1
        self.stats["shm_bytes"] += len(payload)
        return segment.name

    def finished(self, shard_index: int) -> None:
        """Unlink a shard's segment (call at terminal shard states only)."""
        segment = self._segments.pop(shard_index, None)
        if segment is not None:
            self._release(segment)

    def close_all(self) -> None:
        """Unlink every live segment (engine teardown backstop)."""
        segments = list(self._segments.values())
        self._segments.clear()
        for segment in segments:
            self._release(segment)

    @staticmethod
    def _release(segment: shared_memory.SharedMemory) -> None:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            # A chaos shm_lost fault already removed the name — and its
            # unlink() sent the shared tracker's balancing unregister, so
            # there is nothing left to do here: the mapping died with
            # close(), the tracker entry with the worker's unlink.
            pass
