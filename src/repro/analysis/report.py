"""Report formatting: paper-vs-measured tables for every experiment.

Each benchmark harness prints one of these tables so EXPERIMENTS.md can be
filled by copy-paste.  Nothing here computes — it renders values produced by
the other analysis modules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComparisonRow", "ComparisonTable", "format_percent"]


def format_percent(value: float | None) -> str:
    """Render a fraction as a percentage, or ``---`` for missing values."""
    return "---" if value is None else f"{value:.1%}"


@dataclass(frozen=True)
class ComparisonRow:
    """One quantity: what the paper reports vs what we measured."""

    quantity: str
    paper: str
    measured: str
    note: str = ""


class ComparisonTable:
    """ASCII paper-vs-measured table with a title."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: list[ComparisonRow] = []

    def add(self, quantity: str, paper: str, measured: str, note: str = "") -> None:
        self.rows.append(ComparisonRow(quantity, paper, measured, note))

    def add_percent(
        self, quantity: str, paper: float | None, measured: float | None, note: str = ""
    ) -> None:
        self.add(quantity, format_percent(paper), format_percent(measured), note)

    def render(self) -> str:
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        q_width = max(len("quantity"), max(len(r.quantity) for r in self.rows))
        p_width = max(len("paper"), max(len(r.paper) for r in self.rows))
        m_width = max(len("measured"), max(len(r.measured) for r in self.rows))
        lines = [
            f"== {self.title} ==",
            f"{'quantity':<{q_width}}  {'paper':>{p_width}}  {'measured':>{m_width}}  note",
            "-" * (q_width + p_width + m_width + 10),
        ]
        for row in self.rows:
            lines.append(
                f"{row.quantity:<{q_width}}  {row.paper:>{p_width}}  "
                f"{row.measured:>{m_width}}  {row.note}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
