"""Statistical utilities: box-plot summaries and CDFs.

Fig. 3 reports per-second activation rates as box plots ("the central line on
the box is the median; the box represents the data points between the 25th
and 75th percentiles; the lines extend to the maximum and minimum data
points"); Fig. 10 reports detection latency as a CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignConfigError

__all__ = ["BoxStats", "Cdf"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary matching the paper's box-plot convention."""

    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float
    n: int

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "BoxStats":
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise CampaignConfigError("cannot summarize an empty sample set")
        q25, median, q75 = np.percentile(samples, [25, 50, 75])
        return cls(
            minimum=float(samples.min()),
            q25=float(q25),
            median=float(median),
            q75=float(q75),
            maximum=float(samples.max()),
            n=int(samples.size),
        )

    def row(self, label: str, unit: str = "") -> str:
        """One formatted table row (min / q25 / median / q75 / max)."""
        suffix = f" {unit}" if unit else ""
        return (
            f"{label:<14} {self.minimum:>12,.0f} {self.q25:>12,.0f} "
            f"{self.median:>12,.0f} {self.q75:>12,.0f} {self.maximum:>12,.0f}{suffix}"
        )


@dataclass(frozen=True)
class Cdf:
    """Empirical cumulative distribution over scalar samples."""

    values: np.ndarray     # sorted
    fractions: np.ndarray  # cumulative fractions in (0, 1]

    @classmethod
    def from_samples(cls, samples) -> "Cdf":
        arr = np.sort(np.asarray(list(samples), dtype=np.float64))
        if arr.size == 0:
            raise CampaignConfigError("cannot build a CDF from no samples")
        fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
        return cls(values=arr, fractions=fractions)

    @property
    def n(self) -> int:
        return int(self.values.size)

    def fraction_at(self, x: float) -> float:
        """P(value <= x)."""
        return float(np.searchsorted(self.values, x, side="right")) / self.n

    def percentile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise CampaignConfigError("q must be in (0, 1]")
        index = min(self.n - 1, int(np.ceil(q * self.n)) - 1)
        return float(self.values[max(0, index)])

    def table(self, points: list[float]) -> list[tuple[float, float]]:
        """(x, fraction) pairs at the requested x points."""
        return [(x, self.fraction_at(x)) for x in points]
