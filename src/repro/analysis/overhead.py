"""Fault-free performance-overhead model (Fig. 7).

The paper measures Xentry's fault-free overhead on a physical Xeon E5506
server: ten runs per benchmark, overhead normalized to unmodified Xen, with
runtime detection alone nearly free and runtime + VM-transition detection
averaging 2.5% (bzip2 as low as 0.19% average; postmark worst at 11.7% max).

We model per-run overhead as

    overhead = mean_activation_rate * per_activation_detection_ns
               * io_amplification / 1e9

where the per-activation cost comes from the interception cost model
(counter MSR traffic + rule traversal + assertion predicates) and the
I/O amplification reflects that detection latency on an I/O completion path
delays the application by more than the detection time itself (each
activation the app *blocks on* stalls a chain of dependent operations).
``io_amplification = 1 + chain_length * blocking_fraction`` is the one
calibrated constant; benchmarks that overlap hypervisor activity (bzip2)
have blocking_fraction near 0 and land at the paper's ~0.2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import rng as rng_mod
from repro.errors import CampaignConfigError
from repro.workloads.base import VirtMode, WorkloadProfile
from repro.xentry.interception import DetectionCostModel

__all__ = ["OverheadStudy", "PerfOverheadModel"]

#: Dependent-operation chain length for blocking activations (calibrated so
#: the Fig. 7 ordering and magnitudes are reproduced; see module docstring).
DEFAULT_CHAIN_LENGTH = 8.0


@dataclass(frozen=True)
class OverheadStudy:
    """Per-run overheads for one benchmark under one configuration."""

    benchmark: str
    runtime_only: np.ndarray        # fraction per run
    runtime_plus_transition: np.ndarray

    @property
    def mean_full(self) -> float:
        return float(self.runtime_plus_transition.mean())

    @property
    def max_full(self) -> float:
        return float(self.runtime_plus_transition.max())

    @property
    def mean_runtime_only(self) -> float:
        return float(self.runtime_only.mean())

    def row(self) -> str:
        return (
            f"{self.benchmark:<10} runtime-only={self.mean_runtime_only:7.3%}  "
            f"full avg={self.mean_full:7.3%}  full max={self.max_full:7.3%}"
        )


@dataclass(frozen=True)
class PerfOverheadModel:
    """Fig. 7 methodology: N runs per benchmark, overhead per run."""

    cost_model: DetectionCostModel = field(default_factory=DetectionCostModel)
    runs: int = 10
    run_seconds: int = 60
    chain_length: float = DEFAULT_CHAIN_LENGTH
    #: Mean compiled-rule comparisons per VM entry (from the deployed
    #: detector's stats; default matches a depth-~20 tree's mean traversal).
    tree_comparisons: float = 9.0
    #: Mean assertion predicates per activation (measured on the image).
    assertion_checks: float = 1.2

    def __post_init__(self) -> None:
        if self.runs < 1 or self.run_seconds < 1:
            raise CampaignConfigError("runs and run_seconds must be positive")

    def amplification(self, profile: WorkloadProfile) -> float:
        return 1.0 + self.chain_length * profile.blocking_fraction

    def study(
        self,
        profile: WorkloadProfile,
        *,
        mode: VirtMode = VirtMode.PV,
        seed: int = 0,
    ) -> OverheadStudy:
        """Run the ten-run overhead experiment for one benchmark."""
        rng = rng_mod.stream(seed, "overhead", profile.name, mode.value)
        amp = self.amplification(profile)
        runtime_ns = self.cost_model.per_activation_ns(
            tree_comparisons=0.0,
            assertion_checks=self.assertion_checks,
            transition_enabled=False,
        )
        full_ns = self.cost_model.per_activation_ns(
            tree_comparisons=self.tree_comparisons,
            assertion_checks=self.assertion_checks,
            transition_enabled=True,
        )
        runtime_only = np.empty(self.runs)
        full = np.empty(self.runs)
        for i in range(self.runs):
            mean_rate = float(profile.rate(mode).sample(rng, self.run_seconds).mean())
            runtime_only[i] = mean_rate * runtime_ns * amp / 1e9
            full[i] = mean_rate * full_ns * amp / 1e9
        return OverheadStudy(
            benchmark=profile.name,
            runtime_only=runtime_only,
            runtime_plus_transition=full,
        )
