"""Fault-sensitivity analysis: which architectural state matters most.

Standard companion analysis for register-level fault-injection campaigns:
per-register (and per-bit-range) manifestation and detection rates.  The
paper reports aggregate numbers only; this module exposes the structure
underneath them — e.g. RIP/RSP flips manifest nearly always and are caught
by hardware exceptions, while high GPR bits are frequently dead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import CampaignConfigError
from repro.faults.outcomes import TrialRecord

__all__ = ["SensitivityRow", "register_sensitivity", "bit_band_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """Aggregated outcomes for one register (or bit band)."""

    label: str
    trials: int
    activated: int
    manifested: int
    detected: int

    @property
    def activation_rate(self) -> float:
        return self.activated / self.trials if self.trials else 0.0

    @property
    def manifestation_rate(self) -> float:
        return self.manifested / self.trials if self.trials else 0.0

    @property
    def coverage(self) -> float:
        """Detected fraction of manifested faults."""
        return self.detected / self.manifested if self.manifested else 0.0

    def row(self) -> str:
        return (
            f"{self.label:<8} n={self.trials:<6} "
            f"activated={self.activation_rate:6.1%} "
            f"manifested={self.manifestation_rate:6.1%} "
            f"coverage={self.coverage:6.1%}"
        )


def _aggregate(
    records: tuple[TrialRecord, ...], key_fn
) -> dict[str, SensitivityRow]:
    if not records:
        raise CampaignConfigError("no records to analyze")
    buckets: dict[str, list[TrialRecord]] = defaultdict(list)
    for record in records:
        buckets[key_fn(record)].append(record)
    out: dict[str, SensitivityRow] = {}
    for label, group in buckets.items():
        out[label] = SensitivityRow(
            label=label,
            trials=len(group),
            activated=sum(1 for r in group if r.activated),
            manifested=sum(1 for r in group if r.manifested),
            detected=sum(1 for r in group if r.manifested and r.detected),
        )
    return out


def register_sensitivity(
    records: tuple[TrialRecord, ...]
) -> dict[str, SensitivityRow]:
    """Aggregate trial outcomes per injected register."""
    return _aggregate(records, lambda r: r.fault.register)


#: Bit bands used by :func:`bit_band_sensitivity`: low data bits, address
#: middle bits (page-granularity reach), canonical-form high bits.
BIT_BANDS: tuple[tuple[str, int, int], ...] = (
    ("0-15", 0, 15),
    ("16-31", 16, 31),
    ("32-47", 32, 47),
    ("48-63", 48, 63),
)


def bit_band_sensitivity(
    records: tuple[TrialRecord, ...]
) -> dict[str, SensitivityRow]:
    """Aggregate trial outcomes per injected bit band.

    The bands map onto architectural meaning: flips below bit 16 perturb
    small counts and data; bits 16–47 redirect addresses within/near mapped
    memory; bits 48–63 break canonical form (usually an immediate #GP).
    """

    def band(record: TrialRecord) -> str:
        for label, lo, hi in BIT_BANDS:
            if lo <= record.fault.bit <= hi:
                return label
        return "other"  # pragma: no cover - bands are exhaustive over 0..63

    return _aggregate(records, band)
