"""Measurement and reporting: the evaluation-section toolkit.

Box-plot stats and CDFs (Figs. 3/10), coverage aggregation (Figs. 8/9,
Table II), the fault-free overhead model (Fig. 7), and paper-vs-measured
table rendering.
"""

from repro.analysis.coverage import (
    CoverageBreakdown,
    coverage_by_benchmark,
    coverage_by_fault_class,
    coverage_by_technique,
    long_latency_breakdown,
    undetected_breakdown,
)
from repro.analysis.journals import (
    dataset_from_journal,
    journal_progress,
    merge_journals,
    records_from_journal,
    sample_journal_progress,
)
from repro.analysis.latency import LatencyStudy
from repro.analysis.overhead import OverheadStudy, PerfOverheadModel
from repro.analysis.plots import ascii_boxplot, ascii_cdf, ascii_stacked_bars
from repro.analysis.recovery_report import RecoverySummary, summarize_recovery
from repro.analysis.report import ComparisonRow, ComparisonTable, format_percent
from repro.analysis.sensitivity import (
    SensitivityRow,
    bit_band_sensitivity,
    register_sensitivity,
)
from repro.analysis.stats import BoxStats, Cdf

__all__ = [
    "BoxStats",
    "Cdf",
    "ComparisonRow",
    "ComparisonTable",
    "CoverageBreakdown",
    "LatencyStudy",
    "OverheadStudy",
    "PerfOverheadModel",
    "RecoverySummary",
    "SensitivityRow",
    "ascii_boxplot",
    "ascii_cdf",
    "ascii_stacked_bars",
    "coverage_by_benchmark",
    "coverage_by_fault_class",
    "coverage_by_technique",
    "dataset_from_journal",
    "format_percent",
    "bit_band_sensitivity",
    "journal_progress",
    "long_latency_breakdown",
    "merge_journals",
    "records_from_journal",
    "register_sensitivity",
    "sample_journal_progress",
    "summarize_recovery",
    "undetected_breakdown",
]
