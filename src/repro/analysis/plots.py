"""ASCII figure rendering: box plots, CDF curves, stacked bars.

Terminal renditions of the paper's figure types so the benchmark harnesses
can regenerate the *figures* (not only the underlying numbers): Fig. 3's
log-scale box plots, Fig. 10's latency CDFs, Fig. 8's stacked coverage bars.
"""

from __future__ import annotations

import math

from repro.analysis.stats import BoxStats, Cdf
from repro.errors import CampaignConfigError

__all__ = ["ascii_boxplot", "ascii_cdf", "ascii_stacked_bars"]


def ascii_boxplot(
    series: dict[str, BoxStats],
    *,
    width: int = 60,
    log_scale: bool = True,
) -> str:
    """Render labeled five-number summaries as horizontal box plots.

    ``|----[  =  ]----|`` per row: whiskers at min/max, box at q25/q75, ``=``
    at the median — the paper's Fig. 3 convention, log-scaled by default
    because activation rates span decades.
    """
    if not series:
        raise CampaignConfigError("nothing to plot")
    lo = min(s.minimum for s in series.values())
    hi = max(s.maximum for s in series.values())
    if log_scale and lo <= 0:
        raise CampaignConfigError("log scale requires positive values")

    def position(value: float) -> int:
        if hi == lo:
            return 0
        if log_scale:
            frac = (math.log10(value) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        else:
            frac = (value - lo) / (hi - lo)
        return min(width - 1, max(0, round(frac * (width - 1))))

    label_width = max(len(name) for name in series)
    lines = []
    for name, stats in series.items():
        row = [" "] * width
        p_min, p_q25 = position(stats.minimum), position(stats.q25)
        p_med = position(stats.median)
        p_q75, p_max = position(stats.q75), position(stats.maximum)
        for i in range(p_min, p_q25):
            row[i] = "-"
        for i in range(p_q75 + 1, p_max + 1):
            row[i] = "-"
        row[p_min] = "|"
        row[p_max] = "|"
        for i in range(p_q25, p_q75 + 1):
            row[i] = "."
        row[p_q25] = "["
        row[p_q75] = "]"
        row[p_med] = "="
        lines.append(f"{name:<{label_width}}  {''.join(row)}")
    scale = "log scale" if log_scale else "linear"
    lines.append(
        f"{'':<{label_width}}  {lo:,.0f} {'-' * max(0, width - len(f'{lo:,.0f}') - len(f'{hi:,.0f}') - 2)} {hi:,.0f}  ({scale})"
    )
    return "\n".join(lines)


def ascii_cdf(
    curves: dict[str, Cdf],
    *,
    x_max: float,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render cumulative-distribution curves on one shared canvas.

    Each curve gets a marker character (``*``, ``o``, ``+``, ...); the y axis
    spans 0-100%, the x axis 0..``x_max`` — Fig. 10's frame.
    """
    if not curves:
        raise CampaignConfigError("nothing to plot")
    markers = "*o+x#@"
    canvas = [[" "] * width for _ in range(height)]
    for (name, cdf), marker in zip(curves.items(), markers):
        for col in range(width):
            x = (col + 0.5) / width * x_max
            frac = cdf.fraction_at(x)
            row = height - 1 - min(height - 1, int(frac * (height - 1) + 0.5))
            canvas[row][col] = marker
    lines = []
    for i, row in enumerate(canvas):
        frac = (height - 1 - i) / (height - 1)
        lines.append(f"{frac:>4.0%} |{''.join(row)}")
    lines.append("     +" + "-" * width)
    lines.append(f"      0{'':<{width - 8}}{x_max:,.0f}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(curves.items(), markers)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_stacked_bars(
    bars: dict[str, list[tuple[str, float]]],
    *,
    width: int = 50,
    symbols: str = "#+=:. ",
) -> str:
    """Render per-label stacked shares (fractions summing to <= 1).

    The Fig. 8 form: one bar per benchmark, one segment per detection
    technique.
    """
    if not bars:
        raise CampaignConfigError("nothing to plot")
    label_width = max(len(name) for name in bars)
    segment_names: list[str] = []
    for parts in bars.values():
        for seg_name, _ in parts:
            if seg_name not in segment_names:
                segment_names.append(seg_name)
    lines = []
    for name, parts in bars.items():
        row = ""
        shares = dict(parts)
        for seg_name, symbol in zip(segment_names, symbols):
            chars = round(shares.get(seg_name, 0.0) * width)
            row += symbol * chars
        lines.append(f"{name:<{label_width}}  |{row[:width]:<{width}}|")
    legend = "   ".join(
        f"{symbol}={seg}" for seg, symbol in zip(segment_names, symbols)
    )
    lines.append(f"{'':<{label_width}}  {legend}")
    return "\n".join(lines)
