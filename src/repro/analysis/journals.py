"""Merge and report campaign results from engine trial journals.

The engine's journal (:mod:`repro.engine.journal`) is the durable artifact a
long campaign leaves behind — including one that is still running or was
killed.  This module reads journals from the *analysis* side: recover the
record sequence for reporting, merge the journals of a campaign split across
machines, and summarize in-flight progress without touching the engine.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.engine.journal import SampleJournal, read_state
from repro.errors import JournalError
from repro.faults.outcomes import TrialRecord
from repro.ml.dataset import Dataset

__all__ = [
    "dataset_from_journal",
    "journal_progress",
    "merge_journals",
    "records_from_journal",
    "sample_journal_progress",
]


def records_from_journal(
    path: str | Path, *, include_partial: bool = True
) -> tuple[TrialRecord, ...]:
    """Recover trial records from a journal, in serial (trial-index) order.

    ``include_partial`` also yields trials journalled by shards that never
    reached their completion marker — useful for peeking at a campaign that
    is still running (or died); pass ``False`` for only durably completed
    shards.  The result of a *finished* campaign equals the serial
    campaign's record tuple.
    """
    state = read_state(path)
    if state is None:
        raise JournalError(f"{path}: no journal found")
    by_trial: dict[int, TrialRecord] = {}
    sources = list(state.completed.values())
    if include_partial:
        sources.extend(state.partial.values())
    for trials in sources:
        for t, record in trials:
            by_trial[t] = record
    return tuple(record for _, record in sorted(by_trial.items()))


def merge_journals(paths: list[str | Path]) -> tuple[TrialRecord, ...]:
    """Merge several journals of the *same* campaign into one record sequence.

    Supports splitting a campaign across machines: each machine journals the
    shards it ran; the union reconstructs the serial sequence.  All journals
    must carry the same config digest — merging unrelated campaigns is a
    :class:`JournalError`, and so is a trial recorded twice with diverging
    shard ownership across files (records for the same trial index are
    deduplicated, last file wins, matching resume semantics).
    """
    if not paths:
        raise JournalError("no journals to merge")
    digest: str | None = None
    by_trial: dict[int, TrialRecord] = {}
    for path in paths:
        state = read_state(path)
        if state is None:
            raise JournalError(f"{path}: no journal found")
        if digest is None:
            digest = state.digest
        elif state.digest != digest:
            raise JournalError(
                f"{path}: digest {state.digest} does not match {digest}; "
                "these journals belong to different campaigns"
            )
        for trials in list(state.completed.values()) + list(state.partial.values()):
            for t, record in trials:
                by_trial[t] = record
    return tuple(record for _, record in sorted(by_trial.items()))


def dataset_from_journal(
    path: str | Path, *, include_partial: bool = False
) -> Dataset:
    """Rebuild a labeled dataset from a training sample journal.

    The analysis-side counterpart of engine-backed
    :func:`~repro.xentry.training.collect_dataset`: samples are ordered by
    global run index, so a journal of a *finished* collection reconstructs
    exactly the dataset the collection returned.  ``include_partial`` also
    admits samples from shards that never reached their completion marker —
    useful for peeking at an in-flight or killed collection, but such a
    dataset is truncated and its class balance untrustworthy for training.
    """
    state = SampleJournal.read(path)
    if state is None:
        raise JournalError(f"{path}: no sample journal found")
    by_run: dict[int, tuple] = {}
    sources = list(state.completed.values())
    if include_partial:
        sources.extend(state.partial.values())
    for items in sources:
        for run, sample in items:
            by_run[run] = sample
    samples = []
    labels = []
    for _, (features, label) in sorted(by_run.items()):
        samples.append(features)
        labels.append(label)
    return Dataset.from_samples(samples, labels)


def sample_journal_progress(path: str | Path) -> dict:
    """Summarize a sample journal: progress plus class balance.

    Mirrors :func:`journal_progress` for training collections.  Note
    ``total_runs`` counts *planned activations*; the injection stream yields
    at most one sample per activation, so ``done_samples`` can legitimately
    trail it even when every shard is complete.
    """
    state = SampleJournal.read(path)
    if state is None:
        raise JournalError(f"{path}: no sample journal found")
    labels: Counter[str] = Counter()
    for items in state.completed.values():
        for _, (_features, label) in items:
            labels["incorrect" if label else "correct"] += 1
    done_shards = sorted(state.completed_shards)
    return {
        "total_runs": state.total_trials,
        "done_samples": state.completed_trials,
        "n_shards": state.n_shards,
        "completed_shards": done_shards,
        "partial_samples": sum(len(v) for v in state.partial.values()),
        "fraction_shards_done": (
            len(done_shards) / state.n_shards if state.n_shards else 0.0
        ),
        "labels": dict(labels),
    }


def journal_progress(path: str | Path) -> dict:
    """Summarize a journal's progress and outcome mix (machine-readable).

    Works on in-flight and dead journals alike; the engine does not need to
    be running.  Keys: ``total_trials``, ``done_trials``, ``n_shards``,
    ``completed_shards``, ``partial_trials``, ``fraction_done`` and
    per-outcome counters under ``outcomes``.
    """
    state = read_state(path)
    if state is None:
        raise JournalError(f"{path}: no journal found")
    detected: Counter[str] = Counter()
    failure: Counter[str] = Counter()
    for trials in state.completed.values():
        for _, record in trials:
            detected[record.detected_by.value] += 1
            failure[record.failure_class.value] += 1
    done = state.completed_trials
    return {
        "total_trials": state.total_trials,
        "done_trials": done,
        "n_shards": state.n_shards,
        "completed_shards": sorted(state.completed_shards),
        "partial_trials": sum(len(v) for v in state.partial.values()),
        "fraction_done": done / state.total_trials if state.total_trials else 0.0,
        "outcomes": {
            "detected_by": dict(detected),
            "failure_class": dict(failure),
        },
    }
