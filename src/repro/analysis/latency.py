"""Detection-latency analysis (Fig. 10).

"The detection latency is measured by the number of instructions between
error activation and detection."  Latencies are grouped by the detecting
technique; the paper's headline: ~95% of VM-transition detections fall within
700 instructions, and hardware exceptions / software assertions are generally
shorter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import Cdf
from repro.errors import CampaignConfigError
from repro.faults.outcomes import DetectionTechnique, TrialRecord

__all__ = ["LatencyStudy"]


@dataclass(frozen=True)
class LatencyStudy:
    """Per-technique latency CDFs over the detected faults of a campaign."""

    cdfs: dict[DetectionTechnique, Cdf]

    @classmethod
    def from_records(cls, records: tuple[TrialRecord, ...]) -> "LatencyStudy":
        cdfs: dict[DetectionTechnique, Cdf] = {}
        for technique in (
            DetectionTechnique.HW_EXCEPTION,
            DetectionTechnique.SW_ASSERTION,
            DetectionTechnique.VM_TRANSITION,
        ):
            latencies = [
                r.detection_latency
                for r in records
                if r.detected_by is technique and r.detection_latency is not None
            ]
            if latencies:
                cdfs[technique] = Cdf.from_samples(latencies)
        if not cdfs:
            raise CampaignConfigError("no detected faults with latencies")
        return cls(cdfs=cdfs)

    def fraction_within(self, technique: DetectionTechnique, instructions: int) -> float:
        """P(latency <= instructions) for one technique (0 if technique absent)."""
        cdf = self.cdfs.get(technique)
        return cdf.fraction_at(instructions) if cdf is not None else 0.0

    def percentile(self, technique: DetectionTechnique, q: float) -> float | None:
        cdf = self.cdfs.get(technique)
        return cdf.percentile(q) if cdf is not None else None

    def table(self, points: list[int]) -> str:
        """ASCII rendition of the Fig. 10 CDF at the given x points."""
        lines = ["latency (instructions)  " + "".join(f"{p:>9}" for p in points)]
        for technique, cdf in self.cdfs.items():
            row = "".join(f"{cdf.fraction_at(p):>9.1%}" for p in points)
            lines.append(f"{technique.value:<24}{row}")
        return "\n".join(lines)
