"""The measured recovery axis: survival, downtime, divergence.

Aggregates the :class:`~repro.faults.outcomes.RecoveryRecord` stream a
``--recover`` campaign produces into the numbers the paper never measured —
per-policy success rate, guest-visible downtime distribution (retired
instructions spent inside recovery), and post-recovery golden-divergence
counts — the companion of the Section VI *analytical* cost model in
:mod:`repro.xentry.recovery`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.faults.outcomes import TrialRecord

__all__ = ["RecoverySummary", "summarize_recovery"]


def _percentile(sorted_values: list[int], q: float) -> int:
    """Nearest-rank percentile over a pre-sorted list (0 when empty)."""
    if not sorted_values:
        return 0
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class RecoverySummary:
    """Headline numbers of one recovery campaign."""

    #: Detected trials that ran the policy ladder.
    trials: int
    #: Trials replayed to a golden-identical state.
    recovered: int
    #: Recovered trials whose post-state diffs against golden are empty and
    #: whose digests match (should equal ``recovered`` by construction).
    clean: int
    #: Trials that ended with residual divergence (quarantined/unrecoverable).
    divergent: int
    #: Settling action -> count ("reexecute", "microreboot", ...).
    actions: dict[str, int]
    #: Policy name -> count (one entry unless journals were merged).
    policies: dict[str, int]
    #: Ladder attempts spent in total.
    attempts: int
    #: Guest-visible downtime distribution, in retired instructions.
    downtime_total: int
    downtime_p50: int
    downtime_p90: int
    downtime_max: int

    @property
    def success_rate(self) -> float:
        return self.recovered / self.trials if self.trials else 0.0

    @property
    def clean_rate(self) -> float:
        return self.clean / self.trials if self.trials else 0.0

    def lines(self) -> list[str]:
        """Human-readable report block (the CLI prints these)."""
        if not self.trials:
            return ["no detected trials ran recovery"]
        actions = ", ".join(
            f"{name}={count}" for name, count in sorted(self.actions.items())
        )
        return [
            f"policy: {', '.join(sorted(self.policies))} — "
            f"{self.trials} detected trials ran the ladder",
            f"recovered: {self.recovered}/{self.trials} "
            f"({self.success_rate:.1%}), zero-divergence: {self.clean} "
            f"({self.clean_rate:.1%}), residual divergence: {self.divergent}",
            f"settled by: {actions} ({self.attempts} attempts total)",
            f"downtime (retired instructions): p50={self.downtime_p50} "
            f"p90={self.downtime_p90} max={self.downtime_max} "
            f"total={self.downtime_total}",
        ]


def summarize_recovery(records: tuple[TrialRecord, ...]) -> RecoverySummary:
    """Fold a record stream's recovery outcomes into a summary."""
    recs = [r.recovery for r in records if r.recovery is not None]
    downtimes = sorted(r.downtime_instructions for r in recs)
    return RecoverySummary(
        trials=len(recs),
        recovered=sum(1 for r in recs if r.recovered),
        clean=sum(1 for r in recs if r.clean),
        divergent=sum(
            1 for r in recs if r.divergent_words or r.outputs_divergent
        ),
        actions=dict(Counter(r.action for r in recs)),
        policies=dict(Counter(r.policy for r in recs)),
        attempts=sum(r.attempts for r in recs),
        downtime_total=sum(downtimes),
        downtime_p50=_percentile(downtimes, 0.50),
        downtime_p90=_percentile(downtimes, 0.90),
        downtime_max=downtimes[-1] if downtimes else 0,
    )
