"""Coverage aggregation over campaign records (Fig. 8, Fig. 9, Table II).

All coverage denominators follow the paper: percentages are computed over
*manifested* faults — "about 17,700 injected errors cause failures or data
corruptions.  We summarize the results of these errors by the detection
techniques."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import CampaignConfigError
from repro.faults.outcomes import (
    DetectionTechnique,
    FailureClass,
    TrialRecord,
    UndetectedKind,
)

__all__ = [
    "CoverageBreakdown",
    "coverage_by_technique",
    "coverage_by_benchmark",
    "coverage_by_fault_class",
    "long_latency_breakdown",
    "undetected_breakdown",
]


@dataclass(frozen=True)
class CoverageBreakdown:
    """Per-technique detection shares over a set of manifested faults."""

    total: int
    hw_exception: int
    sw_assertion: int
    vm_transition: int
    undetected: int
    #: Detected faults whose recovery policy replayed the activation to a
    #: state bit-identical to golden (recovery campaigns only; 0 otherwise).
    recovered: int = 0

    @property
    def coverage(self) -> float:
        """Overall fraction detected by any technique."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.undetected / self.total

    @property
    def recovered_share(self) -> float:
        """Fraction of manifested faults detected *and* cleanly recovered."""
        if self.total == 0:
            return 0.0
        return self.recovered / self.total

    def share(self, technique: DetectionTechnique) -> float:
        if self.total == 0:
            return 0.0
        value = {
            DetectionTechnique.HW_EXCEPTION: self.hw_exception,
            DetectionTechnique.SW_ASSERTION: self.sw_assertion,
            DetectionTechnique.VM_TRANSITION: self.vm_transition,
            DetectionTechnique.UNDETECTED: self.undetected,
        }[technique]
        return value / self.total

    def row(self, label: str) -> str:
        if self.total == 0:
            return f"{label:<12} (no manifested faults)"
        line = (
            f"{label:<12} n={self.total:<6} "
            f"hw={self.share(DetectionTechnique.HW_EXCEPTION):6.1%} "
            f"assert={self.share(DetectionTechnique.SW_ASSERTION):6.1%} "
            f"transition={self.share(DetectionTechnique.VM_TRANSITION):6.1%} "
            f"undetected={self.share(DetectionTechnique.UNDETECTED):6.1%} "
            f"coverage={self.coverage:6.1%}"
        )
        # The "recovered" column appears only for recovery campaigns, so
        # detection-only reports keep their historical shape.
        if self.recovered:
            line += f" recovered={self.recovered_share:6.1%}"
        return line


def coverage_by_technique(records: tuple[TrialRecord, ...]) -> CoverageBreakdown:
    """Aggregate manifested faults by detecting technique (Fig. 8).

    For recovery campaigns the breakdown also counts the cleanly recovered
    trials (``RecoveryRecord.clean``), giving Fig. 8 its "recovered" column.
    """
    manifested = [r for r in records if r.manifested]
    counts = Counter(r.detected_by for r in manifested)
    return CoverageBreakdown(
        total=len(manifested),
        hw_exception=counts[DetectionTechnique.HW_EXCEPTION],
        sw_assertion=counts[DetectionTechnique.SW_ASSERTION],
        vm_transition=counts[DetectionTechnique.VM_TRANSITION],
        undetected=counts[DetectionTechnique.UNDETECTED],
        recovered=sum(
            1 for r in manifested if r.recovery is not None and r.recovery.clean
        ),
    )


def coverage_by_benchmark(
    records: tuple[TrialRecord, ...]
) -> dict[str, CoverageBreakdown]:
    """Per-benchmark Fig. 8 columns (plus an AVG aggregate)."""
    benchmarks = sorted({r.benchmark for r in records})
    out = {b: coverage_by_technique(tuple(r for r in records if r.benchmark == b))
           for b in benchmarks}
    out["AVG"] = coverage_by_technique(records)
    return out


def coverage_by_fault_class(
    records: tuple[TrialRecord, ...]
) -> dict[str, CoverageBreakdown]:
    """Fig. 8 rows split by fault class ("register", "multibit", "burst",
    "memory") — how detection coverage shifts across a scenario's fault
    mixture — plus an AVG aggregate."""
    classes = sorted({r.fault_class for r in records})
    out = {c: coverage_by_technique(tuple(r for r in records if r.fault_class == c))
           for c in classes}
    out["AVG"] = coverage_by_technique(records)
    return out


def long_latency_breakdown(
    records: tuple[TrialRecord, ...]
) -> dict[FailureClass, tuple[int, int]]:
    """Fig. 9: per-consequence (detected, total) counts for long-latency errors."""
    out: dict[FailureClass, tuple[int, int]] = {}
    for klass in (
        FailureClass.APP_SDC,
        FailureClass.APP_CRASH,
        FailureClass.ALL_VM_FAILURE,
        FailureClass.ONE_VM_FAILURE,
    ):
        subset = [r for r in records if r.failure_class is klass]
        detected = sum(1 for r in subset if r.detected)
        out[klass] = (detected, len(subset))
    return out


def undetected_breakdown(
    records: tuple[TrialRecord, ...]
) -> dict[UndetectedKind, float]:
    """Table II: shares of undetected manifested faults by kind."""
    undetected = [
        r for r in records
        if r.manifested and not r.detected and r.undetected_kind is not None
    ]
    if not undetected:
        raise CampaignConfigError("no undetected manifested faults to break down")
    counts = Counter(r.undetected_kind for r in undetected)
    total = len(undetected)
    return {kind: counts.get(kind, 0) / total for kind in UndetectedKind}
