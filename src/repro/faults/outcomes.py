"""Fault-outcome taxonomy.

Mirrors the paper's vocabulary end to end:

* **detection technique** (Fig. 8): hardware exception, software assertion,
  VM transition detection, or undetected;
* **failure class** (Fig. 9 / Section V.E): the consequence a fault *would*
  have without detection — one-VM failure, all-VM failure, application crash,
  application silent data corruption; plus host-side classes for faults that
  never reach VM entry (hypervisor crash/hang, Fig. 2 path 1) and
  benign/masked faults;
* **undetected kind** (Table II): mis-classified, stack values, time values,
  other values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "DetectionTechnique",
    "FailureClass",
    "UndetectedKind",
    "FaultSpec",
    "MultiBitFaultSpec",
    "BurstFaultSpec",
    "MemoryFaultSpec",
    "AnyFaultSpec",
    "RecoveryRecord",
    "TrialRecord",
]


class DetectionTechnique(enum.Enum):
    """Which Xentry mechanism caught the fault (Fig. 8 legend)."""

    HW_EXCEPTION = "hw_exception"
    SW_ASSERTION = "sw_assertion"
    VM_TRANSITION = "vm_transition"
    UNDETECTED = "undetected"


class FailureClass(enum.Enum):
    """Consequence of the fault absent detection."""

    BENIGN = "benign"                    # masked / non-activated: no effect
    LATENT = "latent"                    # internal state corrupted, but no
    #                                      observable failure within the
    #                                      observation window (the paper's
    #                                      methodology only counts injections
    #                                      that "cause failures or data
    #                                      corruptions" as manifested)
    HYPERVISOR_CRASH = "hypervisor_crash"  # fatal corruption in host mode (path 1)
    HYPERVISOR_HANG = "hypervisor_hang"    # watchdog-budget exhaustion
    ONE_VM_FAILURE = "one_vm_failure"
    ALL_VM_FAILURE = "all_vm_failure"
    APP_CRASH = "app_crash"
    APP_SDC = "app_sdc"

    @property
    def is_long_latency(self) -> bool:
        """Long-latency errors propagate *across VM entry* (Section II.A)."""
        return self in (
            FailureClass.ONE_VM_FAILURE,
            FailureClass.ALL_VM_FAILURE,
            FailureClass.APP_CRASH,
            FailureClass.APP_SDC,
        )

    @property
    def is_manifested(self) -> bool:
        """True when the fault caused an observable failure or corruption."""
        return self not in (FailureClass.BENIGN, FailureClass.LATENT)


#: Severity order used when one fault corrupts several structures.
_SEVERITY = {
    FailureClass.BENIGN: 0,
    FailureClass.LATENT: 0,
    FailureClass.APP_SDC: 1,
    FailureClass.APP_CRASH: 2,
    FailureClass.ONE_VM_FAILURE: 3,
    FailureClass.HYPERVISOR_CRASH: 4,
    FailureClass.HYPERVISOR_HANG: 4,
    FailureClass.ALL_VM_FAILURE: 5,
}


def most_severe(classes: list[FailureClass]) -> FailureClass:
    """Pick the most severe consequence among ``classes``."""
    if not classes:
        return FailureClass.BENIGN
    return max(classes, key=lambda c: _SEVERITY[c])


class UndetectedKind(enum.Enum):
    """Why an undetected fault slipped through (Table II)."""

    MIS_CLASSIFY = "mis_classify"    # footprint changed; classifier wrong
    STACK_VALUES = "stack_values"    # corrupted saved/restored context
    TIME_VALUES = "time_values"      # corrupted time delivery
    OTHER_VALUES = "other_values"


@dataclass(frozen=True)
class FaultSpec:
    """One injected soft error: a single bit flip in one register at one
    dynamic instruction of a host-mode execution (the Section V.B model)."""

    register: str
    bit: int
    dynamic_index: int

    @property
    def fault_class(self) -> str:
        return "register"


@dataclass(frozen=True)
class MultiBitFaultSpec:
    """Several bits flipped in *one* register at one dynamic instruction.

    Models multi-bit upsets in a single physical storage cell group — the
    whole set strikes atomically at ``dynamic_index``.  Duck-types the
    fields aggregations read from :class:`FaultSpec` (``bit`` reports the
    lowest flipped bit).
    """

    register: str
    bits: tuple[int, ...]
    dynamic_index: int

    @property
    def bit(self) -> int:
        return self.bits[0]

    @property
    def fault_class(self) -> str:
        return "multibit"


@dataclass(frozen=True)
class BurstFaultSpec:
    """A time-correlated fault storm: flips across several registers, all
    striking at the *same* dynamic instruction.

    Models a particle strike spanning adjacent register-file cells.  The
    storm has no single register to watch, so activation is inferred from
    divergence (like memory faults).  ``flips`` is a tuple of
    ``(register, bit)`` pairs; ``register`` reports ``"burst"`` so
    aggregations keyed by register keep working.
    """

    flips: tuple[tuple[str, int], ...]
    dynamic_index: int

    @property
    def register(self) -> str:
        return "burst"

    @property
    def bit(self) -> int:
        return self.flips[0][1]

    @property
    def fault_class(self) -> str:
        return "burst"


@dataclass(frozen=True)
class MemoryFaultSpec:
    """An uncorrected *memory* bit flip (extension beyond the paper).

    Present in a hypervisor structure when the activation begins — the
    residual class ECC cannot correct.  Duck-types the fields aggregations
    read from :class:`FaultSpec` (``register`` reports ``"memory"``).
    """

    address: int
    bit: int

    @property
    def register(self) -> str:
        return "memory"

    @property
    def dynamic_index(self) -> int:
        return 0

    @property
    def fault_class(self) -> str:
        return "memory"


#: Everything a TrialRecord's ``fault`` field may carry.
AnyFaultSpec = FaultSpec | MultiBitFaultSpec | BurstFaultSpec | MemoryFaultSpec


@dataclass(frozen=True)
class RecoveryRecord:
    """What the recovery policy did about one *detected* trial.

    Recorded when a campaign runs with a recovery policy armed: after a
    positive detection the policy's escalation ladder executes, and this
    record captures whether the machine survived, how many rungs it cost,
    the guest-visible downtime (retired instructions spent inside recovery),
    and the exact post-recovery state divergence against the golden run
    (heap words + output words that still differ, plus short state digests
    so zero-divergence claims are checkable from the record alone).
    """

    #: Name of the policy that ran ("reexecute", "microreboot", "ladder").
    policy: str
    #: Action that settled the trial ("reexecute", "microreboot",
    #: "quarantine_vm", "unrecoverable").
    action: str
    #: True when the activation was replayed to a state matching golden.
    recovered: bool
    #: Ladder rungs executed (each failed attempt counts).
    attempts: int
    #: Dynamic instructions retired inside recovery — guest-visible downtime.
    downtime_instructions: int
    #: Heap words still differing from the golden post-activation image.
    divergent_words: int
    #: Guest-visible output words still differing from golden.
    outputs_divergent: int
    #: blake2b digest of the post-recovery heap + outputs.
    state_digest: str
    #: Same digest of the golden post-activation state.
    golden_digest: str
    detail: str = ""

    @property
    def clean(self) -> bool:
        """Recovered with bit-identical post-activation state."""
        return (
            self.recovered
            and self.divergent_words == 0
            and self.outputs_divergent == 0
            and self.state_digest == self.golden_digest
        )


@dataclass(frozen=True)
class TrialRecord:
    """Complete record of one fault-injection trial."""

    benchmark: str
    vmer: int
    fault: AnyFaultSpec
    #: Whether the flipped value was read before being overwritten.
    activated: bool
    failure_class: FailureClass
    detected_by: DetectionTechnique
    #: Dynamic instructions between activation and detection (None when
    #: undetected or never activated) — the Fig. 10 metric.
    detection_latency: int | None
    undetected_kind: UndetectedKind | None = None
    #: Diagnostic details (assertion id, exception vector, corrupted slots).
    detail: str = ""
    #: Recovery outcome (campaigns run with ``--recover``; None otherwise —
    #: only *detected* trials run the policy).
    recovery: RecoveryRecord | None = None

    @property
    def fault_class(self) -> str:
        """Taxonomy bucket of the injected fault ("register", "multibit",
        "burst", "memory") — the per-class coverage axis."""
        return self.fault.fault_class

    @property
    def manifested(self) -> bool:
        return self.failure_class.is_manifested

    @property
    def detected(self) -> bool:
        return self.detected_by is not DetectionTechnique.UNDETECTED

    @property
    def long_latency(self) -> bool:
        return self.failure_class.is_long_latency
