"""Fault injection: the Simics-module equivalent of Section V.

Single-bit register flips into live hypervisor executions, golden-run
comparison, consequence classification, and campaign orchestration.
"""

from repro.faults.campaign import CampaignConfig, CampaignResult, FaultInjectionCampaign
from repro.faults.injector import (
    TransitionDetector,
    run_memory_trial,
    run_trial,
    run_twin_batch,
)
from repro.faults.model import FaultModel, MemoryFaultModel
from repro.faults.outcomes import (
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    MemoryFaultSpec,
    TrialRecord,
    UndetectedKind,
)
from repro.faults.propagation import (
    Divergence,
    GoldenRun,
    capture_golden,
    classify_divergence,
    compute_divergence,
    undetected_kind_for,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "DetectionTechnique",
    "Divergence",
    "FailureClass",
    "FaultInjectionCampaign",
    "FaultModel",
    "FaultSpec",
    "MemoryFaultModel",
    "MemoryFaultSpec",
    "GoldenRun",
    "TransitionDetector",
    "TrialRecord",
    "UndetectedKind",
    "capture_golden",
    "classify_divergence",
    "compute_divergence",
    "run_memory_trial",
    "run_trial",
    "run_twin_batch",
    "undetected_kind_for",
]
