"""Fault injection: the Simics-module equivalent of Section V.

Single-bit register flips into live hypervisor executions, golden-run
comparison, consequence classification, and campaign orchestration — plus
the scenario layer's wider fault models: multi-bit upsets, time-correlated
register bursts, and subsystem-targeted memory flips.
"""

from repro.faults.campaign import CampaignConfig, CampaignResult, FaultInjectionCampaign
from repro.faults.injector import (
    TransitionDetector,
    run_burst_trial,
    run_memory_trial,
    run_spec_trial,
    run_trial,
    run_twin_batch,
)
from repro.faults.model import (
    MEMORY_SUBSYSTEMS,
    BurstFaultModel,
    CompositeFaultModel,
    FaultModel,
    FaultModelComponent,
    MemoryFaultModel,
    MultiBitFaultModel,
    sample_fault,
)
from repro.faults.outcomes import (
    AnyFaultSpec,
    BurstFaultSpec,
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    MemoryFaultSpec,
    MultiBitFaultSpec,
    TrialRecord,
    UndetectedKind,
)
from repro.faults.propagation import (
    Divergence,
    GoldenRun,
    capture_golden,
    classify_divergence,
    compute_divergence,
    undetected_kind_for,
)

__all__ = [
    "AnyFaultSpec",
    "BurstFaultModel",
    "BurstFaultSpec",
    "CampaignConfig",
    "CampaignResult",
    "CompositeFaultModel",
    "DetectionTechnique",
    "Divergence",
    "FailureClass",
    "FaultInjectionCampaign",
    "FaultModel",
    "FaultModelComponent",
    "FaultSpec",
    "MEMORY_SUBSYSTEMS",
    "MemoryFaultModel",
    "MemoryFaultSpec",
    "MultiBitFaultModel",
    "MultiBitFaultSpec",
    "GoldenRun",
    "TransitionDetector",
    "TrialRecord",
    "UndetectedKind",
    "capture_golden",
    "classify_divergence",
    "compute_divergence",
    "run_burst_trial",
    "run_memory_trial",
    "run_spec_trial",
    "run_trial",
    "run_twin_batch",
    "sample_fault",
    "undetected_kind_for",
]
