"""Single-trial fault injection.

One *trial* executes the same activation twice from identical machine state —
fault-free, then with a scheduled single-bit register flip — and reduces the
pair to a :class:`~repro.faults.outcomes.TrialRecord`:

* a hardware exception or failed software assertion during the faulty run is
  a **runtime detection** (short detection latency, Fig. 10);
* a faulty run that reaches VM entry is shown to the optional **transition
  detector** (anything with a ``flags_incorrect(features)`` predicate, e.g.
  compiled tree rules);
* divergence against the golden run yields the ground-truth consequence
  (Fig. 9) and, for missed faults, the Table II attribution.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import SimulationLimitExceeded
from repro.faults.outcomes import (
    BurstFaultSpec,
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    MemoryFaultSpec,
    MultiBitFaultSpec,
    TrialRecord,
    UndetectedKind,
)
from repro.faults.propagation import (
    GoldenRun,
    capture_golden,
    classify_divergence,
    compute_divergence,
    undetected_kind_for,
)
from repro.hypervisor.xen import Activation, XenHypervisor
from repro.machine import lockstep
from repro.machine.exceptions import AssertionViolation, HardwareException, classify_exception

__all__ = [
    "PLAN_UNSET",
    "TransitionDetector",
    "run_trial",
    "run_burst_trial",
    "run_memory_trial",
    "run_spec_trial",
    "run_twin_batch",
    "trace_plan",
]

#: Sentinel for :func:`run_twin_batch`'s ``plan`` parameter: "compute the
#: TwinPlan yourself".  Distinct from ``None``, which is a *known* answer —
#: the trace replay refused to classify and every twin must peel.
PLAN_UNSET = object()


class TransitionDetector(Protocol):
    """Anything usable as the VM-transition classifier in a trial."""

    def flags_incorrect(self, features: tuple[int, ...]) -> bool: ...


def run_trial(
    hv: XenHypervisor,
    activation: Activation,
    fault: FaultSpec | MultiBitFaultSpec,
    *,
    detector: TransitionDetector | None = None,
    golden: GoldenRun | None = None,
    benchmark: str = "",
    followups: tuple[Activation, ...] = (),
    read_point: int | None = None,
) -> TrialRecord:
    """Execute one golden/faulty pair and classify the outcome.

    ``golden`` may be supplied to amortize the fault-free run across several
    injections into the same activation; it must have been captured from the
    current machine state (with the same ``followups``).

    ``followups`` continues the simulation past the injected activation, the
    way the paper's Simics campaign does: corrupted state that survived the
    first VM entry is detected when a later hypervisor execution consumes it
    (a fatal exception, a failed assertion, or a transition-feature anomaly),
    with the detection latency accumulating across activations.

    ``read_point`` (from the lock-step batch scan) asserts that the golden
    run neither reads nor writes the flipped register between the injection
    index and that dynamic index: the resume may then fast-forward to the
    ladder rung at-or-before the *read point* and re-apply the flip to the
    restored golden register value — bit-identical to flipping at the
    injection index, but skipping the shared prefix.
    """
    if golden is None:
        golden = capture_golden(hv, activation, followups)
    # Fast-forward: resume from the latest ladder rung at-or-before the
    # injection index (or the scan-proven read point) instead of re-executing
    # the golden prefix.  The flip cannot fire before the rung
    # (rung.index <= dynamic_index) and the prefix is deterministic, so the
    # faulty run is bit-identical either way.
    stats = hv.ff_stats
    stats["trials"] += 1
    target = fault.dynamic_index if read_point is None else read_point
    rung = None
    for candidate in golden.ladder:  # ascending by index
        if candidate.index > target:
            break
        rung = candidate
    if rung is not None:
        hv.restore_machine(rung)
        stats["fast_forwarded"] += 1
        stats["instructions_skipped"] += rung.index
    else:
        hv.restore(golden.checkpoint)
    multibit = isinstance(fault, MultiBitFaultSpec)
    if rung is not None and rung.index > fault.dynamic_index:
        # Past the injection index: the register still holds its golden
        # value here (the scan proved no access), so flip it now.
        _bump_lockstep(
            hv, "read_ff_instructions", rung.index - fault.dynamic_index
        )
        if multibit:
            hv.cpu.arm_applied_flip_set(
                fault.dynamic_index,
                tuple((fault.register, b) for b in fault.bits),
                known_activation=read_point,
            )
        else:
            hv.cpu.arm_applied_flip(
                fault.dynamic_index, fault.register, fault.bit,
                known_activation=read_point,
            )
    else:
        # ``read_point`` doubles as the analytically proven activation
        # index (the golden trace's first post-flip access is a read
        # there), letting the core skip the activation watch and keep the
        # whole window on the translated path.
        if multibit:
            hv.cpu.schedule_flip_set(
                fault.dynamic_index,
                tuple((fault.register, b) for b in fault.bits),
                known_activation=read_point,
            )
        else:
            hv.cpu.schedule_register_flip(
                fault.dynamic_index, fault.register, fault.bit,
                known_activation=read_point,
            )

    def _activation_index() -> int:
        report = hv.cpu.injection_report
        if report is not None and report.activation_index is not None:
            return report.activation_index
        return fault.dynamic_index

    def _activated() -> bool:
        report = hv.cpu.injection_report
        return bool(report is not None and report.applied and report.activated)

    return _execute_and_classify(
        hv, activation, fault, golden,
        detector=detector, benchmark=benchmark, followups=followups,
        activation_index=_activation_index, activated=_activated,
        resume=rung is not None,
    )


def _bump_lockstep(hv: XenHypervisor, key: str, n: int = 1) -> None:
    """Count on both ledgers: the per-machine one (benchmarks inspect
    ``hv.lockstep_stats``) and the process-wide one the engine/CLI report
    (:data:`repro.machine.lockstep.STATS`, mirroring the translation cache)."""
    hv.lockstep_stats[key] += n
    lockstep.STATS[key] += n


def trace_plan(hv: XenHypervisor, activation: Activation, golden: GoldenRun):
    """Replay the golden activation once in full-trace mode and lower the
    address stream into a :class:`~repro.machine.lockstep.TwinPlan`.

    Returns ``None`` when the replay does not line up with the captured
    golden run (the scan refuses to classify against a mismatched trace;
    every twin then peels into the per-trial oracle path).

    Public because the campaign pulls this lowering forward when an artifact
    cache is armed: the plan (or the ``None`` refusal — equally cacheable)
    is published with the golden products, and a warm run hands it straight
    to :func:`run_twin_batch` instead of replaying.
    """
    core = hv.cpu
    tracer = core.tracer
    was_light = tracer.light
    hv.restore(golden.checkpoint)
    core.clear_injection()
    tracer.light = False
    try:
        result = hv.execute(activation)
        addresses = list(tracer.addresses)
    finally:
        tracer.light = was_light
        if was_light:
            tracer.addresses.clear()
    if (
        result.instructions != golden.result.instructions
        or len(addresses) != result.instructions
    ):
        return None
    return lockstep.build_plan(hv.program, addresses)


def _classify_spec_twin(plan, fault):
    """Classify one twin for the lock-step batch, by fault class.

    Register and multi-bit faults use the position-column scan directly
    (one register, one injection index — multi-bit only widens the flipped
    mask, not the access pattern that decides liveness).  A burst is DEAD
    only if *every* flipped register is individually dead: until a faulty
    value is read, the faulty twin follows the golden control flow, so the
    per-register proofs compose.  A live burst peels with no read point —
    the single-register no-access proof does not cover its other flips.
    Memory faults always peel conservatively: the scan only tracks register
    liveness.
    """
    if plan is None or isinstance(fault, MemoryFaultSpec):
        return (lockstep.PEEL, None)
    if isinstance(fault, BurstFaultSpec):
        for register, _bit in fault.flips:
            kind, _ = lockstep.classify_twin(plan, register, fault.dynamic_index)
            if kind != lockstep.DEAD:
                return (lockstep.PEEL, None)
        return (lockstep.DEAD, None)
    return lockstep.classify_twin(plan, fault.register, fault.dynamic_index)


def run_twin_batch(
    hv: XenHypervisor,
    activation: Activation,
    faults,
    *,
    detector: TransitionDetector | None = None,
    golden: GoldenRun | None = None,
    benchmark: str = "",
    followups: tuple[Activation, ...] = (),
    on_record=None,
    recover=None,
    plan=PLAN_UNSET,
) -> list[TrialRecord]:
    """Execute every faulty twin of one golden group as a lock-step batch.

    Classifies each twin against the shared golden position columns
    (:mod:`repro.machine.lockstep`): *dead* twins — flip overwritten
    before the next read, or never touched again — synthesize their
    non-activated record without executing; diverging twins peel into
    :func:`run_trial`, fast-forwarded to their first-read point.  Record
    order matches the ``faults`` order, and every record is bit-identical
    to what per-trial execution would produce.

    ``recover`` is the campaign's recovery hook — called as
    ``recover(record, index)`` immediately after each trial settles (while
    the machine still holds that trial's post-faulty state) and may return
    a replacement record carrying the recovery outcome.  Dead twins were
    never detected, so the hook is a no-op for them, and every recovery
    attempt restores machine state itself — the following twin's trial is
    unperturbed either way.

    ``plan`` short-circuits the full-trace lowering: a caller holding the
    group's :class:`~repro.machine.lockstep.TwinPlan` (from the artifact
    cache, or pre-computed for publication) passes it here — including an
    explicit ``None`` for a cached trace-mismatch refusal.  Left at
    :data:`PLAN_UNSET`, the batch replays and lowers the trace itself.
    """
    if golden is None:
        golden = capture_golden(hv, activation, followups)
    faults = list(faults)
    if plan is PLAN_UNSET:
        plan = trace_plan(hv, activation, golden) if faults else None
    _bump_lockstep(hv, "twin_batches")
    _bump_lockstep(hv, "twins", len(faults))
    records: list[TrialRecord] = []
    for index, fault in enumerate(faults):
        kind, read_point = _classify_spec_twin(plan, fault)
        if kind == lockstep.DEAD:
            _bump_lockstep(hv, "dead_twins")
            _bump_lockstep(
                hv, "synthesized_instructions", golden.result.instructions
            )
            # The whole faulty run is provably golden: account it as a
            # full-length fast-forward.
            hv.ff_stats["trials"] += 1
            hv.ff_stats["fast_forwarded"] += 1
            hv.ff_stats["instructions_skipped"] += golden.result.instructions
            record = TrialRecord(
                benchmark=benchmark,
                vmer=activation.vmer,
                fault=fault,
                activated=False,
                failure_class=FailureClass.BENIGN,
                detected_by=DetectionTechnique.UNDETECTED,
                detection_latency=None,
                detail="non-activated",
            )
        else:
            _bump_lockstep(hv, "peeled_twins")
            record = run_spec_trial(
                hv,
                activation,
                fault,
                detector=detector,
                golden=golden,
                benchmark=benchmark,
                followups=followups,
                read_point=read_point,
            )
        if recover is not None:
            record = recover(record, index)
        records.append(record)
        if on_record is not None:
            on_record(record)
    return records


def run_memory_trial(
    hv: XenHypervisor,
    activation: Activation,
    fault: "MemoryFaultSpec",
    *,
    detector: TransitionDetector | None = None,
    golden: GoldenRun | None = None,
    benchmark: str = "",
    followups: tuple[Activation, ...] = (),
) -> TrialRecord:
    """Inject a single bit flip into hypervisor *memory* before an activation.

    Extension beyond the paper's register-only model: the paper scopes to CPU
    faults because "combinational logic circuits in CPU are usually not
    protected by ECC", noting that memory errors beyond ECC's correction
    capability still occur.  This models exactly that residual class — an
    uncorrected flip in a hypervisor structure, present when the activation
    begins.

    A memory fault is present from instruction 0 and has no register to
    watch; it counts as activated when the execution observably diverges.
    """
    if golden is None:
        golden = capture_golden(hv, activation, followups)
    # Memory faults are present from instruction 0, so there is no prefix to
    # skip: always replay from the pre-run checkpoint.
    hv.ff_stats["trials"] += 1
    hv.restore(golden.checkpoint)
    hv.cpu.clear_injection()
    original = hv.memory.read_u64(fault.address)
    hv.memory.write_u64(fault.address, original ^ (1 << fault.bit))

    return _execute_and_classify(
        hv, activation, fault, golden,
        detector=detector, benchmark=benchmark, followups=followups,
        activation_index=lambda: 0,
        activated=None,  # inferred from divergence
    )


def run_burst_trial(
    hv: XenHypervisor,
    activation: Activation,
    fault: BurstFaultSpec,
    *,
    detector: TransitionDetector | None = None,
    golden: GoldenRun | None = None,
    benchmark: str = "",
    followups: tuple[Activation, ...] = (),
) -> TrialRecord:
    """Inject a time-correlated fault storm: every flip of the burst strikes
    atomically at one dynamic instruction.

    A burst spans registers, so there is no single register to watch —
    activation is inferred from divergence, exactly like memory faults.
    The ladder fast-forward to the rung at-or-before the storm index is
    still sound: the shared prefix is fault-free either way.
    """
    if golden is None:
        golden = capture_golden(hv, activation, followups)
    stats = hv.ff_stats
    stats["trials"] += 1
    rung = None
    for candidate in golden.ladder:  # ascending by index
        if candidate.index > fault.dynamic_index:
            break
        rung = candidate
    if rung is not None:
        hv.restore_machine(rung)
        stats["fast_forwarded"] += 1
        stats["instructions_skipped"] += rung.index
    else:
        hv.restore(golden.checkpoint)
    hv.cpu.schedule_flip_set(fault.dynamic_index, fault.flips)

    return _execute_and_classify(
        hv, activation, fault, golden,
        detector=detector, benchmark=benchmark, followups=followups,
        activation_index=lambda: fault.dynamic_index,
        activated=None,  # inferred from divergence
        resume=rung is not None,
    )


def run_spec_trial(
    hv: XenHypervisor,
    activation: Activation,
    fault,
    *,
    detector: TransitionDetector | None = None,
    golden: GoldenRun | None = None,
    benchmark: str = "",
    followups: tuple[Activation, ...] = (),
    read_point: int | None = None,
) -> TrialRecord:
    """Dispatch one trial on the fault spec's class.

    The generic entry point the campaign and twin-batch paths use: register
    and multi-bit faults run through :func:`run_trial` (honoring the
    lock-step ``read_point``), bursts through :func:`run_burst_trial`, and
    memory faults through :func:`run_memory_trial` (both ignore
    ``read_point`` — neither has a per-register no-access proof).
    """
    if isinstance(fault, MemoryFaultSpec):
        return run_memory_trial(
            hv, activation, fault,
            detector=detector, golden=golden,
            benchmark=benchmark, followups=followups,
        )
    if isinstance(fault, BurstFaultSpec):
        return run_burst_trial(
            hv, activation, fault,
            detector=detector, golden=golden,
            benchmark=benchmark, followups=followups,
        )
    return run_trial(
        hv, activation, fault,
        detector=detector, golden=golden,
        benchmark=benchmark, followups=followups,
        read_point=read_point,
    )


def _execute_and_classify(
    hv: XenHypervisor,
    activation: Activation,
    fault,
    golden: GoldenRun,
    *,
    detector: TransitionDetector | None,
    benchmark: str,
    followups: tuple[Activation, ...],
    activation_index,
    activated,
    resume: bool = False,
) -> TrialRecord:
    """Run the prepared faulty activation and classify (shared trial core).

    With ``resume=True`` the machine already sits at a restored mid-run
    checkpoint, so only the activation's suffix executes.
    """
    _activation_index = activation_index
    try:
        faulty = hv.resume_execution(activation) if resume else hv.execute(activation)
    except HardwareException as exc:
        verdict = classify_exception(exc)
        latency = max(0, hv.cpu.tracer.count - _activation_index())
        return TrialRecord(
            benchmark=benchmark,
            vmer=activation.vmer,
            fault=fault,
            activated=True,
            failure_class=FailureClass.HYPERVISOR_CRASH,
            detected_by=(
                DetectionTechnique.HW_EXCEPTION
                if verdict.fatal
                else DetectionTechnique.UNDETECTED
            ),
            detection_latency=latency if verdict.fatal else None,
            undetected_kind=None if verdict.fatal else UndetectedKind.OTHER_VALUES,
            detail=f"{exc.vector.name}: {verdict.reason}",
        )
    except AssertionViolation as exc:
        latency = max(0, hv.cpu.tracer.count - _activation_index())
        return TrialRecord(
            benchmark=benchmark,
            vmer=activation.vmer,
            fault=fault,
            activated=True,
            failure_class=FailureClass.HYPERVISOR_CRASH,
            detected_by=DetectionTechnique.SW_ASSERTION,
            detection_latency=latency,
            detail=f"assertion {exc.assertion_id}",
        )
    except SimulationLimitExceeded:
        # A stuck host-mode execution trips the platform's NMI watchdog —
        # delivered as a hardware exception, hence a runtime detection.
        return TrialRecord(
            benchmark=benchmark,
            vmer=activation.vmer,
            fault=fault,
            activated=True,
            failure_class=FailureClass.HYPERVISOR_HANG,
            detected_by=DetectionTechnique.HW_EXCEPTION,
            detection_latency=max(0, hv.cpu.tracer.count - _activation_index()),
            detail="watchdog NMI (instruction budget exhausted)",
        )

    # The faulty run reached VM entry.
    divergence = compute_divergence(hv, activation, golden, faulty)
    was_activated = activated() if activated is not None else divergence.any
    if not was_activated and not divergence.any:
        return TrialRecord(
            benchmark=benchmark,
            vmer=activation.vmer,
            fault=fault,
            activated=False,
            failure_class=FailureClass.BENIGN,
            detected_by=DetectionTechnique.UNDETECTED,
            detection_latency=None,
            detail="non-activated",
        )
    failure = classify_divergence(divergence, activation)
    # VM transition detection runs at every VM entry (Fig. 4).
    flagged = detector is not None and detector.flags_incorrect(faulty.features)
    if flagged:
        latency = max(0, faulty.instructions - _activation_index())
        return TrialRecord(
            benchmark=benchmark,
            vmer=activation.vmer,
            fault=fault,
            activated=was_activated,
            failure_class=failure,
            detected_by=DetectionTechnique.VM_TRANSITION,
            detection_latency=latency,
            detail="transition classifier flagged the feature vector",
        )
    # Continue the simulation: corrupted machine state may be consumed by a
    # later hypervisor execution (and the fault detected there).
    followups_diverged = False
    if divergence.any and golden.followups:
        record, followups_diverged = _run_followups(
            hv, activation, fault, followups, golden, failure, was_activated,
            base_latency=max(0, faulty.instructions - _activation_index()),
            detector=detector, benchmark=benchmark,
        )
        if record is not None:
            return record
        # Internal-only corruption that neither reached a guest-visible
        # output nor perturbed any follow-up execution is *latent*: the
        # paper's methodology counts only injections that cause observable
        # failures or data corruptions.
        if (
            failure.is_manifested
            and failure not in (FailureClass.APP_SDC, FailureClass.APP_CRASH)
            and not divergence.output_diffs
            and not followups_diverged
        ):
            failure = FailureClass.LATENT
    kind = (
        undetected_kind_for(divergence, fault.register)
        if failure.is_manifested
        else None
    )
    return TrialRecord(
        benchmark=benchmark,
        vmer=activation.vmer,
        fault=fault,
        activated=was_activated,
        failure_class=failure,
        detected_by=DetectionTechnique.UNDETECTED,
        detection_latency=None,
        undetected_kind=kind,
        detail="",
    )


def _run_followups(
    hv: XenHypervisor,
    activation: Activation,
    fault: FaultSpec,
    followups: tuple[Activation, ...],
    golden: GoldenRun,
    failure,
    activated: bool,
    *,
    base_latency: int,
    detector: TransitionDetector | None,
    benchmark: str,
) -> tuple[TrialRecord | None, bool]:
    """Execute the continuation stream on the corrupted state.

    Returns ``(record, diverged)``: a detection record (or ``None`` when the
    corruption survives the whole window undetected) and whether any
    follow-up execution visibly diverged from its golden twin.
    """
    elapsed = base_latency
    diverged = False
    for follow, golden_follow in zip(followups, golden.followups):
        try:
            result = hv.execute(follow)
        except (HardwareException, AssertionViolation) as exc:
            is_assert = isinstance(exc, AssertionViolation)
            if not is_assert:
                verdict = classify_exception(exc)
                if not verdict.fatal:
                    return None, True  # benign trap; corruption persists
                detail = f"{exc.vector.name} in follow-up: {verdict.reason}"
                technique = DetectionTechnique.HW_EXCEPTION
            else:
                detail = f"assertion {exc.assertion_id} in follow-up"
                technique = DetectionTechnique.SW_ASSERTION
            return TrialRecord(
                benchmark=benchmark,
                vmer=activation.vmer,
                fault=fault,
                activated=activated,
                failure_class=failure,
                detected_by=technique,
                detection_latency=elapsed + hv.cpu.tracer.count,
                detail=detail,
            ), True
        except SimulationLimitExceeded:
            return TrialRecord(
                benchmark=benchmark,
                vmer=activation.vmer,
                fault=fault,
                activated=activated,
                failure_class=FailureClass.HYPERVISOR_HANG,
                detected_by=DetectionTechnique.HW_EXCEPTION,
                detection_latency=elapsed + hv.cpu.tracer.count,
                detail="watchdog NMI in follow-up execution",
            ), True
        elapsed += result.instructions
        if result.features != golden_follow.features:
            diverged = True
            if detector is not None and detector.flags_incorrect(result.features):
                return TrialRecord(
                    benchmark=benchmark,
                    vmer=activation.vmer,
                    fault=fault,
                    activated=activated,
                    failure_class=failure,
                    detected_by=DetectionTechnique.VM_TRANSITION,
                    detection_latency=elapsed,  # detected at this VM entry
                    detail="transition classifier flagged a follow-up execution",
                ), True
    return None, diverged
