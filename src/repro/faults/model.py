"""The fault models: sampling distributions over injectable state.

Section V.B: "We currently use the single bit-flip fault model in the
architectural register state, including general purpose registers, instruction
and stack pointers and flags.  We adopt the common practice that assumes one
single-bit flip soft error may occur at a time."

:class:`FaultModel` is exactly that paper model.  The rest of the family
extends it (scenario layer, ROADMAP "fault-model diversity"): multi-bit
upsets in one register, time-correlated bursts across registers, uncorrected
memory flips (optionally targeted at one hypervisor subsystem), and a
probability-weighted composite over any of the above.

Injection points are uniform over the dynamic instructions of the target
hypervisor execution; registers and bit positions are uniform over the
injectable state.  Every model's ``sample`` is a pure function of the RNG
stream handed to it, so campaigns stay bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignConfigError
from repro.faults.outcomes import (
    BurstFaultSpec,
    FaultSpec,
    MemoryFaultSpec,
    MultiBitFaultSpec,
)
from repro.hypervisor.layout import HypervisorLayout, Slot, ValueKind
from repro.machine.registers import INJECTABLE_REGISTERS

__all__ = [
    "MEMORY_SUBSYSTEMS",
    "FaultModel",
    "MultiBitFaultModel",
    "BurstFaultModel",
    "MemoryFaultModel",
    "FaultModelComponent",
    "CompositeFaultModel",
    "FaultModelSpec",
    "model_digest_payload",
    "sample_fault",
]


def _validate_bits(bits: tuple[int, int]) -> None:
    lo, hi = bits
    if not (0 <= lo <= hi <= 63):
        raise CampaignConfigError(f"bit range {bits} outside [0, 63]")


def _validate_registers(registers: tuple[str, ...]) -> None:
    if not registers:
        raise CampaignConfigError("fault model needs at least one register")
    unknown = set(registers) - set(INJECTABLE_REGISTERS)
    if unknown:
        raise CampaignConfigError(f"not injectable: {sorted(unknown)}")


@dataclass(frozen=True)
class FaultModel:
    """Sampling distribution for single-bit register fault specs.

    ``registers`` defaults to the full architectural set; restrict it to
    study per-register sensitivities (e.g. RIP-only or flags-only ablations).
    """

    registers: tuple[str, ...] = INJECTABLE_REGISTERS
    bits: tuple[int, int] = (0, 63)

    def __post_init__(self) -> None:
        _validate_registers(self.registers)
        _validate_bits(self.bits)

    def sample(self, rng: np.random.Generator, run_length: int) -> FaultSpec:
        """Draw one fault for an execution of ``run_length`` dynamic instructions."""
        if run_length <= 0:
            raise CampaignConfigError("run_length must be positive")
        lo, hi = self.bits
        return FaultSpec(
            register=self.registers[int(rng.integers(0, len(self.registers)))],
            bit=int(rng.integers(lo, hi + 1)),
            dynamic_index=int(rng.integers(0, run_length)),
        )


@dataclass(frozen=True)
class MultiBitFaultModel:
    """Multi-bit upsets: ``n_bits`` distinct bits of one register flip
    atomically at one dynamic instruction (adjacent-cell strikes)."""

    registers: tuple[str, ...] = INJECTABLE_REGISTERS
    bits: tuple[int, int] = (0, 63)
    n_bits: int = 2

    def __post_init__(self) -> None:
        _validate_registers(self.registers)
        _validate_bits(self.bits)
        lo, hi = self.bits
        width = hi - lo + 1
        if not 2 <= self.n_bits <= width:
            raise CampaignConfigError(
                f"n_bits must be in [2, {width}] for bit range {self.bits}, "
                f"got {self.n_bits}"
            )

    def sample(self, rng: np.random.Generator, run_length: int) -> MultiBitFaultSpec:
        """Draw one multi-bit fault for a ``run_length``-instruction execution."""
        if run_length <= 0:
            raise CampaignConfigError("run_length must be positive")
        lo, hi = self.bits
        register = self.registers[int(rng.integers(0, len(self.registers)))]
        picks = rng.choice(np.arange(lo, hi + 1), size=self.n_bits, replace=False)
        return MultiBitFaultSpec(
            register=register,
            bits=tuple(sorted(int(b) for b in picks)),
            dynamic_index=int(rng.integers(0, run_length)),
        )


@dataclass(frozen=True)
class BurstFaultModel:
    """Time-correlated fault storms: one bit in each of ``n_flips`` distinct
    registers, all striking at the same dynamic instruction."""

    registers: tuple[str, ...] = INJECTABLE_REGISTERS
    bits: tuple[int, int] = (0, 63)
    n_flips: int = 3

    def __post_init__(self) -> None:
        _validate_registers(self.registers)
        _validate_bits(self.bits)
        if not 2 <= self.n_flips <= len(self.registers):
            raise CampaignConfigError(
                f"n_flips must be in [2, {len(self.registers)}] for "
                f"{len(self.registers)} registers, got {self.n_flips}"
            )

    def sample(self, rng: np.random.Generator, run_length: int) -> BurstFaultSpec:
        """Draw one burst fault for a ``run_length``-instruction execution."""
        if run_length <= 0:
            raise CampaignConfigError("run_length must be positive")
        lo, hi = self.bits
        picks = rng.choice(len(self.registers), size=self.n_flips, replace=False)
        flips = tuple(
            (self.registers[int(i)], int(rng.integers(lo, hi + 1)))
            for i in picks
        )
        return BurstFaultSpec(
            flips=flips,
            dynamic_index=int(rng.integers(0, run_length)),
        )


#: Subsystem names accepted by :class:`MemoryFaultModel.subsystem` — each maps
#: to the layout slots that hypervisor subsystem owns.
MEMORY_SUBSYSTEMS = ("scheduler", "event_channels", "grant_tables", "timekeeping")


def _slot_in_subsystem(slot: Slot, subsystem: str) -> bool:
    name = slot.name
    if subsystem == "scheduler":
        return name == "runqueue" or name.endswith(".mode") or name.endswith(".info")
    if subsystem == "event_channels":
        return (
            ".evtchn_" in name
            or name.endswith(".pending")
            or name == "softirq_bits"
            or name == "irq_descs"
        )
    if subsystem == "grant_tables":
        return name == "grant_table" or name.endswith(".grant_frames")
    if subsystem == "timekeeping":
        return (
            name == "timer_heap"
            or name.endswith(".wallclock")
            or name.endswith(".time")
        )
    raise CampaignConfigError(
        f"unknown subsystem {subsystem!r} (choose from {MEMORY_SUBSYSTEMS})"
    )


@dataclass(frozen=True)
class MemoryFaultModel:
    """Sampling distribution for uncorrected memory flips (extension).

    Targets the hypervisor's live structures: a uniformly-chosen word among
    all non-scratch layout slots, uniform bit.  Scratch buffers are excluded
    because flips in data about to be overwritten tell us nothing.

    ``subsystem`` narrows the target to one subsystem's slots (scheduler,
    event channels, grant tables, timekeeping) for targeted sensitivity
    studies; ``None`` samples the whole non-scratch layout.
    """

    bits: tuple[int, int] = (0, 63)
    subsystem: str | None = None

    def __post_init__(self) -> None:
        _validate_bits(self.bits)
        if self.subsystem is not None and self.subsystem not in MEMORY_SUBSYSTEMS:
            raise CampaignConfigError(
                f"unknown subsystem {self.subsystem!r} "
                f"(choose from {MEMORY_SUBSYSTEMS})"
            )

    def sample(self, rng: np.random.Generator, layout: HypervisorLayout) -> MemoryFaultSpec:
        """Draw one memory fault against ``layout``."""
        slots = [
            s for s in layout.all_slots.values()
            if s.kind is not ValueKind.SCRATCH
            and (self.subsystem is None or _slot_in_subsystem(s, self.subsystem))
        ]
        if not slots:
            target = f"subsystem {self.subsystem!r}" if self.subsystem else "layout"
            raise CampaignConfigError(f"{target} has no injectable slots")
        # Weight slots by size so every word is equally likely.
        words = [s.words for s in slots]
        total = sum(words)
        if total <= 0:
            target = f"subsystem {self.subsystem!r}" if self.subsystem else "layout"
            raise CampaignConfigError(
                f"{target} has no injectable words "
                f"({len(slots)} slots totalling zero words)"
            )
        pick = int(rng.integers(0, total))
        for slot, n in zip(slots, words):
            if pick < n:
                lo, hi = self.bits
                return MemoryFaultSpec(
                    address=slot.word_address(pick),
                    bit=int(rng.integers(lo, hi + 1)),
                )
            pick -= n
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class FaultModelComponent:
    """One weighted member of a :class:`CompositeFaultModel`."""

    label: str
    probability: float
    model: "FaultModelSpec"

    def __post_init__(self) -> None:
        if not self.label:
            raise CampaignConfigError("fault-model component needs a label")
        if not 0.0 < self.probability <= 1.0:
            raise CampaignConfigError(
                f"component {self.label!r}: probability must be in (0, 1], "
                f"got {self.probability}"
            )
        if isinstance(self.model, CompositeFaultModel):
            raise CampaignConfigError(
                f"component {self.label!r}: composites cannot nest"
            )


@dataclass(frozen=True)
class CompositeFaultModel:
    """A probability-weighted mixture of fault models.

    Each sample first draws the component (one uniform variate against the
    cumulative probabilities, skipped entirely for single-component
    composites), then delegates to that component's model — so the result is
    a pure function of the RNG stream handed in, like every other model.
    """

    components: tuple[FaultModelComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise CampaignConfigError("composite needs at least one component")
        labels = [c.label for c in self.components]
        if len(set(labels)) != len(labels):
            raise CampaignConfigError(f"duplicate component labels in {labels}")
        total = sum(c.probability for c in self.components)
        if abs(total - 1.0) > 1e-6:
            raise CampaignConfigError(
                f"component probabilities must sum to 1.0, got {total:.6f}"
            )

    def sample(
        self,
        rng: np.random.Generator,
        run_length: int,
        layout: HypervisorLayout,
    ):
        """Draw one fault: pick a component, then sample its model."""
        if len(self.components) == 1:
            return sample_fault(self.components[0].model, rng, run_length, layout)
        u = float(rng.random())
        acc = 0.0
        chosen = self.components[-1]
        for component in self.components:
            acc += component.probability
            if u < acc:
                chosen = component
                break
        return sample_fault(chosen.model, rng, run_length, layout)


#: Any single (non-composite) fault model, or the composite over them.
FaultModelSpec = (
    FaultModel
    | MultiBitFaultModel
    | BurstFaultModel
    | MemoryFaultModel
    | CompositeFaultModel
)


def sample_fault(
    model: FaultModelSpec,
    rng: np.random.Generator,
    run_length: int,
    layout: HypervisorLayout,
):
    """Sample from any model kind (memory models need the layout, register
    models the run length; composites need both)."""
    if isinstance(model, MemoryFaultModel):
        return model.sample(rng, layout)
    if isinstance(model, CompositeFaultModel):
        return model.sample(rng, run_length, layout)
    return model.sample(rng, run_length)


def model_digest_payload(model: FaultModelSpec) -> dict:
    """JSON-able identity of a fault model for the planner's config digest.

    Two models digest equal iff they sample identically from identical
    streams, so scenario digests inherit the digest contract.
    """
    if isinstance(model, FaultModel):
        return {
            "kind": "register",
            "registers": list(model.registers),
            "bits": list(model.bits),
        }
    if isinstance(model, MultiBitFaultModel):
        return {
            "kind": "multibit",
            "registers": list(model.registers),
            "bits": list(model.bits),
            "n_bits": model.n_bits,
        }
    if isinstance(model, BurstFaultModel):
        return {
            "kind": "burst",
            "registers": list(model.registers),
            "bits": list(model.bits),
            "n_flips": model.n_flips,
        }
    if isinstance(model, MemoryFaultModel):
        return {
            "kind": "memory",
            "bits": list(model.bits),
            "subsystem": model.subsystem,
        }
    if isinstance(model, CompositeFaultModel):
        return {
            "kind": "composite",
            "components": [
                {
                    "label": c.label,
                    "probability": c.probability,
                    "model": model_digest_payload(c.model),
                }
                for c in model.components
            ],
        }
    raise CampaignConfigError(f"unknown fault model type {type(model).__name__}")
