"""The fault model: single bit flips in architectural register state.

Section V.B: "We currently use the single bit-flip fault model in the
architectural register state, including general purpose registers, instruction
and stack pointers and flags.  We adopt the common practice that assumes one
single-bit flip soft error may occur at a time."

Injection points are uniform over the dynamic instructions of the target
hypervisor execution; registers and bit positions are uniform over the
injectable state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignConfigError
from repro.faults.outcomes import FaultSpec, MemoryFaultSpec
from repro.hypervisor.layout import HypervisorLayout, ValueKind
from repro.machine.registers import INJECTABLE_REGISTERS

__all__ = ["FaultModel", "MemoryFaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Sampling distribution for fault specs.

    ``registers`` defaults to the full architectural set; restrict it to
    study per-register sensitivities (e.g. RIP-only or flags-only ablations).
    """

    registers: tuple[str, ...] = INJECTABLE_REGISTERS
    bits: tuple[int, int] = (0, 63)

    def __post_init__(self) -> None:
        if not self.registers:
            raise CampaignConfigError("fault model needs at least one register")
        unknown = set(self.registers) - set(INJECTABLE_REGISTERS)
        if unknown:
            raise CampaignConfigError(f"not injectable: {sorted(unknown)}")
        lo, hi = self.bits
        if not (0 <= lo <= hi <= 63):
            raise CampaignConfigError(f"bit range {self.bits} outside [0, 63]")

    def sample(self, rng: np.random.Generator, run_length: int) -> FaultSpec:
        """Draw one fault for an execution of ``run_length`` dynamic instructions."""
        if run_length <= 0:
            raise CampaignConfigError("run_length must be positive")
        lo, hi = self.bits
        return FaultSpec(
            register=self.registers[int(rng.integers(0, len(self.registers)))],
            bit=int(rng.integers(lo, hi + 1)),
            dynamic_index=int(rng.integers(0, run_length)),
        )


@dataclass(frozen=True)
class MemoryFaultModel:
    """Sampling distribution for uncorrected memory flips (extension).

    Targets the hypervisor's live structures: a uniformly-chosen word among
    all non-scratch layout slots, uniform bit.  Scratch buffers are excluded
    because flips in data about to be overwritten tell us nothing.
    """

    bits: tuple[int, int] = (0, 63)

    def sample(self, rng: np.random.Generator, layout: HypervisorLayout) -> MemoryFaultSpec:
        """Draw one memory fault against ``layout``."""
        slots = [
            s for s in layout.all_slots.values() if s.kind is not ValueKind.SCRATCH
        ]
        if not slots:
            raise CampaignConfigError("layout has no injectable slots")
        # Weight slots by size so every word is equally likely.
        words = [s.words for s in slots]
        total = sum(words)
        pick = int(rng.integers(0, total))
        for slot, n in zip(slots, words):
            if pick < n:
                lo, hi = self.bits
                return MemoryFaultSpec(
                    address=slot.word_address(pick),
                    bit=int(rng.integers(lo, hi + 1)),
                )
            pick -= n
        raise AssertionError("unreachable")  # pragma: no cover
