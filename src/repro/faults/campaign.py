"""Fault-injection campaign orchestration.

A campaign reproduces the paper's Section V methodology: for each benchmark,
activations are drawn from the workload's exit-reason mix, and one single-bit
register flip is injected per run at a random dynamic instruction of the
hypervisor execution.  The paper runs 30,000 injections of which ~17,700
manifest; campaign size here is a parameter so tests stay fast and benchmarks
can scale up.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.errors import CampaignConfigError
from repro.faults.injector import TransitionDetector, run_trial
from repro.faults.model import FaultModel
from repro.faults.outcomes import TrialRecord
from repro.faults.propagation import capture_golden
from repro.hypervisor.xen import XenHypervisor
from repro.workloads.base import VirtMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.suite import BENCHMARK_NAMES, get_profile

__all__ = ["CampaignConfig", "CampaignResult", "FaultInjectionCampaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one injection campaign."""

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    mode: VirtMode = VirtMode.PV
    n_injections: int = 3_000
    seed: int = 0
    n_domains: int = 3
    #: Activations executed once per benchmark to age the machine state
    #: before trials begin ("when applications are running", Section V.B).
    warmup_activations: int = 5
    #: Injections sharing one golden run (amortizes the fault-free twin).
    injections_per_golden: int = 4
    #: Activations executed *after* the injected one, continuing the
    #: simulation so latent corruption can be detected when consumed
    #: (Section V.B: "After a fault is injected, we allow the simulation to
    #: continue to observe if it can be detected").
    followup_activations: int = 8
    fault_model: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise CampaignConfigError("campaign needs at least one benchmark")
        if self.n_injections < 1:
            raise CampaignConfigError("n_injections must be positive")
        if self.injections_per_golden < 1:
            raise CampaignConfigError("injections_per_golden must be positive")
        if self.followup_activations < 0:
            raise CampaignConfigError("followup_activations must be non-negative")


@dataclass(frozen=True)
class CampaignResult:
    """All trial records of a finished campaign."""

    config: CampaignConfig
    records: tuple[TrialRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    @property
    def manifested(self) -> tuple[TrialRecord, ...]:
        """Trials whose fault caused a failure or data corruption — the
        denominator of every coverage number in the paper."""
        return tuple(r for r in self.records if r.manifested)

    @property
    def activated(self) -> tuple[TrialRecord, ...]:
        return tuple(r for r in self.records if r.activated)

    def for_benchmark(self, name: str) -> tuple[TrialRecord, ...]:
        return tuple(r for r in self.records if r.benchmark == name)


class FaultInjectionCampaign:
    """Runs golden/faulty trial pairs across the benchmark suite."""

    def __init__(
        self,
        config: CampaignConfig,
        *,
        detector: TransitionDetector | None = None,
        hypervisor: XenHypervisor | None = None,
    ) -> None:
        self.config = config
        self.detector = detector
        self.hv = hypervisor or XenHypervisor(
            n_domains=config.n_domains, seed=config.seed
        )

    def run(self, *, progress: Callable[[int, int], None] | None = None) -> CampaignResult:
        """Execute the campaign; deterministic in the config seed."""
        cfg = self.config
        per_benchmark = max(1, cfg.n_injections // len(cfg.benchmarks))
        records: list[TrialRecord] = []
        total = per_benchmark * len(cfg.benchmarks)
        done = 0
        for benchmark in cfg.benchmarks:
            generator = WorkloadGenerator(
                get_profile(benchmark), cfg.mode,
                seed=rng_mod.derive_seed(cfg.seed, "campaign", benchmark),
                n_domains=cfg.n_domains,
            )
            fault_rng = rng_mod.stream(cfg.seed, "faults", benchmark, cfg.mode.value)
            # Age the platform state with a short activation burst.
            self.hv.reset()
            for act in generator.activations(cfg.warmup_activations, stream="warmup"):
                self.hv.execute(act)
            aged_state = self.hv.checkpoint()
            n_goldens = -(-per_benchmark // cfg.injections_per_golden)
            stride = 1 + cfg.followup_activations
            stream = generator.activations(n_goldens * stride)
            remaining = per_benchmark
            for g in range(n_goldens):
                if remaining <= 0:
                    break
                activation = stream[g * stride]
                followups = tuple(stream[g * stride + 1 : (g + 1) * stride])
                self.hv.restore(aged_state)
                golden = capture_golden(self.hv, activation, followups)
                batch = min(cfg.injections_per_golden, remaining)
                for _ in range(batch):
                    fault = cfg.fault_model.sample(
                        fault_rng, golden.result.instructions
                    )
                    records.append(
                        run_trial(
                            self.hv,
                            activation,
                            fault,
                            detector=self.detector,
                            golden=golden,
                            benchmark=benchmark,
                            followups=followups,
                        )
                    )
                    done += 1
                    if progress is not None and done % 250 == 0:
                        progress(done, total)
                remaining -= batch
        return CampaignResult(config=cfg, records=tuple(records))
