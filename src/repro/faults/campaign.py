"""Fault-injection campaign orchestration.

A campaign reproduces the paper's Section V methodology: for each benchmark,
activations are drawn from the workload's exit-reason mix, and one single-bit
register flip is injected per run at a random dynamic instruction of the
hypervisor execution.  The paper runs 30,000 injections of which ~17,700
manifest; campaign size here is a parameter so tests stay fast and benchmarks
can scale up.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import rng as rng_mod
from repro.errors import CampaignConfigError
from repro.faults.injector import (
    PLAN_UNSET,
    TransitionDetector,
    run_spec_trial,
    run_twin_batch,
    trace_plan,
)
from repro.faults.model import FaultModel
from repro.faults.outcomes import TrialRecord
from repro.faults.propagation import capture_golden
from repro.hypervisor.xen import XenHypervisor
from repro.workloads.base import VirtMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.suite import BENCHMARK_NAMES, get_profile

if TYPE_CHECKING:  # import cycle: repro.scenarios.spec imports repro.faults
    from repro.scenarios.spec import Scenario

__all__ = [
    "BenchmarkGeometry",
    "CampaignConfig",
    "CampaignResult",
    "FaultInjectionCampaign",
    "benchmark_geometry",
    "run_benchmark_groups",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one injection campaign."""

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    mode: VirtMode = VirtMode.PV
    n_injections: int = 3_000
    seed: int = 0
    n_domains: int = 3
    #: Activations executed once per benchmark to age the machine state
    #: before trials begin ("when applications are running", Section V.B).
    warmup_activations: int = 5
    #: Injections sharing one golden run (amortizes the fault-free twin).
    injections_per_golden: int = 4
    #: Activations executed *after* the injected one, continuing the
    #: simulation so latent corruption can be detected when consumed
    #: (Section V.B: "After a fault is injected, we allow the simulation to
    #: continue to observe if it can be detected").
    followup_activations: int = 8
    fault_model: FaultModel = field(default_factory=FaultModel)
    #: Record full per-instruction address traces.  The campaign's detection
    #: science needs only the light tracer (count + path hash); the full
    #: trace exists for debugging/analysis and costs throughput.  Excluded
    #: from the engine's config digest: it cannot change trial records.
    trace: bool = False
    #: Dynamic-instruction spacing of the golden run's mid-run checkpoint
    #: ladder; faulty runs fast-forward to the rung at-or-before their
    #: injection index.  0 disables the ladder (every trial replays the whole
    #: activation).  Excluded from the config digest: records are invariant.
    ladder_interval: int = 32
    #: Execute through the basic-block translation cache (the interpreter
    #: remains the differential oracle; ``--no-translate`` forces it).
    #: Excluded from the config digest: records are invariant under it.
    translate: bool = True
    #: Settle each golden group's faulty twins as a lock-step batch (dead
    #: twins synthesized, diverging twins peeled at their read point; see
    #: repro.machine.lockstep).  ``--no-twin-batch`` forces the per-trial
    #: path.  Excluded from the config digest: records are invariant.
    twin_batch: bool = True
    #: Recovery policy name (``repro.xentry.recovery_policy.POLICIES``):
    #: every *detected* trial runs the policy's escalation ladder and its
    #: record carries a :class:`~repro.faults.outcomes.RecoveryRecord`.
    #: None (the default) keeps the paper's detection-only campaign.
    #: *Included* in the config digest when set — recovery changes records.
    recover: str | None = None
    #: Probability that a second soft error strikes *during* a recovery
    #: attempt (drawn from a dedicated per-(trial, attempt) stream, so
    #: campaigns stay bit-reproducible).  Only meaningful with ``recover``.
    recovery_hazard: float = 0.0
    #: Declarative scenario (:mod:`repro.scenarios`): a composite fault
    #: mixture plus optional per-benchmark workload overrides.  When set,
    #: each trial's fault is drawn from the scenario's per-trial named
    #: stream instead of ``fault_model``'s per-group stream.  *Included*
    #: in the config digest when set — it changes records.  Degenerate
    #: single-bit scenarios never reach here: ``Scenario.apply`` normalizes
    #: them onto ``fault_model`` so they take the legacy path byte-for-byte.
    scenario: "Scenario | None" = None
    #: Root directory of the content-addressed golden artifact store
    #: (:mod:`repro.artifacts`).  Golden groups found there are loaded
    #: instead of captured live, and live captures are published back for
    #: the next run.  Excluded from the config digest: records are
    #: byte-identical with the cache cold, warm, shared, or disabled.
    artifacts: str | None = None
    #: Master switch for the golden artifact cache (``--no-golden-cache``
    #: forces live capture even with ``artifacts`` set).  Excluded from the
    #: config digest for the same reason as ``artifacts``.
    golden_cache: bool = True

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise CampaignConfigError("campaign needs at least one benchmark")
        if self.n_injections < 1:
            raise CampaignConfigError("n_injections must be positive")
        if self.injections_per_golden < 1:
            raise CampaignConfigError("injections_per_golden must be positive")
        if self.followup_activations < 0:
            raise CampaignConfigError("followup_activations must be non-negative")
        if self.ladder_interval < 0:
            raise CampaignConfigError("ladder_interval must be non-negative")
        if not 0.0 <= self.recovery_hazard < 1.0:
            raise CampaignConfigError("recovery_hazard must be in [0, 1)")
        if self.recover is not None:
            # Validate the name eagerly (lazy import: repro.xentry pulls in
            # the training stack, which imports this module).
            from repro.xentry.recovery_policy import policy_from_name

            policy_from_name(self.recover)


@dataclass(frozen=True)
class CampaignResult:
    """All trial records of a finished campaign."""

    config: CampaignConfig
    records: tuple[TrialRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    @property
    def degraded(self) -> bool:
        """True when shards were quarantined and ``records`` is incomplete.

        Always False here; the engine's ``DegradedCampaignResult`` overrides
        it, so callers can branch on ``result.degraded`` uniformly.
        """
        return False

    @property
    def manifested(self) -> tuple[TrialRecord, ...]:
        """Trials whose fault caused a failure or data corruption — the
        denominator of every coverage number in the paper."""
        return tuple(r for r in self.records if r.manifested)

    @property
    def activated(self) -> tuple[TrialRecord, ...]:
        return tuple(r for r in self.records if r.activated)

    def for_benchmark(self, name: str) -> tuple[TrialRecord, ...]:
        return tuple(r for r in self.records if r.benchmark == name)


@dataclass(frozen=True)
class BenchmarkGeometry:
    """Trial-loop shape shared by serial runs and sharded engine slices.

    Every number a shard planner or a worker needs to agree with the serial
    trial loop lives here; both sides derive it from the config alone so the
    group boundaries (and hence the fault streams) always line up.
    """

    #: Trials executed for each benchmark of the campaign.
    per_benchmark: int
    #: Golden runs per benchmark (each amortized over ``injections_per_golden``).
    n_goldens: int
    #: Activations consumed per golden group (1 injected + follow-ups).
    stride: int
    #: Trials sharing one golden run (the last group of a benchmark may be short).
    injections_per_golden: int

    def group_trials(self, group: int) -> int:
        """Number of trials in golden group ``group`` (the last may be short)."""
        if not 0 <= group < self.n_goldens:
            raise CampaignConfigError(f"group {group} outside [0, {self.n_goldens})")
        return min(
            self.injections_per_golden,
            self.per_benchmark - group * self.injections_per_golden,
        )


def benchmark_geometry(config: CampaignConfig) -> BenchmarkGeometry:
    """Compute the per-benchmark trial-loop geometry for ``config``."""
    per_benchmark = max(1, config.n_injections // len(config.benchmarks))
    n_goldens = -(-per_benchmark // config.injections_per_golden)
    return BenchmarkGeometry(
        per_benchmark=per_benchmark,
        n_goldens=n_goldens,
        stride=1 + config.followup_activations,
        injections_per_golden=config.injections_per_golden,
    )


def run_benchmark_groups(
    config: CampaignConfig,
    benchmark: str,
    group_start: int,
    group_stop: int,
    *,
    hv: XenHypervisor | None = None,
    detector: TransitionDetector | None = None,
    on_record: Callable[[TrialRecord], None] | None = None,
    golden_source=None,
) -> list[TrialRecord]:
    """Execute golden groups ``[group_start, group_stop)`` of one benchmark.

    This is the engine-drivable unit of work: the serial campaign runs every
    group of every benchmark through it, and a sharded engine runs disjoint
    group ranges in separate processes.  Each fault stream is derived from
    ``(seed, benchmark, mode, group)``, so any contiguous slice reproduces
    exactly the trials the serial run would produce for those groups —
    merged shards are bit-identical to a serial run of the same root seed.

    ``golden_source`` is the artifact cache's capture-or-load policy
    (:class:`repro.artifacts.runtime.GoldenSource`); by default it is derived
    from the config (engine workers pass one carrying their shard's
    shared-memory segment).  A cached group skips golden capture — and the
    full-trace TwinPlan replay — entirely; the warmup burst always runs live
    because it ages the machine the *trials* then perturb.  Records are
    byte-identical either way: golden products are a pure function of the
    digest the store keys them by, and every trial restores captured state
    before executing.
    """
    # Lazy import: repro.artifacts.store imports this module for the config
    # and geometry types.
    from repro.artifacts.codec import PLAN_ABSENT, PLAN_NONE, PLAN_PRESENT
    from repro.artifacts.runtime import STATS as artifact_stats
    from repro.artifacts.runtime import golden_source_for

    geo = benchmark_geometry(config)
    if not 0 <= group_start <= group_stop <= geo.n_goldens:
        raise CampaignConfigError(
            f"group range [{group_start}, {group_stop}) outside "
            f"[0, {geo.n_goldens}] for benchmark {benchmark!r}"
        )
    if golden_source is None:
        golden_source = golden_source_for(config)
    if hv is None:
        hv = XenHypervisor(
            n_domains=config.n_domains, seed=config.seed,
            light_trace=not config.trace, translate=config.translate,
        )
    profile = get_profile(benchmark)
    if config.scenario is not None:
        profile = config.scenario.profile_for(profile)
    generator = WorkloadGenerator(
        profile, config.mode,
        seed=rng_mod.derive_seed(config.seed, "campaign", benchmark),
        n_domains=config.n_domains,
    )
    # Age the platform state with a short activation burst.
    hv.reset()
    for act in generator.activations(config.warmup_activations, stream="warmup"):
        hv.execute(act)
    aged_state = hv.checkpoint()
    executor = None
    recover_hook = None
    if config.recover is not None:
        # Lazy import: repro.xentry pulls in the training stack, which
        # imports this module.
        from repro.xentry.recovery_policy import RecoveryExecutor, policy_from_name

        executor = RecoveryExecutor(
            hv,
            policy_from_name(config.recover),
            seed=config.seed,
            benchmark=benchmark,
            mode=config.mode.value,
            fault_model=config.fault_model,
            hazard_rate=config.recovery_hazard,
        )
        # The per-VM-exit critical copy: the aged pre-run state is live
        # right now and identical for every group of this benchmark.
        executor.arm()

        def recover_hook(record: TrialRecord, index: int) -> TrialRecord:
            if not record.detected:
                return record
            return dataclasses.replace(
                record, recovery=executor.recover(record, index)
            )

    # The activation stream is one bulk draw; regenerating it in full keeps
    # every slice's view of group g identical to the serial run's.
    stream = generator.activations(geo.n_goldens * geo.stride)
    records: list[TrialRecord] = []
    for g in range(group_start, group_stop):
        batch = geo.group_trials(g)
        if batch <= 0:
            break
        activation = stream[g * geo.stride]
        followups = tuple(stream[g * geo.stride + 1 : (g + 1) * geo.stride])
        plan = PLAN_UNSET
        payload = (
            golden_source.acquire(benchmark, g, registry=hv.registry)
            if golden_source is not None
            else None
        )
        if payload is not None:
            # Served from the artifact cache: no golden execution, no trace
            # replay.  ``plan`` may legitimately be None (the live capture's
            # replay refused to line up) — the twins then peel, exactly as
            # they would have live.
            golden = payload.golden
            if config.twin_batch:
                plan = payload.plan_state[1]
        else:
            hv.restore(aged_state)
            started = time.perf_counter()
            golden = capture_golden(
                hv, activation, followups, ladder_interval=config.ladder_interval
            )
            if golden_source is not None and config.twin_batch:
                # Pull the TwinPlan lowering forward (run_twin_batch would
                # compute the identical plan from the identical state) so it
                # can be published alongside the golden products.
                plan = trace_plan(hv, activation, golden)
            artifact_stats["golden_capture_seconds"] += time.perf_counter() - started
            if golden_source is not None:
                if not config.twin_batch:
                    plan_state = (PLAN_ABSENT, None)
                elif plan is not None:
                    plan_state = (PLAN_PRESENT, plan)
                else:
                    plan_state = (PLAN_NONE, None)
                golden_source.offer(benchmark, g, golden, plan_state)
        if executor is not None:
            executor.begin_group(g, activation, golden)
        if config.scenario is None:
            fault_rng = rng_mod.stream(
                config.seed, "faults", benchmark, config.mode.value, g
            )
            # The whole group's faults are drawn up front either way, so the
            # RNG stream (3 draws per fault) is identical in both paths.
            faults = [
                config.fault_model.sample(fault_rng, golden.result.instructions)
                for _ in range(batch)
            ]
        else:
            # Scenario faults come from per-trial streams — pure in
            # (seed, benchmark, mode, group, trial) — so any slice, shard
            # or single-trial re-draw matches the serial run exactly.
            faults = [
                config.scenario.sample_trial(
                    config.seed, benchmark, config.mode.value, g, t,
                    run_length=golden.result.instructions,
                    layout=hv.layout,
                )
                for t in range(batch)
            ]
        if config.twin_batch:
            group_records = run_twin_batch(
                hv,
                activation,
                faults,
                detector=detector,
                golden=golden,
                benchmark=benchmark,
                followups=followups,
                on_record=on_record,
                recover=recover_hook,
                plan=plan,
            )
            records.extend(group_records)
        else:
            for index, fault in enumerate(faults):
                record = run_spec_trial(
                    hv,
                    activation,
                    fault,
                    detector=detector,
                    golden=golden,
                    benchmark=benchmark,
                    followups=followups,
                )
                if recover_hook is not None:
                    record = recover_hook(record, index)
                records.append(record)
                if on_record is not None:
                    on_record(record)
    # Fold the execution-mix counters into hv.ff_stats so callers (engine
    # shards, benchmarks) see translation telemetry without extra plumbing.
    hv.translation_stats()
    # Same for the lock-step batch ledger and the runaway-loop prover's
    # counters: one flat dict carries the whole execution-strategy mix.
    hv.ff_stats.update(hv.lockstep_stats)
    hv.ff_stats["proved_hangs"] = sum(c.proved_hangs for c in hv.cores)
    hv.ff_stats["proved_hang_instructions"] = sum(
        c.proved_hang_instructions for c in hv.cores
    )
    if executor is not None:
        # Recovery counters travel the same flat ledger the engine's shard
        # telemetry already aggregates.
        for key, value in executor.stats.items():
            flat = f"recovery_{key.replace(':', '_')}"
            hv.ff_stats[flat] = hv.ff_stats.get(flat, 0) + value
    return records


class FaultInjectionCampaign:
    """Runs golden/faulty trial pairs across the benchmark suite."""

    def __init__(
        self,
        config: CampaignConfig,
        *,
        detector: TransitionDetector | None = None,
        hypervisor: XenHypervisor | None = None,
    ) -> None:
        self.config = config
        self.detector = detector
        self.hv = hypervisor or XenHypervisor(
            n_domains=config.n_domains, seed=config.seed,
            light_trace=not config.trace, translate=config.translate,
        )

    def run(self, *, progress: Callable[[int, int], None] | None = None) -> CampaignResult:
        """Execute the campaign; deterministic in the config seed."""
        cfg = self.config
        geo = benchmark_geometry(cfg)
        records: list[TrialRecord] = []
        total = geo.per_benchmark * len(cfg.benchmarks)
        done = 0

        def tick(_record: TrialRecord) -> None:
            nonlocal done
            done += 1
            if progress is not None and done % 250 == 0:
                progress(done, total)

        for benchmark in cfg.benchmarks:
            records.extend(
                run_benchmark_groups(
                    cfg, benchmark, 0, geo.n_goldens,
                    hv=self.hv, detector=self.detector, on_record=tick,
                )
            )
        return CampaignResult(config=cfg, records=tuple(records))
