"""Golden-run comparison and consequence classification.

For each injection trial, the same activation is executed twice from the same
machine state: once fault-free (the *golden* run) and once with the scheduled
bit flip.  This module captures the golden state and classifies the faulty
run's divergence into the paper's consequence taxonomy:

* divergence in a guest's **app-data** outputs → application-level failure —
  crash when the corruption perturbs address-forming high bits, silent data
  corruption otherwise (Section V.E's APP crash / APP SDC);
* divergence in **time** slots → APP SDC of the Table II "time values" kind;
* divergence in a guest's **VCPU/control state** → one-VM failure;
* divergence in **Dom0-owned** or **hypervisor-global control** state →
  all-VM failure (the control domain manages every VM);
* no divergence at all → the fault was masked (benign).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.outcomes import FailureClass, UndetectedKind, most_severe
from repro.hypervisor.layout import GLOBAL_OWNER, HypervisorLayout, Slot, ValueKind
from repro.hypervisor.xen import ActivationResult, MachineCheckpoint, XenHypervisor
from repro.machine.memory import MemoryCheckpoint

__all__ = ["GoldenRun", "Divergence", "capture_golden", "classify_divergence"]

#: Corruption of bits at or above this position in an app-data word is treated
#: as address-forming (the guest dereferences/indexes with it) -> crash.
_POINTERISH_BIT = 32


@dataclass(frozen=True)
class GoldenRun:
    """Everything the classifier needs from the fault-free execution.

    ``followups`` are the fault-free results of the activations that *follow*
    the target one: the paper "allow[s] the simulation to continue to observe
    if [the fault] can be detected", so corrupted state left behind by the
    injected activation is detected when later hypervisor executions consume
    it.  The golden continuation is the reference those later executions are
    compared against.

    A ``GoldenRun`` is pure reference data — trials read it, nothing mutates
    it — which is what makes it cacheable: :mod:`repro.artifacts` persists
    whole golden groups content-addressed and rebuilds them bit-equal, with
    ``heap_image`` and page payloads rehydrated as memoryviews over the
    artifact (or shared-memory) buffer.  Every consumer must therefore treat
    ``bytes`` fields as read-only buffers, never assume the concrete type.
    """

    result: ActivationResult
    outputs: dict[int, int]          # guest-visible output words
    heap_image: bytes                # full heap contents after the run
    checkpoint: MemoryCheckpoint     # machine state *before* the run
    followups: tuple[ActivationResult, ...] = ()
    #: Mid-run machine checkpoints every ``ladder_interval`` instructions
    #: (ascending by index, rung 0 at instruction 0).  Empty when the golden
    #: run was captured without a ladder.
    ladder: tuple[MachineCheckpoint, ...] = ()


def capture_golden(
    hv: XenHypervisor, activation, followups=(), *, ladder_interval: int = 0
) -> GoldenRun:
    """Run ``activation`` (and its follow-up stream) fault-free.

    The pre-run checkpoint is taken first so the faulty twin can be replayed
    from the identical machine state.  A positive ``ladder_interval``
    additionally captures a mid-run machine checkpoint every that many
    dynamic instructions, letting :func:`~repro.faults.injector.run_trial`
    fast-forward the faulty twin to the rung at-or-before its injection
    index instead of re-executing the whole golden prefix.
    """
    checkpoint = hv.checkpoint()
    if ladder_interval > 0:
        result, ladder = hv.execute_with_ladder(activation, interval=ladder_interval)
    else:
        result = hv.execute(activation)
        ladder = ()
    heap = hv.memory.region("hypervisor_heap")
    outputs = hv.read_outputs(activation)
    heap_image = hv.memory.snapshot_region(heap)
    followup_results = tuple(hv.execute(f) for f in followups)
    return GoldenRun(
        result=result,
        outputs=outputs,
        heap_image=heap_image,
        checkpoint=checkpoint,
        followups=followup_results,
        ladder=ladder,
    )


@dataclass(frozen=True)
class Divergence:
    """How a faulty run that reached VM entry differs from its golden twin."""

    path_changed: bool
    features_changed: bool
    output_diffs: tuple[tuple[int, Slot, ValueKind, int, int], ...]
    internal_diffs: tuple[tuple[int, Slot], ...]

    @property
    def any(self) -> bool:
        return self.path_changed or bool(self.output_diffs) or bool(self.internal_diffs)

    @property
    def silent_data_only(self) -> bool:
        """Data changed but the dynamic footprint did not (the hard case)."""
        return self.any and not self.path_changed and not self.features_changed


def _diff_outputs(
    hv: XenHypervisor, activation, golden: GoldenRun
) -> tuple[tuple[int, Slot, ValueKind, int, int], ...]:
    diffs = []
    for addr, slot, _ref in hv.output_addresses(activation):
        now = hv.memory.read_u64(addr)
        was = golden.outputs[addr]
        if now != was:
            diffs.append((addr, slot, slot.kind, was, now))
    return tuple(diffs)


def compute_divergence(
    hv: XenHypervisor,
    activation,
    golden: GoldenRun,
    faulty: ActivationResult,
) -> Divergence:
    """Compare the just-finished faulty run against its golden twin."""
    heap = hv.memory.region("hypervisor_heap")
    diff_addrs = hv.memory.diff_region(heap, golden.heap_image)
    layout: HypervisorLayout = hv.layout
    output_addr_set = {a for a, _, _ in hv.output_addresses(activation)}
    internal = tuple(
        (addr, slot)
        for addr in diff_addrs
        if addr not in output_addr_set
        for slot in (layout.slot_at(addr),)
        if slot is not None and slot.kind is not ValueKind.SCRATCH
    )
    return Divergence(
        path_changed=faulty.path_hash != golden.result.path_hash,
        features_changed=faulty.features != golden.result.features,
        output_diffs=_diff_outputs(hv, activation, golden),
        internal_diffs=internal,
    )


def classify_divergence(divergence: Divergence, activation) -> FailureClass:
    """Map a divergence onto the paper's consequence taxonomy.

    Guest-visible output corruption takes priority: the paper's campaign
    classifies by *observed* consequence (a VM or application visibly
    misbehaving), so what crossed VM entry determines the class.  Internal
    corruption only classifies when nothing guest-visible diverged — and the
    injector downgrades it to LATENT unless it perturbs a later execution.
    """
    if not divergence.any:
        return FailureClass.BENIGN
    output_classes = [
        _classify_slot(slot, kind, was ^ now, activation)
        for _addr, slot, kind, was, now in divergence.output_diffs
    ]
    if output_classes:
        return most_severe(output_classes)
    internal_classes = [
        _classify_slot(slot, slot.kind, 0, activation)
        for _addr, slot in divergence.internal_diffs
    ]
    if not internal_classes:
        # Pure control-flow change with no surviving state difference: the
        # detour touched only scratch data.  Harmless to the guest.
        return FailureClass.BENIGN
    return most_severe(internal_classes)


def _classify_slot(slot: Slot, kind: ValueKind, xor: int, activation) -> FailureClass:
    if slot.owner == GLOBAL_OWNER:
        # Hypervisor-global control state feeds every future activation.
        return FailureClass.ALL_VM_FAILURE
    if slot.owner == 0:
        # Dom0 is the control VM: "if this is a control VM ... the whole
        # system will be affected" (Section II.A).
        return FailureClass.ALL_VM_FAILURE
    if kind is ValueKind.TIME:
        return FailureClass.APP_SDC
    if kind is ValueKind.POINTER:
        return FailureClass.APP_CRASH
    if kind is ValueKind.APP_DATA:
        if xor >> _POINTERISH_BIT:
            return FailureClass.APP_CRASH
        return FailureClass.APP_SDC
    # VCPU_STATE / CONTROL owned by a guest domain.
    return FailureClass.ONE_VM_FAILURE


def undetected_kind_for(divergence: Divergence, fault_register: str) -> UndetectedKind:
    """Attribute an undetected fault to a Table II bucket."""
    if divergence.features_changed or divergence.path_changed:
        # The classifier had signal and still said "correct".
        return UndetectedKind.MIS_CLASSIFY
    kinds = {kind for _, _, kind, _, _ in divergence.output_diffs}
    kinds |= {slot.kind for _, slot in divergence.internal_diffs}
    if kinds <= {ValueKind.TIME} and kinds:
        return UndetectedKind.TIME_VALUES
    if ValueKind.POINTER in kinds or fault_register == "rsp":
        return UndetectedKind.STACK_VALUES
    if ValueKind.TIME in kinds:
        return UndetectedKind.TIME_VALUES
    return UndetectedKind.OTHER_VALUES
