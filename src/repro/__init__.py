"""repro — reproduction of Xentry: Hypervisor-Level Soft Error Detection.

See README.md for the architecture overview and DESIGN.md for the
paper-to-module inventory.  The top-level namespace re-exports the public
facade; subsystem packages (:mod:`repro.machine`, :mod:`repro.hypervisor`,
:mod:`repro.ml`, :mod:`repro.faults`, :mod:`repro.xentry`,
:mod:`repro.workloads`, :mod:`repro.analysis`, :mod:`repro.system`) hold the
full API.
"""

__version__ = "1.0.0"
