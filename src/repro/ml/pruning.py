"""Tree post-processing: reduced-error pruning and cross-validation.

WEKA's J48 — the decision-tree implementation the paper compares against its
random tree — is a *pruned* C4.5.  This module supplies the standard
reduced-error pruning pass (collapse any subtree whose replacement by its
majority leaf does not hurt accuracy on a held-out pruning set) plus a
k-fold cross-validation helper for classifier selection.

Pruning matters operationally: a smaller rule table means fewer worst-case
integer comparisons per VM entry, i.e. a cheaper deployed detector.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.errors import CampaignConfigError, NotFittedError
from repro.ml.dataset import CORRECT, Dataset, INCORRECT
from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode
from repro.ml.metrics import ConfusionMatrix, evaluate

__all__ = ["PruningReport", "reduced_error_prune", "cross_validate"]


@dataclass(frozen=True)
class PruningReport:
    """Before/after statistics of one pruning pass."""

    nodes_before: int
    nodes_after: int
    accuracy_before: float
    accuracy_after: float

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


def _subtree_errors(node: TreeNode, X: np.ndarray, y: np.ndarray) -> int:
    """Misclassifications of ``node``'s subtree on the given rows."""
    if len(y) == 0:
        return 0
    if node.is_leaf:
        return int((y != node.prediction).sum())
    mask = X[:, node.feature] <= node.threshold
    return _subtree_errors(node.left, X[mask], y[mask]) + _subtree_errors(  # type: ignore[arg-type]
        node.right, X[~mask], y[~mask]  # type: ignore[arg-type]
    )


def _leaf_errors(node: TreeNode, y: np.ndarray) -> int:
    """Misclassifications if ``node`` were collapsed to its majority leaf."""
    majority = INCORRECT if node.n_incorrect > node.n_correct else CORRECT
    return int((y != majority).sum())


def _prune(node: TreeNode, X: np.ndarray, y: np.ndarray) -> TreeNode:
    if node.is_leaf:
        return node
    mask = X[:, node.feature] <= node.threshold
    node.left = _prune(node.left, X[mask], y[mask])  # type: ignore[arg-type]
    node.right = _prune(node.right, X[~mask], y[~mask])  # type: ignore[arg-type]
    # Collapse when the leaf replacement is at least as good on the pruning
    # set (ties collapse too: prefer the smaller tree).
    if _leaf_errors(node, y) <= _subtree_errors(node, X, y):
        return TreeNode(
            prediction=INCORRECT if node.n_incorrect > node.n_correct else CORRECT,
            n_correct=node.n_correct,
            n_incorrect=node.n_incorrect,
            depth=node.depth,
        )
    return node


def reduced_error_prune(
    classifier: DecisionTreeClassifier, pruning_set: Dataset
) -> tuple[DecisionTreeClassifier, PruningReport]:
    """Return a pruned copy of ``classifier`` plus the before/after report.

    The input classifier is left untouched.  Subtrees that don't earn their
    keep on ``pruning_set`` are collapsed bottom-up.
    """
    if classifier.root is None:
        raise NotFittedError("prune requires a fitted classifier")
    if len(pruning_set) == 0:
        raise CampaignConfigError("pruning set must be non-empty")
    pruned = copy.deepcopy(classifier)
    before_nodes = pruned.n_nodes
    before_acc = evaluate(
        pruning_set.y, pruned.predict(pruning_set.X)
    ).accuracy
    pruned.root = _prune(pruned.root, pruning_set.X, pruning_set.y)  # type: ignore[arg-type]
    after_acc = evaluate(pruning_set.y, pruned.predict(pruning_set.X)).accuracy
    return pruned, PruningReport(
        nodes_before=before_nodes,
        nodes_after=pruned.n_nodes,
        accuracy_before=before_acc,
        accuracy_after=after_acc,
    )


def cross_validate(
    make_classifier,
    dataset: Dataset,
    *,
    k: int = 5,
    seed: int = 0,
) -> list[ConfusionMatrix]:
    """K-fold cross-validation; returns one confusion matrix per fold.

    ``make_classifier`` is a zero-argument factory (fresh model per fold).
    """
    if k < 2:
        raise CampaignConfigError("k must be at least 2")
    if len(dataset) < k:
        raise CampaignConfigError(f"need at least {k} samples for {k} folds")
    order = np.random.default_rng(seed).permutation(len(dataset))
    folds = np.array_split(order, k)
    matrices: list[ConfusionMatrix] = []
    for i in range(k):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(k) if j != i])
        model = make_classifier()
        model.fit(dataset.subset(train_idx))
        test = dataset.subset(test_idx)
        matrices.append(evaluate(test.y, model.predict(test.X)))
    return matrices
