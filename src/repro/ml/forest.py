"""Random forest: a bagged ensemble of the paper's random trees.

An extension beyond the paper (which deploys a single random tree for cost
reasons): majority voting over ``n_trees`` random trees, each trained on a
bootstrap resample.  Deployment cost grows linearly with the ensemble size —
the per-entry comparison count is the sum over member trees — which is why
the paper's single-tree choice is the right operating point for a hypervisor;
the forest quantifies what accuracy that choice leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CampaignConfigError, NotFittedError
from repro.ml.dataset import Dataset, INCORRECT
from repro.ml.export import CompiledRules, compile_tree
from repro.ml.random_tree import RandomTreeClassifier

__all__ = ["RandomForestClassifier"]


@dataclass
class RandomForestClassifier:
    """Majority-vote ensemble of :class:`RandomTreeClassifier`."""

    n_trees: int = 15
    max_depth: int = 32
    min_samples_leaf: int = 1
    seed: int = 0
    trees: list[RandomTreeClassifier] = field(default_factory=list, repr=False)
    _rules: list[CompiledRules] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise CampaignConfigError("forest needs at least one tree")

    def fit(self, dataset: Dataset) -> "RandomForestClassifier":
        """Fit ``n_trees`` trees on bootstrap resamples of ``dataset``."""
        rng = np.random.default_rng(self.seed)
        self.trees = []
        self._rules = []
        n = len(dataset)
        if n == 0:
            raise CampaignConfigError("cannot fit a forest on an empty dataset")
        for i in range(self.n_trees):
            sample = dataset.subset(rng.integers(0, n, size=n))
            tree = RandomTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(sample)
            self.trees.append(tree)
            self._rules.append(compile_tree(tree))
        return self

    def _require_fitted(self) -> None:
        if not self._rules:
            raise NotFittedError("RandomForestClassifier used before fit()")

    def predict_one(self, features) -> int:
        """Majority vote over the member trees.

        Ties — possible only with an even ``n_trees`` — break toward
        CORRECT: a strict majority (``2 * votes > n_trees``) is required to
        flag a transition, so a split jury never triggers recovery.  That is
        the conservative choice for a detector whose false positives cost a
        needless VM rollback (the paper's 0.7%-FP operating point), and it
        is pinned by test so the batch path cannot drift from it.
        """
        self._require_fitted()
        votes = sum(rules.classify(features)[0] for rules in self._rules)
        return INCORRECT if 2 * votes > len(self._rules) else 1 - INCORRECT

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Per-row majority vote — the differential oracle for :meth:`predict_batch`."""
        self._require_fitted()
        X = np.asarray(X)
        return np.fromiter(
            (self.predict_one(row) for row in X), dtype=np.int8, count=len(X)
        )

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Vectorized majority vote: member trees classify level-synchronously
        (:meth:`CompiledRules.predict_batch`), then the vote is one matrix
        reduction — stack the ``(n_trees, n_rows)`` label matrix and sum over
        the tree axis (INCORRECT is 1, so the sum *is* the vote count).
        Bit-identical to :meth:`predict`, tie-break included."""
        self._require_fitted()
        X = np.asarray(X, dtype=np.int64)
        if len(X) == 0:
            return np.empty(0, dtype=np.int8)
        votes = np.vstack(
            [rules.predict_batch(X) for rules in self._rules]
        ).sum(axis=0, dtype=np.int32)
        return np.where(
            2 * votes > len(self._rules), INCORRECT, 1 - INCORRECT
        ).astype(np.int8)

    def flags_incorrect(self, features) -> bool:
        """Detector protocol: usable directly in campaigns."""
        return self.predict_one(features) == INCORRECT

    @property
    def deployment_comparisons(self) -> int:
        """Worst-case integer comparisons per VM entry (sum over trees) —
        the cost axis against the single tree the paper deploys."""
        self._require_fitted()
        return sum(rules.max_depth for rules in self._rules)
