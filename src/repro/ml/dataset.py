"""Labeled datasets of VM-transition feature vectors.

A sample is the five-feature vector of Table I — (VMER, RT, BR, RM, WM) — plus
a binary label: ``CORRECT`` (the hypervisor execution followed its fault-free
behaviour) or ``INCORRECT`` (an activated soft error perturbed it).  The paper
trains on 12,024 such samples and tests on 6,596 (Section III.B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["FEATURE_NAMES", "CORRECT", "INCORRECT", "Dataset"]

#: Feature order used throughout the package (Table I synonyms).
FEATURE_NAMES: tuple[str, ...] = ("VMER", "RT", "BR", "RM", "WM")

CORRECT = 0
INCORRECT = 1


@dataclass(frozen=True)
class Dataset:
    """An immutable design matrix of integer features with binary labels."""

    X: np.ndarray  # (n_samples, n_features) int64
    y: np.ndarray  # (n_samples,) int8, values in {CORRECT, INCORRECT}
    feature_names: tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=np.int64)
        y = np.asarray(self.y, dtype=np.int8)
        if X.ndim != 2:
            raise DatasetError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or len(y) != len(X):
            raise DatasetError(
                f"y must be 1-D with {len(X)} entries, got shape {y.shape}"
            )
        if X.shape[1] != len(self.feature_names):
            raise DatasetError(
                f"X has {X.shape[1]} columns but {len(self.feature_names)} feature names"
            )
        if len(y) and not np.isin(y, (CORRECT, INCORRECT)).all():
            raise DatasetError("labels must be 0 (correct) or 1 (incorrect)")
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        samples: list[tuple[int, ...]],
        labels: list[int],
        feature_names: tuple[str, ...] = FEATURE_NAMES,
    ) -> "Dataset":
        """Build a dataset from python-level feature tuples."""
        if len(samples) != len(labels):
            raise DatasetError(f"{len(samples)} samples but {len(labels)} labels")
        if not samples:
            return cls(np.empty((0, len(feature_names)), dtype=np.int64),
                       np.empty(0, dtype=np.int8), feature_names)
        return cls(np.array(samples, dtype=np.int64),
                   np.array(labels, dtype=np.int8), feature_names)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.y)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def class_counts(self) -> tuple[int, int]:
        """Return ``(n_correct, n_incorrect)``."""
        n_incorrect = int(self.y.sum())
        return len(self.y) - n_incorrect, n_incorrect

    # -- manipulation -----------------------------------------------------------

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets with identical schemas."""
        if self.feature_names != other.feature_names:
            raise DatasetError("feature schemas differ")
        return Dataset(
            np.vstack([self.X, other.X]),
            np.concatenate([self.y, other.y]),
            self.feature_names,
        )

    def subset(self, mask: np.ndarray) -> "Dataset":
        """Row subset by boolean mask or index array."""
        return Dataset(self.X[mask], self.y[mask], self.feature_names)

    def oversampled(self, label: int, factor: int) -> "Dataset":
        """Duplicate samples of ``label`` ``factor`` times (class weighting).

        Tree induction has no sample-weight input; replicating the minority
        class shifts the detection/false-positive trade-off the same way.
        """
        if factor < 1:
            raise DatasetError("oversample factor must be >= 1")
        if factor == 1:
            return self
        mask = self.y == label
        extra_X = np.vstack([self.X[mask]] * (factor - 1)) if mask.any() else self.X[:0]
        extra_y = np.concatenate([self.y[mask]] * (factor - 1)) if mask.any() else self.y[:0]
        return Dataset(
            np.vstack([self.X, extra_X]),
            np.concatenate([self.y, extra_y]),
            self.feature_names,
        )

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(self, train_fraction: float, rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random train/test split (stratification is unnecessary at our sizes)."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError("train_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        cut = int(round(len(self) * train_fraction))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def describe(self) -> str:
        """One-line summary matching how the paper reports its sets."""
        n_correct, n_incorrect = self.class_counts()
        return (
            f"{len(self)} samples ({n_correct} correct, {n_incorrect} incorrect), "
            f"features: {', '.join(self.feature_names)}"
        )
