"""Entropy-based binary decision tree (the paper's baseline classifier).

A from-scratch implementation of top-down induction with information-gain
splitting — the Section III.B construction: "We iterate through each feature
to select a cut point to split the dataset … RT=200 will be selected as the
cutting point".  The induced model is a set of integer comparisons, cheap
enough to evaluate on every VM entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, NotFittedError
from repro.ml.dataset import CORRECT, Dataset, INCORRECT
from repro.ml.entropy import SplitCandidate, best_split

__all__ = ["TreeNode", "DecisionTreeClassifier"]


@dataclass
class TreeNode:
    """One node of an induced tree.

    Internal nodes carry ``(feature, threshold)`` with the convention
    *value <= threshold goes left*; leaves carry the predicted label and the
    training class counts that produced it.
    """

    feature: int = -1
    threshold: int = 0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    prediction: int = CORRECT
    n_correct: int = 0
    n_incorrect: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.node_count() + self.right.node_count()  # type: ignore[union-attr]

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.leaf_count() + self.right.leaf_count()  # type: ignore[union-attr]

    def max_depth(self) -> int:
        if self.is_leaf:
            return self.depth
        return max(self.left.max_depth(), self.right.max_depth())  # type: ignore[union-attr]


@dataclass
class DecisionTreeClassifier:
    """Greedy information-gain tree inducer.

    Parameters
    ----------
    max_depth:
        Hard cap on tree depth; 0 means "decide at the root".
    min_samples_leaf:
        A split is rejected if either side would hold fewer samples.
    min_gain:
        A split must improve entropy by at least this much.
    """

    max_depth: int = 24
    min_samples_leaf: int = 2
    min_gain: float = 1e-9
    root: TreeNode | None = field(default=None, repr=False)
    feature_names: tuple[str, ...] = ()

    # -- induction ------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "DecisionTreeClassifier":
        """Induce a tree from ``dataset``; returns self for chaining."""
        if len(dataset) == 0:
            raise DatasetError("cannot fit on an empty dataset")
        self.feature_names = dataset.feature_names
        self.root = self._grow(dataset.X, dataset.y, depth=0)
        return self

    def _candidate_features(
        self, n_features: int, depth: int
    ) -> np.ndarray:
        """Features considered at a node (all of them; random tree overrides)."""
        return np.arange(n_features)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        n_incorrect = int(y.sum())
        n_correct = len(y) - n_incorrect
        leaf = TreeNode(
            prediction=INCORRECT if n_incorrect > n_correct else CORRECT,
            n_correct=n_correct,
            n_incorrect=n_incorrect,
            depth=depth,
        )
        if depth >= self.max_depth or n_incorrect == 0 or n_correct == 0:
            return leaf
        split = self._best_split(X, y, depth)
        if split is None:
            return leaf
        mask = X[:, split.feature] <= split.threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return leaf
        node = TreeNode(
            feature=split.feature,
            threshold=split.threshold,
            n_correct=n_correct,
            n_incorrect=n_incorrect,
            depth=depth,
            prediction=leaf.prediction,
        )
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, depth: int) -> SplitCandidate | None:
        best: SplitCandidate | None = None
        for feature in self._candidate_features(X.shape[1], depth):
            candidate = best_split(X[:, int(feature)], y, int(feature))
            if candidate is None or candidate.gain < self.min_gain:
                continue
            if best is None or candidate.gain > best.gain:
                best = candidate
        return best

    # -- inference ----------------------------------------------------------------

    def predict_one(self, features: tuple[int, ...] | np.ndarray) -> int:
        """Classify a single feature vector (returns CORRECT or INCORRECT)."""
        node = self._require_fitted()
        while not node.is_leaf:
            node = node.left if features[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
        return node.prediction

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Classify a matrix of feature vectors."""
        X = np.asarray(X)
        return np.fromiter(
            (self.predict_one(row) for row in X), dtype=np.int8, count=len(X)
        )

    # -- introspection ----------------------------------------------------------------

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise NotFittedError(f"{type(self).__name__} used before fit()")
        return self.root

    @property
    def n_nodes(self) -> int:
        return self._require_fitted().node_count()

    @property
    def n_leaves(self) -> int:
        return self._require_fitted().leaf_count()

    @property
    def depth(self) -> int:
        return self._require_fitted().max_depth()

    def rules_text(self) -> str:
        """Render the tree as indented if/else integer-comparison rules."""
        root = self._require_fitted()
        names = self.feature_names or tuple(
            f"f{i}" for i in range(root.feature + 1)
        )
        lines: list[str] = []

        def walk(node: TreeNode, indent: int) -> None:
            pad = "  " * indent
            if node.is_leaf:
                label = "INCORRECT" if node.prediction == INCORRECT else "CORRECT"
                lines.append(
                    f"{pad}=> {label} ({node.n_correct} correct / {node.n_incorrect} incorrect)"
                )
                return
            name = names[node.feature] if node.feature < len(names) else f"f{node.feature}"
            lines.append(f"{pad}if {name} <= {node.threshold}:")
            walk(node.left, indent + 1)  # type: ignore[arg-type]
            lines.append(f"{pad}else:  # {name} > {node.threshold}")
            walk(node.right, indent + 1)  # type: ignore[arg-type]

        walk(root, 0)
        return "\n".join(lines)
