"""From-scratch machine learning for VM-transition detection.

Implements the paper's classifier stack (Section III.B): entropy/information-
gain split selection, a plain decision tree, the random tree variant the paper
deploys, evaluation metrics, and rule compilation into the integer-comparison
form that runs inside the hypervisor on every VM entry.
"""

from repro.ml.dataset import CORRECT, Dataset, FEATURE_NAMES, INCORRECT
from repro.ml.decision_tree import DecisionTreeClassifier, TreeNode
from repro.ml.entropy import SplitCandidate, best_split, entropy, information_gain
from repro.ml.export import CompiledRules, compile_tree
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import ConfusionMatrix, evaluate
from repro.ml.pruning import PruningReport, cross_validate, reduced_error_prune
from repro.ml.random_tree import RandomTreeClassifier, features_per_node

__all__ = [
    "CORRECT",
    "CompiledRules",
    "ConfusionMatrix",
    "Dataset",
    "DecisionTreeClassifier",
    "FEATURE_NAMES",
    "INCORRECT",
    "RandomForestClassifier",
    "RandomTreeClassifier",
    "SplitCandidate",
    "TreeNode",
    "best_split",
    "compile_tree",
    "PruningReport",
    "cross_validate",
    "entropy",
    "evaluate",
    "features_per_node",
    "information_gain",
    "reduced_error_prune",
]
