"""Random tree: decision-tree induction with per-node feature subsampling.

The paper selects WEKA's RandomTree as its production classifier
(Section III.B): "when the random tree method deciding a split, it randomly
choses and considers ⌊log2(number of features)⌋ + 1 features at each node,
which is three in our case", and reports it slightly outperforming the plain
decision tree (98.6% vs 96.1%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTreeClassifier

__all__ = ["RandomTreeClassifier", "features_per_node"]


def features_per_node(n_features: int) -> int:
    """The paper's K = ⌊log2(F)⌋ + 1 feature-subsample size."""
    if n_features <= 0:
        return 0
    return int(math.log2(n_features)) + 1


@dataclass
class RandomTreeClassifier(DecisionTreeClassifier):
    """Decision tree that examines a random feature subset at every node."""

    seed: int = 0
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def fit(self, dataset: Dataset) -> "RandomTreeClassifier":
        self._rng = np.random.default_rng(self.seed)
        super().fit(dataset)
        return self

    def _candidate_features(self, n_features: int, depth: int) -> np.ndarray:
        k = min(features_per_node(n_features), n_features)
        assert self._rng is not None  # set by fit()
        return self._rng.choice(n_features, size=k, replace=False)
