"""Entropy and information-gain machinery for tree induction.

Implements the splitting objective from Section III.B of the paper: the
expected deduction in entropy

    D(T, T_L, T_R) = Entropy(T) - (P_L * Entropy(T_L) + P_R * Entropy(T_R))

maximized over candidate cut points.  Candidate evaluation is vectorized: for
one feature column the gains of *all* boundary thresholds are computed with a
single pass of cumulative sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["entropy", "information_gain", "SplitCandidate", "best_split"]


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a binary label vector."""
    n = len(labels)
    if n == 0:
        return 0.0
    p = float(np.count_nonzero(labels)) / n
    if p == 0.0 or p == 1.0:
        return 0.0
    return float(-(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p)))


def information_gain(labels: np.ndarray, left_mask: np.ndarray) -> float:
    """Gain D of splitting ``labels`` into ``left_mask`` / its complement."""
    n = len(labels)
    if n == 0:
        return 0.0
    left = labels[left_mask]
    right = labels[~left_mask]
    p_left = len(left) / n
    p_right = 1.0 - p_left
    return entropy(labels) - (p_left * entropy(left) + p_right * entropy(right))


@dataclass(frozen=True)
class SplitCandidate:
    """The best threshold found for one feature column."""

    feature: int
    threshold: int  # go left when value <= threshold
    gain: float
    n_left: int
    n_right: int


def _binary_entropy_vec(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Vectorized binary entropy for ``pos`` positives out of ``total``."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = pos / total
        q = 1.0 - p
        h = -(p * np.log2(p) + q * np.log2(q))
    h[~np.isfinite(h)] = 0.0
    h[(p == 0.0) | (p == 1.0)] = 0.0
    return h


def best_split(values: np.ndarray, labels: np.ndarray, feature: int) -> SplitCandidate | None:
    """Best ``value <= threshold`` split of one feature column, or ``None``.

    Returns ``None`` when the column is constant or no threshold produces a
    positive gain.  Thresholds are placed at the lower of each pair of
    adjacent distinct values (integer features), so a learned rule is a pure
    integer comparison — the property the paper relies on for a low-overhead
    in-hypervisor implementation.
    """
    n = len(values)
    if n < 2:
        return None
    order = np.argsort(values, kind="stable")
    v = values[order]
    y = labels[order].astype(np.float64)

    # Boundaries between distinct adjacent values.
    boundaries = np.nonzero(v[1:] != v[:-1])[0]  # split after index i
    if len(boundaries) == 0:
        return None

    cum_pos = np.cumsum(y)
    total_pos = cum_pos[-1]
    n_left = boundaries + 1
    n_right = n - n_left
    pos_left = cum_pos[boundaries]
    pos_right = total_pos - pos_left

    h_parent = entropy(labels)
    h_left = _binary_entropy_vec(pos_left, n_left)
    h_right = _binary_entropy_vec(pos_right, n_right)
    gains = h_parent - (n_left / n) * h_left - (n_right / n) * h_right

    best = int(np.argmax(gains))
    if gains[best] <= 0.0:
        return None
    return SplitCandidate(
        feature=feature,
        threshold=int(v[boundaries[best]]),
        gain=float(gains[best]),
        n_left=int(n_left[best]),
        n_right=int(n_right[best]),
    )
