"""Classification metrics for detector evaluation.

Conventions follow the paper's framing: the *positive* class is INCORRECT
(a detection).  A **false positive** is a correct hypervisor execution flagged
incorrect — the event that triggers unnecessary recovery and whose rate (0.7%)
drives the Fig. 11 overhead estimate.  A **false negative** is an incorrect
execution the transition detector misses (the Table II "mis-classify" bucket).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.ml.dataset import CORRECT, INCORRECT

__all__ = ["ConfusionMatrix", "evaluate"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """2x2 confusion counts with detection-oriented derived rates."""

    true_negative: int   # correct predicted correct
    false_positive: int  # correct predicted incorrect (needless recovery)
    false_negative: int  # incorrect predicted correct (missed detection)
    true_positive: int   # incorrect predicted incorrect (detection)

    @property
    def total(self) -> int:
        return self.true_negative + self.false_positive + self.false_negative + self.true_positive

    @property
    def accuracy(self) -> float:
        """Fraction classified correctly; 0.0 on an empty matrix.

        The empty case is deliberate, not accidental: a detector evaluated
        on nothing has demonstrated no accuracy, and every derived rate here
        follows the same convention — an empty denominator claims nothing
        (0.0) rather than raising or returning NaN, so report pipelines
        degrade quietly on truncated populations.
        """
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def false_positive_rate(self) -> float:
        """FP / all-correct: the unnecessary-recovery rate of Section VI.

        With zero correct samples there is no population that could be
        falsely flagged, so the rate is 0.0 (no needless recovery happened
        or could have) — pinned by test, see :meth:`accuracy` for the
        empty-denominator convention.
        """
        n_correct = self.true_negative + self.false_positive
        return self.false_positive / n_correct if n_correct else 0.0

    @property
    def detection_rate(self) -> float:
        """TP / all-incorrect: recall on the incorrect class."""
        n_incorrect = self.true_positive + self.false_negative
        return self.true_positive / n_incorrect if n_incorrect else 0.0

    @property
    def miss_rate(self) -> float:
        """FN / all-incorrect: the transition detector's mis-classify rate."""
        n_incorrect = self.true_positive + self.false_negative
        return self.false_negative / n_incorrect if n_incorrect else 0.0

    def report(self, name: str = "classifier") -> str:
        """Multi-line textual report mirroring the paper's Section III numbers."""
        return "\n".join(
            [
                f"{name}: {self.total} test samples",
                f"  accuracy            {self.accuracy:7.2%}",
                f"  detection rate      {self.detection_rate:7.2%}",
                f"  false positive rate {self.false_positive_rate:7.2%}",
                f"  miss rate           {self.miss_rate:7.2%}",
                f"  confusion  TN={self.true_negative} FP={self.false_positive} "
                f"FN={self.false_negative} TP={self.true_positive}",
            ]
        )


def evaluate(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Compute the confusion matrix of predictions against ground truth.

    Empty inputs are legal and produce the all-zero matrix (every derived
    rate is then 0.0 by the empty-denominator convention documented on
    :class:`ConfusionMatrix`); mismatched shapes raise
    :class:`~repro.errors.DatasetError`.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise DatasetError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    return ConfusionMatrix(
        true_negative=int(((y_true == CORRECT) & (y_pred == CORRECT)).sum()),
        false_positive=int(((y_true == CORRECT) & (y_pred == INCORRECT)).sum()),
        false_negative=int(((y_true == INCORRECT) & (y_pred == CORRECT)).sum()),
        true_positive=int(((y_true == INCORRECT) & (y_pred == INCORRECT)).sum()),
    )
