"""Command-line interface: drive the reproduction without writing code.

Installed as ``repro-xentry``.  Subcommands map one-to-one onto the paper's
evaluation artifacts::

    repro-xentry info                      # platform inventory
    repro-xentry rates [--mode pv|hvm]     # Fig. 3 activation-rate table
    repro-xentry train [--scale 3]         # Section III.B classifier pipeline
    repro-xentry train --jobs 4 --journal-dir runs --save-model model.json
    repro-xentry campaign [--injections N] # Figs. 8-10 + Table II
    repro-xentry campaign --scenario examples/mixed.yaml   # fault-model mix
    repro-xentry campaign --jobs 4 --journal run.jsonl [--resume]
    repro-xentry campaign --artifacts cache/       # golden artifact cache
    repro-xentry campaign --jobs 4 --retries 3 --shard-timeout 600 \
                          --chaos crash=0.2,seed=1   # engine self-test
    repro-xentry overhead                  # Fig. 7 fault-free overhead
    repro-xentry recovery                  # Fig. 11 recovery-cost estimate
    repro-xentry serve --model model.json --hosts 64 --max-rows 100000 \
                       --port 9109         # streaming detection daemon

All commands are deterministic in ``--seed``; ``serve`` additionally
guarantees that fixed-seed, row-capped runs produce bit-identical detection
totals regardless of ``--batch-rows``.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.analysis import (
    BoxStats,
    LatencyStudy,
    PerfOverheadModel,
    coverage_by_benchmark,
    coverage_by_fault_class,
    dataset_from_journal,
    journal_progress,
    long_latency_breakdown,
    records_from_journal,
    summarize_recovery,
    undetected_breakdown,
)
from repro.artifacts import runtime as artifacts_runtime
from repro.engine import (
    CampaignEngine,
    EngineTelemetry,
    RetryPolicy,
    parse_chaos_spec,
    stderr_progress,
)
from repro.engine.journal import JOURNAL_FORMAT
from repro.errors import CampaignConfigError
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.hypervisor import ExitCategory, REGISTRY, XenHypervisor
from repro.machine import lockstep
from repro.machine.translator import CACHE
from repro.ml import compile_tree
from repro.persist import load_model, load_records, save_model, save_records, save_rules
from repro.scenarios import load_scenario
from repro.service import (
    DetectionService,
    FleetConfig,
    OverflowPolicy,
    ServiceConfig,
)
from repro.workloads import BENCHMARKS, VirtMode, WorkloadGenerator
from repro.xentry import (
    RecoveryCostModel,
    TrainingConfig,
    VMTransitionDetector,
    collect_dataset,
    estimate_recovery_overhead,
    train_and_evaluate,
)

__all__ = ["main"]


def _cmd_info(args: argparse.Namespace) -> int:
    hv = XenHypervisor(seed=args.seed, n_domains=args.domains)
    print("simulated platform")
    print(f"  domains:            {hv.n_domains} (Dom0 + {hv.n_domains - 1} guests)")
    print(f"  hypervisor text:    {hv.program.size:,} bytes "
          f"({len(hv.program):,} instructions)")
    print(f"  hypervisor heap:    {hv.memory_map.heap_size:,} bytes, "
          f"{len(hv.layout.all_slots)} structures")
    print("  exit reasons:")
    for category in ExitCategory:
        reasons = REGISTRY.in_category(category)
        print(f"    {category.value:<12} {len(reasons)}")
    print(f"    total        {len(REGISTRY)}")
    return 0


def _cmd_rates(args: argparse.Namespace) -> int:
    modes = [VirtMode.PV, VirtMode.HVM] if args.mode == "both" else [
        VirtMode.PV if args.mode == "pv" else VirtMode.HVM
    ]
    print("Fig. 3 — hypervisor activation frequency (activations/second)")
    for mode in modes:
        print(f"\n[{mode.value}]")
        print(f"{'benchmark':<14} {'min':>12} {'q25':>12} {'median':>12} "
              f"{'q75':>12} {'max':>12}")
        for profile in BENCHMARKS:
            generator = WorkloadGenerator(profile, mode, seed=args.seed)
            stats = BoxStats.from_samples(generator.rate_per_second(args.seconds))
            print(stats.row(profile.name))
    return 0


def _train(args: argparse.Namespace):
    """Collect train+test sets, engine-backed (``--jobs``/``--journal-dir``)."""
    jobs = getattr(args, "jobs", 1)
    journal_dir = getattr(args, "journal_dir", None)
    resume = bool(journal_dir) and getattr(args, "resume", False)
    sets = {}
    for stream, free, inj in (("train", 2000, 7800), ("test", 1000, 3900)):
        config = TrainingConfig(
            fault_free_runs=int(free * args.scale),
            injection_runs=int(inj * args.scale),
            seed=args.seed,
        )
        kwargs: dict = {}
        if journal_dir:
            directory = Path(journal_dir)
            directory.mkdir(parents=True, exist_ok=True)
            telemetry = EngineTelemetry()
            telemetry.subscribe(stderr_progress(telemetry))
            kwargs = {
                "journal_path": directory / f"{stream}.samples.jsonl",
                "resume": resume,
                "telemetry": telemetry,
            }
        sets[stream] = collect_dataset(config, stream=stream, jobs=jobs, **kwargs)
    return sets["train"], sets["test"]


def _cmd_train(args: argparse.Namespace) -> int:
    t0 = time.time()
    if args.datasets_from:
        directory = Path(args.datasets_from)
        train = dataset_from_journal(directory / "train.samples.jsonl")
        test = dataset_from_journal(directory / "test.samples.jsonl")
        print(f"datasets rebuilt from sample journals in {directory}")
    else:
        train, test = _train(args)
    print(f"train: {train.describe()}")
    print(f"test:  {test.describe()}")
    models = {}
    for algo in ("decision_tree", "random_tree"):
        models[algo] = train_and_evaluate(train, test, algorithm=algo, seed=3)
        print()
        print(models[algo].confusion.report(algo))
    print(f"\n(paper: random tree 98.6% vs decision tree 96.1%; "
          f"elapsed {time.time() - t0:.0f}s)")
    if args.journal_dir:
        print(f"sample journals at {args.journal_dir}/"
              f"{{train,test}}.samples.jsonl (+ .manifest.json)")
    if args.save_model:
        save_model(models["random_tree"], args.save_model)
        print(f"trained model (rules + evaluation) written to {args.save_model}")
    if args.save_rules:
        save_rules(compile_tree(models["random_tree"].classifier), args.save_rules)
        print(f"deployable rule table written to {args.save_rules}")
    return 0


def _load_saved_records(path: str):
    """Load records from either a ``save_records`` file or an engine journal."""
    with open(path) as fh:
        header = fh.readline()
    if f'"{JOURNAL_FORMAT}"' in header:
        progress = journal_progress(path)
        print(f"journal: {progress['done_trials']}/{progress['total_trials']} "
              f"trials durable ({progress['fraction_done']:.0%}), "
              f"{len(progress['completed_shards'])}/{progress['n_shards']} shards")
        return records_from_journal(path)
    return load_records(path)


def _cmd_campaign(args: argparse.Namespace) -> int:
    t0 = time.time()
    if args.records_from:
        return _report_records(_load_saved_records(args.records_from))
    if args.resume and not args.journal:
        print("--resume requires --journal", file=sys.stderr)
        return 2
    # Validate the scenario before the (comparatively slow) detector
    # training phase, so a typo in the file fails in milliseconds.
    scenario = None
    if args.scenario:
        try:
            scenario = load_scenario(args.scenario)
        except CampaignConfigError as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
    train, test = _train(args)
    model = train_and_evaluate(train, test, algorithm="random_tree", seed=3)
    print(f"detector: accuracy {model.accuracy:.1%}, "
          f"FP {model.false_positive_rate:.2%}")
    detector = VMTransitionDetector.from_classifier(model.classifier)
    # Detector training above also runs guest code through the process-wide
    # translation cache; snapshot its counters so the summary reports the
    # campaign phase alone (under --no-translate it must read 0% translated).
    pre_campaign = CACHE.stats()
    pre_lockstep = lockstep.stats()
    pre_artifacts = artifacts_runtime.stats()
    config = CampaignConfig(
        n_injections=args.injections, seed=args.seed, trace=args.trace,
        translate=not args.no_translate,
        twin_batch=not args.no_twin_batch,
        recover=args.recover,
        recovery_hazard=args.recovery_hazard,
        artifacts=args.artifacts,
        golden_cache=not args.no_golden_cache,
    )
    if scenario is not None:
        config = scenario.apply(config)
        print(f"scenario: {scenario.describe()}")
    # Supervision knobs force the engine path: the serial for-loop has no
    # retry, watchdog or chaos machinery.
    use_engine = (
        args.jobs > 1 or args.journal or args.chaos
        or args.shard_timeout is not None
    )
    if use_engine:
        telemetry = EngineTelemetry()
        telemetry.subscribe(stderr_progress(telemetry))
        engine = CampaignEngine(
            config,
            jobs=args.jobs,
            n_shards=max(4, 2 * args.jobs),
            detector=detector,
            journal_path=args.journal,
            telemetry=telemetry,
            retry=RetryPolicy(max_retries=args.retries, seed=args.seed),
            shard_timeout=args.shard_timeout,
            chaos=parse_chaos_spec(args.chaos) if args.chaos else None,
        )
        result = engine.run(resume=args.resume)
        astats = dict(telemetry.artifact_stats)
        if args.journal:
            print(f"journal at {args.journal} "
                  f"(manifest: {args.journal}.manifest.json)")
    else:
        campaign = FaultInjectionCampaign(config, detector=detector)

        def progress(done: int, total: int) -> None:
            sys.stdout.write(f"\r{done}/{total} trials")
            sys.stdout.flush()

        result = campaign.run(progress=progress)
        post_artifacts = artifacts_runtime.stats()
        astats = {
            k: post_artifacts[k] - pre_artifacts[k]
            for k in post_artifacts
            if post_artifacts[k] != pre_artifacts[k]
        }
    print(f"\n{len(result)} injections, {len(result.manifested)} manifested "
          f"({time.time() - t0:.0f}s)")
    capture = astats.get("golden_capture_seconds", 0.0)
    load = astats.get("golden_load_seconds", 0.0)
    hits = int(astats.get("golden_hits", 0))
    consulted = hits + int(astats.get("golden_misses", 0))
    if capture or load or consulted:
        cache_note = f", cache {hits}/{consulted} hits" if consulted else ""
        print(f"golden capture: {capture:.2f}s capturing live, "
              f"{load:.2f}s loading cached artifacts{cache_note}")
    tstats = {
        k: v - pre_campaign[k]
        for k, v in CACHE.stats().items()
        if k != "block_hit_rate"
    }
    if tstats["block_executions"]:
        mix = tstats["translated_instructions"] + tstats["interpreted_instructions"]
        share = tstats["translated_instructions"] / mix if mix else 0.0
        hit_rate = (
            (tstats["block_executions"] - tstats["blocks_compiled"])
            / tstats["block_executions"]
        )
        print(f"translation cache: {tstats['blocks_compiled']} blocks compiled "
              f"({tstats['blocks_prewarmed']} pre-warmed, "
              f"{tstats['blocks_compiled_cold']} cold), "
              f"hit rate {hit_rate:.1%}, "
              f"{share:.1%} of instructions translated")
    lstats = {k: v - pre_lockstep[k] for k, v in lockstep.stats().items()}
    if lstats["twins"]:
        dead_share = lstats["dead_twins"] / lstats["twins"]
        print(f"twin batching: {lstats['twins']} twins in "
              f"{lstats['twin_batches']} batches, "
              f"{lstats['dead_twins']} settled without execution "
              f"({dead_share:.1%}), {lstats['peeled_twins']} peeled")
    if args.output:
        save_records(result.records, args.output)
        print(f"records written to {args.output}")
    if not result.degraded:
        return _report_records(result.records)
    # Report what survived (a heavily-degraded campaign may not have enough
    # records for every table), then say why the run is incomplete on stderr
    # and exit non-zero so pipelines notice.
    if result.records:
        try:
            _report_records(result.records)
        except CampaignConfigError as exc:
            print(f"(analysis skipped on degraded records: {exc})")
    print(f"\nDEGRADED: {result.summary()}", file=sys.stderr)
    return 3


def _report_records(records) -> int:
    print("\nFig. 8 — coverage by technique")
    for name, cov in coverage_by_benchmark(records).items():
        print(cov.row(name))
    # Scenario campaigns mix fault classes; show how coverage shifts across
    # them.  Single-model campaigns skip the section (historical output).
    by_class = coverage_by_fault_class(tuple(records))
    if len(by_class) > 2:  # classes + AVG
        print("\nFig. 8b — coverage by fault class")
        for name, cov in by_class.items():
            print(cov.row(name))
    summary = summarize_recovery(tuple(records))
    if summary.trials:
        print("\nRecovery — measured survival axis")
        for line in summary.lines():
            print(f"  {line}")
    print("\nFig. 9 — long-latency errors")
    for klass, (detected, total) in long_latency_breakdown(records).items():
        rate = f"{detected / total:.1%}" if total else "---"
        print(f"  {klass.value:<16} {detected}/{total} ({rate})")
    print("\nFig. 10 — latency CDF")
    print(LatencyStudy.from_records(records).table([100, 300, 500, 700, 1000]))
    print("\nTable II — undetected faults")
    for kind, share in undetected_breakdown(records).items():
        print(f"  {kind.value:<16} {share:6.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.max_rows is None and args.duration is None:
        print("serve needs a stop condition: --max-rows or --duration",
              file=sys.stderr)
        return 2
    artifact = load_model(args.model)
    accuracy = artifact.evaluation.get("accuracy")
    print(f"model: {artifact.name}"
          + (f" (held-out accuracy {accuracy:.1%})" if accuracy else ""))
    config = ServiceConfig(
        fleet=FleetConfig(
            hosts=args.hosts,
            vms_per_host=args.vms_per_host,
            seed=args.seed,
            inject_fraction=args.inject_fraction,
            burst_every=args.burst_every,
            burst_rows=args.burst_rows,
        ),
        batch_rows=args.batch_rows,
        queue_depth=args.queue_depth,
        policy=OverflowPolicy(args.policy),
        max_rows=args.max_rows,
        duration=args.duration,
    )
    service = DetectionService(config, artifact)
    print(f"fleet: {config.fleet.hosts} hosts x {config.fleet.vms_per_host} VMs, "
          f"seed {config.fleet.seed}, "
          f"inject fraction {config.fleet.inject_fraction:.1%}")

    def progress(emitted: int, scored: int) -> None:
        sys.stderr.write(f"\r{emitted:,} rows emitted, {scored:,} scored")
        sys.stderr.flush()

    server = None
    if not args.no_http:
        server = service.endpoint(port=args.port).start()
        print(f"serving /metrics and /healthz at {server.url}", flush=True)
    try:
        try:
            report = service.run(progress=progress)
        except KeyboardInterrupt:
            # Graceful drain: score what's queued, then summarize.
            service.request_stop()
            report = service.run()
        if args.summary:
            service.write_summary(args.summary)
        if server is not None and args.hold > 0:
            print(f"holding endpoint open for {args.hold:g}s (Ctrl-C to stop)",
                  flush=True)
            try:
                time.sleep(args.hold)
            except KeyboardInterrupt:
                pass
    finally:
        if server is not None:
            server.stop()
    sys.stderr.write("\r")
    print(report.summary())
    if args.summary:
        print(f"deterministic summary written to {args.summary}")
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    model = PerfOverheadModel()
    print("Fig. 7 — fault-free performance overhead (10 runs per benchmark)")
    total = 0.0
    for profile in BENCHMARKS:
        study = model.study(profile, seed=args.seed)
        total += study.mean_full
        print(study.row())
    print(f"average full overhead: {total / len(BENCHMARKS):.2%} (paper: 2.5%)")
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    model = RecoveryCostModel()
    print("Fig. 11 — recovery overhead with false positives")
    print(f"(copy {model.copy_ns:.0f} ns/exit, FP rate "
          f"{model.false_positive_rate:.1%}, 100 repetitions)")
    total = 0.0
    for profile in BENCHMARKS:
        study = estimate_recovery_overhead(profile, model=model, seed=args.seed)
        total += study.mean
        print(f"  {profile.name:<12} mean {study.mean:7.3%}  "
              f"spread {study.spread:9.5%}")
    print(f"average: {total / len(BENCHMARKS):.2%} (paper: 2.7%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xentry",
        description="Xentry (ICPP 2014) reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=5, help="root seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="platform inventory", parents=[common])
    p.add_argument("--domains", type=int, default=3)
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("rates", help="Fig. 3 activation-rate table", parents=[common])
    p.add_argument("--mode", choices=("pv", "hvm", "both"), default="both")
    p.add_argument("--seconds", type=int, default=600)
    p.set_defaults(func=_cmd_rates)

    p = sub.add_parser("train", help="Section III.B classifier pipeline", parents=[common])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for sample collection "
                        "(default: 1, serial; datasets are bit-identical)")
    p.add_argument("--journal-dir", metavar="DIR",
                   help="journal collected samples to DIR/{train,test}"
                        ".samples.jsonl (crash-safe, resumable)")
    p.add_argument("--resume", action="store_true",
                   help="resume collection from --journal-dir, "
                        "re-running only missing shards")
    p.add_argument("--datasets-from", metavar="DIR",
                   help="skip collection; rebuild datasets from the sample "
                        "journals in DIR")
    p.add_argument("--save-model", metavar="PATH",
                   help="write the random-tree model (compiled rules + "
                        "held-out evaluation) as JSON")
    p.add_argument("--save-rules", metavar="PATH",
                   help="write the deployable rule table as JSON")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("campaign", help="fault-injection campaign (Figs. 8-10)", parents=[common])
    p.add_argument("--injections", type=int, default=6000)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--output", metavar="PATH",
                   help="write trial records as JSON lines")
    p.add_argument("--records-from", metavar="PATH",
                   help="skip execution; re-analyze saved records or a journal")
    p.add_argument("--scenario", metavar="PATH",
                   help="declarative scenario file (YAML): fault-model "
                        "mixture, memory-subsystem targeting, workload "
                        "overrides; its campaign: section overrides CLI "
                        "flags (see examples/)")
    p.add_argument("--trace", action="store_true",
                   help="record full per-instruction address traces "
                        "(slower; light count+path-hash tracing is the default)")
    p.add_argument("--no-translate", action="store_true",
                   help="disable the basic-block translation cache and run "
                        "every instruction through the interpreter "
                        "(slower; records are bit-identical either way)")
    p.add_argument("--no-twin-batch", action="store_true",
                   help="disable lock-step twin batching and execute every "
                        "injection per-trial (slower; records are "
                        "bit-identical either way)")
    p.add_argument("--artifacts", metavar="DIR",
                   help="content-addressed golden artifact cache: load cached "
                        "golden runs from DIR instead of re-executing them, "
                        "save newly captured ones there (records are "
                        "bit-identical cold, warm, shared or disabled)")
    p.add_argument("--no-golden-cache", action="store_true",
                   help="disable the golden artifact cache even when "
                        "--artifacts is set (always capture goldens live)")
    p.add_argument("--recover", choices=("reexecute", "microreboot", "ladder"),
                   default=None, metavar="POLICY",
                   help="run every detected trial through a recovery policy "
                        "(reexecute | microreboot | ladder) and record "
                        "survival, downtime and golden divergence")
    p.add_argument("--recovery-hazard", type=float, default=0.0,
                   metavar="PROB",
                   help="probability of a second soft error striking during "
                        "a recovery attempt (deterministic per trial/attempt; "
                        "default: 0)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the campaign engine "
                        "(default: 1, serial; results are bit-identical)")
    p.add_argument("--journal", metavar="PATH",
                   help="journal finished shards to PATH (crash-safe JSONL)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --journal, skipping completed shards")
    p.add_argument("--retries", type=int, default=2,
                   help="per-shard retry budget before quarantine (default: 2; "
                        "a degraded campaign exits with code 3)")
    p.add_argument("--shard-timeout", type=float, default=None, metavar="SECONDS",
                   help="wall-clock watchdog per shard attempt "
                        "(pool mode; hung workers are killed and retried)")
    p.add_argument("--chaos", metavar="SPEC",
                   help="inject deterministic engine faults to exercise the "
                        "supervisor, e.g. '0.2' or "
                        "'crash=0.2,hard=0.05,hang=0.1,journal=0.05,seed=1'")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="streaming detection daemon (simulated fleet + /metrics)",
        parents=[common],
    )
    p.add_argument("--model", required=True, metavar="PATH",
                   help="model artifact from 'train --save-model'")
    p.add_argument("--hosts", type=int, default=8,
                   help="simulated hypervisor hosts (default: 8)")
    p.add_argument("--vms-per-host", type=int, default=4)
    p.add_argument("--max-rows", type=int, default=None, metavar="N",
                   help="stop after N rows fleet-wide (deterministic mode: "
                        "totals are bit-identical across runs and batch sizes)")
    p.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                   help="stop after a wall-clock budget instead of a row cap")
    p.add_argument("--inject-fraction", type=float, default=0.02,
                   help="fraction of rows carrying an injected fault "
                        "(default: 0.02)")
    p.add_argument("--batch-rows", type=int, default=256,
                   help="micro-batch size drained per classify_batch call")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="bounded per-host queue depth (backpressure bound)")
    p.add_argument("--policy", choices=[pol.value for pol in OverflowPolicy],
                   default=OverflowPolicy.DROP_OLDEST.value,
                   help="full-queue policy (default: drop-oldest, counted "
                        "per host; block never drops)")
    p.add_argument("--burst-every", type=int, default=0, metavar="TICKS",
                   help="emit a burst every N ticks (exercises backpressure)")
    p.add_argument("--burst-rows", type=int, default=0,
                   help="extra rows per burst tick per host")
    p.add_argument("--port", type=int, default=0,
                   help="scrape endpoint port (default: 0 = ephemeral)")
    p.add_argument("--no-http", action="store_true",
                   help="run without the scrape endpoint")
    p.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                   help="keep /metrics up this long after the stream ends "
                        "so scrapers can collect final totals")
    p.add_argument("--summary", metavar="PATH",
                   help="write the deterministic totals as JSON (what the "
                        "bit-identical contract is diffed on)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("overhead", help="Fig. 7 fault-free overhead", parents=[common])
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser("recovery", help="Fig. 11 recovery-cost estimate", parents=[common])
    p.set_defaults(func=_cmd_recovery)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
