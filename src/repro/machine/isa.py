"""The toy instruction set.

A small x86-flavored, fixed-width (4 bytes/instruction) 64-bit ISA, rich
enough that hypervisor handlers written in it exhibit the behaviours the paper
studies: data-dependent branches (incorrect-control-flow targets), memory
traffic (load/store counters), ``rep movs`` bulk copies (the Fig. 5a extra-code
example), ``rdtsc`` (time-value delivery, Table II) and ``cpuid``
(trap-and-emulate, Section II.A), plus embedded software assertions
(Listing 1/2).

Instructions are stored decoded; the fixed 4-byte width exists so the
instruction pointer is a genuine byte address — a bit flip in RIP can land
mid-instruction (#UD), on a different valid instruction (incorrect but valid
control flow), or outside the text (#PF/#GP), all of which the paper's
detection paths distinguish.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.machine.flags import CONDITION_CODES, CONDITION_TABLES
from repro.machine.registers import MASK64, RegisterFile

__all__ = [
    "INSTRUCTION_BYTES",
    "Op",
    "Operand",
    "Reg",
    "Imm",
    "Mem",
    "Instr",
    "OP_INDEX",
    "Program",
    "BRANCH_OPS",
    "OP_MEM_LOADS",
    "OP_MEM_STORES",
    "STACK_OPS",
]

INSTRUCTION_BYTES = 4


class Op(enum.Enum):
    """Opcodes of the toy ISA."""

    MOV = "mov"          # mov dst, reg|imm
    LOAD = "load"        # load dst, [base+disp]
    STORE = "store"      # store [base+disp], src
    LEA = "lea"          # lea dst, [base+disp]
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMUL = "imul"
    DIV = "div"          # dst //= src ; #DE when src == 0
    SHL = "shl"
    SHR = "shr"
    CMP = "cmp"
    TEST = "test"
    INC = "inc"
    DEC = "dec"
    JMP = "jmp"
    JCC = "jcc"          # jcc <cond>, label  (assembler accepts je/jne/...)
    CALL = "call"
    RET = "ret"
    PUSH = "push"
    POP = "pop"
    REP_MOVS = "rep_movs"  # copy rcx words from [rsi] to [rdi]
    RDTSC = "rdtsc"      # rax <- low 32 of TSC, rdx <- high 32
    CPUID = "cpuid"      # leaf in rax -> rax,rbx,rcx,rdx
    ASSERT_RANGE = "assert_range"  # assert lo <= reg <= hi
    ASSERT_EQ = "assert_eq"        # assert reg == imm
    ASSERT_EQ_REG = "assert_eq_reg"  # assert dst == src (redundancy check)
    NOP = "nop"
    VMENTRY = "vmentry"  # terminator: hand control back to the guest
    HALT = "halt"        # terminator: stop this execution (idle loop)


#: Opcodes counted by the BR_INST_RETIRED performance counter.
BRANCH_OPS: frozenset[Op] = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.RET})

# Per-op performance-counter metadata.  These tables are the single source of
# truth for how many MEM_LOADS/MEM_STORES events one successful execution of
# an opcode retires (REP_MOVS is the exception: it counts per copied word and
# is listed here with its fixed-cost contribution of zero).  Both the
# translator's per-block batched counter deltas and the counter-semantics
# pinning test derive from them, so translation cannot silently change counts.
OP_MEM_LOADS: dict[Op, int] = {Op.LOAD: 1, Op.POP: 1, Op.RET: 1}
OP_MEM_STORES: dict[Op, int] = {Op.STORE: 1, Op.PUSH: 1, Op.CALL: 1}

#: Opcodes whose memory access targets the stack: a fatal page fault during
#: that access is architecturally delivered as #SS, not #PF (and the access
#: happens *before* the op's load/store counter bump, so a faulting stack op
#: retires no memory event).
STACK_OPS: frozenset[Op] = frozenset({Op.PUSH, Op.POP, Op.CALL, Op.RET})


class Operand:
    """Marker base class for instruction operands."""

    __slots__ = ()


@dataclass(frozen=True)
class Reg(Operand):
    """A register operand, pre-resolved to its architectural index."""

    name: str
    index: int = field(compare=False, default=-1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", RegisterFile.index_of(self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm(Operand):
    """A 64-bit immediate operand."""

    value: int

    def __str__(self) -> str:
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


@dataclass(frozen=True)
class Mem(Operand):
    """A ``[base + disp]`` memory operand."""

    base: Reg
    disp: int = 0

    def __str__(self) -> str:
        if self.disp:
            sign = "+" if self.disp >= 0 else "-"
            return f"[{self.base}{sign}{abs(self.disp)}]"
        return f"[{self.base}]"


#: Stable dense index per opcode (fast dispatch without enum hashing).
OP_INDEX: dict[Op, int] = {op: i for i, op in enumerate(Op)}


@dataclass(frozen=True)
class Instr:
    """One decoded instruction.

    ``target`` holds the byte address for control transfers (resolved by the
    assembler), ``cond`` the condition code for :attr:`Op.JCC`, and
    ``assert_id``/``lo``/``hi`` parameterize assertion pseudo-ops.

    ``op_index``/``is_branch``/``is_terminator`` are precomputed execution
    metadata so the CPU's hot loop avoids enum hashing.
    """

    op: Op
    dst: Operand | None = None
    src: Operand | None = None
    target: int | None = None
    cond: str | None = None
    assert_id: str | None = None
    lo: int = 0
    hi: int = 0
    label: str | None = None  # unresolved target label (pre-assembly)
    op_index: int = field(init=False, compare=False, default=-1)
    is_branch: bool = field(init=False, compare=False, default=False)
    is_terminator: bool = field(init=False, compare=False, default=False)
    # Flattened operand metadata (also precomputed): the interpreter reads
    # operands through these single-hop fields instead of chasing
    # ``instr.src.base.index``-style chains on every retirement.
    dst_index: int = field(init=False, compare=False, default=-1)
    src_is_reg: bool = field(init=False, compare=False, default=False)
    src_index: int = field(init=False, compare=False, default=-1)
    src_imm: int = field(init=False, compare=False, default=0)
    mem_base_index: int = field(init=False, compare=False, default=-1)
    mem_disp: int = field(init=False, compare=False, default=0)
    #: JCC truth table over (CF, ZF, SF, OF) — see ``flags.CONDITION_TABLES``.
    cond_table: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.op is Op.JCC:
            if self.cond not in CONDITION_CODES:
                raise AssemblyError(f"unknown condition code {self.cond!r}")
            object.__setattr__(self, "cond_table", CONDITION_TABLES[self.cond])
        object.__setattr__(self, "op_index", OP_INDEX[self.op])
        object.__setattr__(self, "is_branch", self.op in BRANCH_OPS)
        object.__setattr__(
            self, "is_terminator", self.op is Op.VMENTRY or self.op is Op.HALT
        )
        if type(self.dst) is Reg:
            object.__setattr__(self, "dst_index", self.dst.index)
        src = self.src
        if type(src) is Reg:
            object.__setattr__(self, "src_is_reg", True)
            object.__setattr__(self, "src_index", src.index)
        elif type(src) is Imm:
            object.__setattr__(self, "src_imm", src.value & MASK64)
        mem = src if type(src) is Mem else (self.dst if type(self.dst) is Mem else None)
        if mem is not None:
            object.__setattr__(self, "mem_base_index", mem.base.index)
            object.__setattr__(self, "mem_disp", mem.disp)

    def __str__(self) -> str:
        parts = [self.op.value if self.op is not Op.JCC else f"j{self.cond}"]
        ops = [str(o) for o in (self.dst, self.src) if o is not None]
        if self.label is not None:
            ops.append(self.label)
        elif self.target is not None:
            ops.append(f"{self.target:#x}")
        if self.op in (Op.ASSERT_RANGE, Op.ASSERT_EQ):
            ops.append(f"{self.lo}..{self.hi}" if self.op is Op.ASSERT_RANGE else f"{self.hi}")
            ops.append(str(self.assert_id))
        return parts[0] + (" " + ", ".join(ops) if ops else "")


class Program:
    """An assembled unit of code: instructions plus resolved labels.

    A program occupies ``len(instructions) * INSTRUCTION_BYTES`` bytes starting
    at :attr:`base`; :meth:`instruction_at` maps a byte address back to the
    decoded instruction (or ``None`` for misaligned/out-of-range addresses,
    which the CPU turns into #UD).
    """

    __slots__ = ("base", "instructions", "labels", "_digest", "_translation")

    def __init__(self, base: int, instructions: list[Instr], labels: dict[str, int]) -> None:
        self.base = base
        self.instructions: tuple[Instr, ...] = tuple(instructions)
        #: label -> absolute byte address
        self.labels = dict(labels)
        # Lazy identity/translation state (see text_digest and
        # repro.machine.translator): programs with equal digests share one
        # compiled-block set process-wide.
        self._digest: str | None = None
        self._translation = None

    def text_digest(self) -> str:
        """Stable fingerprint of the program text's execution semantics.

        Hashes the base address plus every field the CPU (interpreter or
        translated block) reads from each decoded instruction, so two
        programs digest equal iff they execute identically at every address.
        The translation cache keys compiled blocks by this digest.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(str(self.base).encode())
            for ins in self.instructions:
                h.update(
                    repr((
                        ins.op_index, ins.dst_index, ins.src_is_reg,
                        ins.src_index, ins.src_imm, ins.mem_base_index,
                        ins.mem_disp, ins.target, ins.cond_table,
                        ins.lo, ins.hi, ins.assert_id,
                    )).encode()
                )
            self._digest = h.hexdigest()
        return self._digest

    @property
    def size(self) -> int:
        """Size of the program text in bytes."""
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def end(self) -> int:
        return self.base + self.size

    def address_of(self, label: str) -> int:
        """Absolute byte address of ``label``."""
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"unknown label {label!r}") from None

    def instruction_at(self, address: int) -> Instr | None:
        """Decode the instruction at byte address ``address``.

        Returns ``None`` when the address is misaligned or outside the text —
        the hardware analogue is fetching garbage bytes, which the CPU reports
        as #UD.
        """
        offset = address - self.base
        if offset < 0 or offset >= self.size or offset % INSTRUCTION_BYTES:
            return None
        return self.instructions[offset // INSTRUCTION_BYTES]

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        """Human-readable disassembly with addresses and labels."""
        by_addr: dict[int, list[str]] = {}
        for name, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(name)
        lines: list[str] = []
        for i, instr in enumerate(self.instructions):
            addr = self.base + i * INSTRUCTION_BYTES
            for name in by_addr.get(addr, ()):
                lines.append(f"{name}:")
            lines.append(f"  {addr:#010x}  {instr}")
        return "\n".join(lines)
