"""RFLAGS modeling.

Only the five status flags that drive conditional branches in the toy ISA are
modeled: CF, PF, ZF, SF, OF.  They live packed inside the 64-bit ``rflags``
register at their real x86 bit positions, so a fault injected into ``rflags``
flips branch outcomes exactly the way a real soft error would.
"""

from __future__ import annotations

__all__ = [
    "CF", "PF", "ZF", "SF", "OF",
    "FLAG_BITS",
    "PARITY_TABLE",
    "SIGN_BIT",
    "STATUS_MASK",
    "update_flags_logic",
    "update_flags_arith",
    "add_flags",
    "sub_flags",
    "condition_met",
]

CF = 1 << 0   # carry
PF = 1 << 2   # parity (of low byte)
ZF = 1 << 6   # zero
SF = 1 << 7   # sign
OF = 1 << 11  # overflow

#: Name -> mask for every modeled flag.
FLAG_BITS: dict[str, int] = {"cf": CF, "pf": PF, "zf": ZF, "sf": SF, "of": OF}

_ALL = CF | PF | ZF | SF | OF
_MASK64 = (1 << 64) - 1
_SIGN = 1 << 63


#: Precomputed PF contribution for every low-byte value (hot path).
_PARITY_TABLE: tuple[int, ...] = tuple(
    PF if bin(i).count("1") % 2 == 0 else 0 for i in range(256)
)

# Codegen metadata: the translator inlines the flag-update recipes below into
# generated block bodies, indexing the same parity table and clearing the same
# status-flag mask, so translated and interpreted flag results are identical.
PARITY_TABLE: tuple[int, ...] = _PARITY_TABLE
STATUS_MASK = _ALL
SIGN_BIT = _SIGN


def _parity(value: int) -> bool:
    """x86 PF: set when the low byte has an even number of set bits."""
    return bool(_PARITY_TABLE[value & 0xFF])


def update_flags_logic(rflags: int, result: int) -> int:
    """Flag update for logical ops (AND/OR/XOR/TEST): CF=OF=0, ZF/SF/PF set."""
    result &= _MASK64
    flags = _PARITY_TABLE[result & 0xFF]
    if result == 0:
        flags |= ZF
    elif result & _SIGN:
        flags |= SF
    return (rflags & ~_ALL) | flags


def add_flags(rflags: int, result_wide: int, a: int, b: int) -> int:
    """ADD/INC flag update (CPU fast path; positional args only).

    Signed overflow when the operand signs agree and the result sign differs
    from them — expressed bitwise (``~(a^b) & (a^result)`` has the sign bit
    set exactly then), avoiding per-call bool plumbing.
    """
    result = result_wide & _MASK64
    flags = _PARITY_TABLE[result & 0xFF]
    if result == 0:
        flags |= ZF
    elif result & _SIGN:
        flags |= SF
    if result_wide > _MASK64:
        flags |= CF  # carry out
    if ~(a ^ b) & (a ^ result) & _SIGN:
        flags |= OF
    return (rflags & ~_ALL) | flags


def sub_flags(rflags: int, result_wide: int, a: int, b: int) -> int:
    """SUB/CMP/DEC flag update (CPU fast path; positional args only)."""
    result = result_wide & _MASK64
    flags = _PARITY_TABLE[result & 0xFF]
    if result == 0:
        flags |= ZF
    elif result & _SIGN:
        flags |= SF
    if result_wide < 0:
        flags |= CF  # borrow
    if (a ^ b) & (a ^ result) & _SIGN:
        flags |= OF
    return (rflags & ~_ALL) | flags


def update_flags_arith(
    rflags: int, result_wide: int, a: int, b: int, *, subtraction: bool
) -> int:
    """Flag update for ADD/SUB/CMP/INC/DEC style arithmetic.

    ``result_wide`` is the un-truncated Python integer result (``a + b`` or
    ``a - b``) so carry/borrow can be derived; ``a`` and ``b`` are the 64-bit
    operands as read.
    """
    if subtraction:
        return sub_flags(rflags, result_wide, a, b)
    return add_flags(rflags, result_wide, a, b)


#: Condition-code evaluation table for the ISA's conditional jumps.
_CONDITIONS = {
    "e": lambda f: bool(f & ZF),
    "ne": lambda f: not f & ZF,
    "l": lambda f: bool(f & SF) != bool(f & OF),
    "le": lambda f: bool(f & ZF) or (bool(f & SF) != bool(f & OF)),
    "g": lambda f: (not f & ZF) and (bool(f & SF) == bool(f & OF)),
    "ge": lambda f: bool(f & SF) == bool(f & OF),
    "b": lambda f: bool(f & CF),
    "ae": lambda f: not f & CF,
    "be": lambda f: bool(f & CF) or bool(f & ZF),
    "a": lambda f: (not f & CF) and (not f & ZF),
    "s": lambda f: bool(f & SF),
    "ns": lambda f: not f & SF,
}


def condition_met(code: str, rflags: int) -> bool:
    """Evaluate condition code ``code`` (``"e"``, ``"ne"``, ...) on rflags."""
    return _CONDITIONS[code](rflags)


CONDITION_CODES: tuple[str, ...] = tuple(_CONDITIONS)
__all__.append("CONDITION_CODES")


def _condition_table(code: str) -> int:
    """16-bit truth table over (CF, ZF, SF, OF) combinations for ``code``.

    Bit ``i`` of the table answers the condition for the flag combination
    where CF = bit 0 of ``i``, ZF = bit 1, SF = bit 2, OF = bit 3.  A plain
    int, so it can live on (picklable) decoded instructions; the CPU indexes
    it instead of calling a predicate per conditional branch.
    """
    table = 0
    fn = _CONDITIONS[code]
    for i in range(16):
        rflags = (CF if i & 1 else 0) | (ZF if i & 2 else 0) \
            | (SF if i & 4 else 0) | (OF if i & 8 else 0)
        if fn(rflags):
            table |= 1 << i
    return table


#: code -> truth table (see :func:`_condition_table`).
CONDITION_TABLES: dict[str, int] = {c: _condition_table(c) for c in CONDITION_CODES}
__all__.append("CONDITION_TABLES")
