"""Trace translation: decode-once, compile-to-closures execution.

The campaign re-executes the same hypervisor text thousands of times per
golden group, so per-instruction fetch/decode/dispatch in the interpreter
loop is pure overhead after the first trial.  This module translates the
program once into *traces* — the longest statically-predictable instruction
path from an entry: straight-line code, the fall-through arm of conditional
branches, and the always-taken targets of resolved JMP/CALL.  A trace ends
at RET (dynamic target), a terminator, an op the translator leaves to the
interpreter (REP_MOVS/RDTSC/CPUID, whose semantics touch per-core mutable
state), a cycle back into itself, or the length cap.  Each trace compiles
into a specialized Python closure:

* operands are pre-resolved to literal register indices and immediates,
* RFLAGS updates are *deferred*: operands are captured in locals and the
  flag word is only packed (via the interpreter's own ``add_flags``/
  ``sub_flags``/``update_flags_logic``) where something can observe it — a
  faulting op, a conditional, an exit; *dead* updates (provably overwritten
  first) are elided entirely, and a conditional branch fed by a pending
  update fuses into a direct operand comparison (packing flags only on its
  taken, exiting arm),
* the FNV-1a path hash folds retired literal addresses in grouped chains,
* taken conditional branches and RET leave through mid-trace exits, each
  returning the baked retirement deltas (count, PMU inst/branch/load/store
  events, assertion checks) of the path actually executed, which the
  dispatch loop applies in one batch.

Determinism contract: a trace performs *exactly* the architectural effects
of interpreting its instructions in order — same register writes, same
memory calls (hence the same memory-system side effects and exception
details), same #SS conversion for stack accesses.  Anything the trace cannot
retire exactly (a pending injection, a live activation watch on a register
the trace touches, full tracing, an exception mid-trace) side-exits to the
interpreter: exceptions raised inside a trace carry the faulting
instruction's address, and the dispatch loop re-synchronizes
counters/hash/RIP for the partially retired prefix before re-raising, so a
mid-trace fault is bit-identical to an interpreted one (see
``CPUCore._dispatch``).

Compilation is warmth-gated: an entry interprets until it has been
dispatched :data:`COMPILE_THRESHOLD` times, so one-off entry points (every
injection index creates one) never pay the compile cost.

Compiled traces are shared process-wide through :data:`CACHE`, keyed by
``(text digest, entry address)`` — all trials of a golden group, every
``resume_execution`` rung, and even separate :class:`XenHypervisor`
instances with identical images reuse one compiled set.
"""

from __future__ import annotations

from repro.machine.exceptions import (
    AssertionViolation,
    HardwareException,
    Vector,
    raise_stack_fault,
)
from repro.machine.flags import (
    CONDITION_TABLES,
    SIGN_BIT,
    add_flags,
    sub_flags,
    update_flags_logic,
)
from repro.machine.isa import (
    INSTRUCTION_BYTES,
    Instr,
    Op,
    OP_MEM_LOADS,
    OP_MEM_STORES,
    Program,
)
from repro.machine.registers import MASK64, RegisterFile
from repro.machine.tracer import _FNV_PRIME

__all__ = [
    "BlockMeta",
    "CACHE",
    "COMPILE_THRESHOLD",
    "MAX_BLOCK_INSTRUCTIONS",
    "ProgramTranslation",
    "TranslationCache",
    "translation_for",
]

#: Longest trace compiled into one closure.  Bounds generated source size
#: and keeps traces enterable between ladder checkpoints (the dispatch loop
#: only enters a trace whose longest path finishes before the next stop).
MAX_BLOCK_INSTRUCTIONS = 64

#: Dispatches of an entry before it compiles.  Golden paths cross this
#: within the first trials; per-injection side entries (usually dispatched
#: once) stay interpreted instead of paying ``compile()``.  Swept on the
#: campaign-shaped benchmark: 8 compiles too many one-off side entries,
#: 128 leaves too much of the steady state interpreted; 32 maximizes
#: trials/sec at campaign scale.
COMPILE_THRESHOLD = 32

_I_RIP = RegisterFile.index_of("rip")
_I_RSP = RegisterFile.index_of("rsp")
_I_FL = RegisterFile.index_of("rflags")

# Literals baked into generated source (never looked up at run time).
_M = f"{MASK64:#x}"
_F = f"{_FNV_PRIME:#x}"
_SIGN = f"{SIGN_BIT:#x}"

#: Ops the translator compiles.  REP_MOVS (bulk per-word accounting),
#: RDTSC (reads the batched TSC mid-block) and CPUID (per-core mutable
#: table) stay interpreter-only; terminators end execution, not blocks.
TRANSLATABLE_OPS: frozenset[Op] = frozenset({
    Op.MOV, Op.LOAD, Op.STORE, Op.LEA,
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.DIV, Op.SHL, Op.SHR,
    Op.CMP, Op.TEST, Op.INC, Op.DEC,
    Op.JMP, Op.JCC, Op.CALL, Op.RET, Op.PUSH, Op.POP,
    Op.ASSERT_RANGE, Op.ASSERT_EQ, Op.ASSERT_EQ_REG, Op.NOP,
})

_ASSERT_OPS = frozenset({Op.ASSERT_RANGE, Op.ASSERT_EQ, Op.ASSERT_EQ_REG})


class BlockMeta:
    """Side-exit/debug metadata of one compiled block.

    The prefix arrays let the dispatch loop reconstruct exact interpreter
    accounting for a block that faulted at instruction ``k`` (0-based within
    the block): ``loads_before[k]``/``stores_before[k]`` count memory events
    retired *before* k (a faulting memory op never counts its own access),
    while ``asserts_through[k]`` counts assertion checks *through* k (a
    failing assertion pre-increments the tally, exactly like the
    interpreter's handlers).  ``branches_through[k]`` counts branch events
    *through* k — inclusive, because the only branches that can fault
    (CALL/RET, on their stack access) still retire their branch event.

    ``index_of`` maps instruction address to trace position: traces are not
    contiguous (they follow JMP/CALL targets), so a faulting RIP cannot be
    converted to a position arithmetically.

    ``touched`` is the union, over the trace's instructions, of
    register-index bits read or written (``instr_register_accesses``
    semantics, so RIP is excluded).  The dispatch loop uses it while an
    injection watch is live: a trace that never touches the watched
    register cannot resolve the watch, so it may run translated with the
    watch left pending — bit-identical to interpreting it one instruction
    at a time.
    """

    __slots__ = (
        "addr", "addrs", "loads_before", "stores_before", "branches_through",
        "asserts_through", "index_of", "touched", "source",
    )

    def __init__(
        self,
        addr: int,
        addrs: tuple[int, ...],
        loads_before: tuple[int, ...],
        stores_before: tuple[int, ...],
        branches_through: tuple[int, ...],
        asserts_through: tuple[int, ...],
        index_of: dict[int, int],
        touched: int,
        source: str,
    ) -> None:
        self.addr = addr
        self.addrs = addrs
        self.loads_before = loads_before
        self.stores_before = stores_before
        self.branches_through = branches_through
        self.asserts_through = asserts_through
        self.index_of = index_of
        self.touched = touched
        self.source = source


def _src_expr(ins: Instr) -> str:
    return f"rvals[{ins.src_index}]" if ins.src_is_reg else str(ins.src_imm)


#: cond_table value -> condition code name (tables are distinct per code).
_TABLE_TO_CODE = {v: k for k, v in CONDITION_TABLES.items()}

# Fused branch predicates: when a JCC consumes a *pending* (not yet
# materialized) flag update, the branch decision is computed directly from
# the captured operands instead of packing and re-testing RFLAGS.  Keyed by
# pending kind, then condition code; ``{b}`` is the captured right operand,
# ``{S}`` the sign bit, ``{M}`` the 64-bit mask.  ``_w`` is the un-truncated
# arithmetic result, ``_a`` the left operand, ``_r`` the masked logic result.
# Signed compares use the classic order-preserving bias ``x ^ 2**63``.
# Conditions without an entry (and the constant-outcome logic ones)
# materialize the flags and fall back to the truth-table test.
_SUB_PREDS = {
    "e": "_a == {b}", "ne": "_a != {b}",
    "b": "_a < {b}", "ae": "_a >= {b}",
    "be": "_a <= {b}", "a": "_a > {b}",
    "l": "(_a ^ {S}) < ({b} ^ {S})", "ge": "(_a ^ {S}) >= ({b} ^ {S})",
    "le": "(_a ^ {S}) <= ({b} ^ {S})", "g": "(_a ^ {S}) > ({b} ^ {S})",
    "s": "_w & {S}", "ns": "not _w & {S}",
}
_ADD_PREDS = {
    "e": "not _w & {M}", "ne": "_w & {M}",
    "s": "_w & {S}", "ns": "not _w & {S}",
    "b": "_w > {M}", "ae": "_w <= {M}",
}
_LOGIC_PREDS = {  # CF = OF = 0, so l/ge collapse to SF and g/le to ZF|SF
    "e": "not _r", "ne": "_r",
    "s": "_r & {S}", "ns": "not _r & {S}",
    "l": "_r & {S}", "ge": "not _r & {S}",
    "g": "0 < _r < {S}", "le": "not 0 < _r < {S}",
    "be": "not _r", "a": "_r",
}
_PRED_TABLES = {"sub": _SUB_PREDS, "add": _ADD_PREDS, "logic": _LOGIC_PREDS}


def _push_word(mem_write, rvals, value: int, addr: int) -> None:
    """PUSH's stack half: write below RSP, #SS on fault, then commit RSP."""
    s = (rvals[_I_RSP] - 8) & MASK64
    try:
        mem_write(s, value, addr)
    except HardwareException as exc:
        raise_stack_fault(exc)
    rvals[_I_RSP] = s


def _pop_word(mem_read, rvals, addr: int) -> int:
    """POP's stack half: read at RSP, #SS on fault, then commit RSP."""
    s = rvals[_I_RSP]
    try:
        value = mem_read(s, addr)
    except HardwareException as exc:
        raise_stack_fault(exc)
    rvals[_I_RSP] = (s + 8) & MASK64
    return value


#: Flag-writing ops that cannot fault: these *kill* an earlier pending flag
#: update (it is overwritten before anything can observe it).
_FLAG_KILLERS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR,
    Op.CMP, Op.TEST, Op.INC, Op.DEC,
})

#: Ops transparent to flag liveness: they neither read, write, nor expose
#: flags (cannot fault, so no side exit can observe machine state at them).
_FLAG_TRANSPARENT = frozenset({Op.MOV, Op.LEA, Op.NOP})


#: Retired addresses per combined hash-fold statement (bounds both the
#: generated expression size and the bignum growth of the unmasked chain).
_FOLD_GROUP = 16

_IND = "        "
_IND2 = "            "


class _Emitter:
    """Generated-source builder with deferred flags and grouped hash folds.

    ``pending`` is the most recent flag write whose RFLAGS materialization
    has not been emitted yet: ``("add"|"sub", b_expr)`` over the temps
    ``_w``/``_a``, or ``("logic", None)`` over ``_r``.  It materializes — a
    single ``add_flags``/``sub_flags``/``update_flags_logic`` call, the same
    helpers the interpreter uses — before anything that can observe
    architectural flags (a faulting op, a non-fused conditional, an exit),
    and is silently dropped when another flag writer kills it first.  A
    fused conditional evaluates its predicate from the temps directly and
    materializes only inside the taken (exit) arm, so steady-state loop
    iterations never pack RFLAGS at all.

    ``folds`` accumulates retired addresses whose FNV-1a fold into ``h`` is
    still pending; they flush as one chained expression (mask deferred to
    the end: XOR and multiply mod 2**64 never propagate high bits downward)
    before each conditional exit and at trace exits.  Mid-trace faults need
    no flushed ``h`` — the dispatch loop refolds from ``meta.addrs``.
    """

    __slots__ = ("out", "pending", "folds")

    def __init__(self) -> None:
        self.out = [
            "def _factory(HWE, AV, V_DE, _push, _pop, _AF, _SF, _LF):",
            "    def _block(rvals, mem_read, mem_write, h):",
        ]
        self.pending: tuple[str, str | None] | None = None
        self.folds: list[int] = []

    def line(self, code: str, indent: str = _IND) -> None:
        self.out.append(indent + code)

    def retire(self, addr: int) -> None:
        """Schedule ``addr``'s fold into the path hash."""
        self.folds.append(addr)
        if len(self.folds) >= _FOLD_GROUP:
            self.flush_folds()

    def flush_folds(self, indent: str = _IND) -> None:
        if not self.folds:
            return
        expr = "h"
        for a in self.folds:
            expr = f"(({expr} ^ {a}) * {_F})"
        self.line(f"h = {expr} & {_M}", indent)
        self.folds.clear()

    def materialize(self, indent: str = _IND, keep: bool = False) -> None:
        """Write the pending flag update into RFLAGS.

        ``keep=True`` (the fused-branch taken arm) leaves the update pending
        on the fall-through path, which did not execute the write.
        """
        p = self.pending
        if p is None:
            return
        kind, b = p
        if kind == "logic":
            self.line(f"rvals[{_I_FL}] = _LF(rvals[{_I_FL}], _r)", indent)
        elif kind == "add":
            self.line(f"rvals[{_I_FL}] = _AF(rvals[{_I_FL}], _w, _a, {b})", indent)
        else:
            self.line(f"rvals[{_I_FL}] = _SF(rvals[{_I_FL}], _w, _a, {b})", indent)
        if not keep:
            self.pending = None

    def exit_(self, rip: int, acct: tuple, indent: str = _IND) -> None:
        """One trace exit: the RIP write plus its baked accounting."""
        n, branches, loads, stores, asserts = acct
        self.line(f"rvals[{_I_RIP}] = {rip & MASK64}", indent)
        self.line(f"return h, {n}, {branches}, {loads}, {stores}, {asserts}", indent)


def _emit_step(em: _Emitter, ins: Instr, addr: int, flags: bool) -> None:
    """Emit the architectural effect of one non-branch instruction.

    With ``flags=False`` the op's RFLAGS update is dead (proven overwritten
    before any observer) and no flag state is captured at all; with
    ``flags=True`` the operands are captured in temps and the update becomes
    the emitter's ``pending`` for later materialization or branch fusion.
    """
    op = ins.op
    src = _src_expr(ins)
    di = ins.dst_index
    if op is Op.MOV:
        em.line(f"rvals[{di}] = {src}")
    elif op is Op.LEA:
        em.line(f"rvals[{di}] = (rvals[{ins.mem_base_index}] + {ins.mem_disp}) & {_M}")
    elif op is Op.NOP:
        pass
    elif op is Op.LOAD:
        em.materialize()
        em.line(
            f"rvals[{di}] = mem_read((rvals[{ins.mem_base_index}]"
            f" + {ins.mem_disp}) & {_M}, {addr})"
        )
    elif op is Op.STORE:
        em.materialize()
        em.line(
            f"mem_write((rvals[{ins.mem_base_index}] + {ins.mem_disp})"
            f" & {_M}, {src}, {addr})"
        )
    elif op is Op.PUSH:
        em.materialize()
        em.line(f"_push(mem_write, rvals, rvals[{ins.src_index}], {addr})")
    elif op is Op.POP:
        em.materialize()
        em.line(f"rvals[{di}] = _pop(mem_read, rvals, {addr})")
    elif op is Op.ADD or op is Op.SUB or op is Op.CMP:
        em.pending = None  # killed: this op overwrites the flags
        sign = "-" if op is not Op.ADD else "+"
        if not flags:
            if op is not Op.CMP:
                em.line(f"rvals[{di}] = (rvals[{di}] {sign} {src}) & {_M}")
            return
        b = src
        if ins.src_is_reg:
            em.line(f"_b = {src}")
            b = "_b"
        em.line(f"_a = rvals[{di}]")
        em.line(f"_w = _a {sign} {b}")
        if op is not Op.CMP:
            em.line(f"rvals[{di}] = _w & {_M}")
        em.pending = ("add" if op is Op.ADD else "sub", b)
    elif op is Op.INC or op is Op.DEC:
        em.pending = None
        sign = "+" if op is Op.INC else "-"
        if not flags:
            em.line(f"rvals[{di}] = (rvals[{di}] {sign} 1) & {_M}")
            return
        em.line(f"_a = rvals[{di}]")
        em.line(f"_w = _a {sign} 1")
        em.line(f"rvals[{di}] = _w & {_M}")
        em.pending = ("add" if op is Op.INC else "sub", "1")
    elif op in (Op.AND, Op.OR, Op.XOR):
        em.pending = None
        sym = {"and": "&", "or": "|", "xor": "^"}[op.value]
        if not flags:
            em.line(f"rvals[{di}] = rvals[{di}] {sym} {src}")
            return
        em.line(f"_r = rvals[{di}] {sym} {src}")
        em.line(f"rvals[{di}] = _r")
        em.pending = ("logic", None)
    elif op is Op.TEST:
        em.pending = None
        if flags:
            em.line(f"_r = rvals[{di}] & {src}")
            em.pending = ("logic", None)
    elif op is Op.IMUL:
        em.pending = None
        if not flags:
            em.line(f"rvals[{di}] = (rvals[{di}] * {src}) & {_M}")
            return
        em.line(f"_r = (rvals[{di}] * {src}) & {_M}")
        em.line(f"rvals[{di}] = _r")
        em.pending = ("logic", None)
    elif op is Op.SHL or op is Op.SHR:
        em.pending = None
        amount = f"({src} & 63)" if ins.src_is_reg else str(ins.src_imm & 63)
        expr = (
            f"(rvals[{di}] << {amount}) & {_M}"
            if op is Op.SHL
            else f"rvals[{di}] >> {amount}"
        )
        if not flags:
            em.line(f"rvals[{di}] = {expr}")
            return
        em.line(f"_r = {expr}")
        em.line(f"rvals[{di}] = _r")
        em.pending = ("logic", None)
    elif op is Op.DIV:
        em.materialize()  # the zero check can fault, exposing flags
        em.line(f"_b = {src}")
        em.line("if _b == 0:")
        em.line(f"    raise HWE(V_DE, {addr}, detail='division by zero')")
        if not flags:
            em.line(f"rvals[{di}] = rvals[{di}] // _b")
            return
        em.line(f"_r = rvals[{di}] // _b")
        em.line(f"rvals[{di}] = _r")
        em.pending = ("logic", None)
    elif op is Op.ASSERT_RANGE:
        aid = ins.assert_id or "<anon>"
        em.materialize()
        em.line(f"_v = rvals[{di}]")
        em.line(f"if not ({ins.lo} <= _v <= {ins.hi}):")
        em.line(
            f"    raise AV({aid!r}, {addr}, _v,"
            f" detail={f'expected [{ins.lo}, {ins.hi}]'!r})"
        )
    elif op is Op.ASSERT_EQ:
        aid = ins.assert_id or "<anon>"
        em.materialize()
        em.line(f"_v = rvals[{di}]")
        em.line(f"if _v != {ins.lo}:")
        em.line(
            f"    raise AV({aid!r}, {addr}, _v,"
            f" detail={f'expected {ins.lo:#x}'!r})"
        )
    elif op is Op.ASSERT_EQ_REG:
        aid = ins.assert_id or "<anon>"
        em.materialize()
        em.line(f"_va = rvals[{di}]")
        em.line(f"_vb = rvals[{ins.src_index}]")
        em.line("if _va != _vb:")
        em.line(
            f"    raise AV({aid!r}, {addr}, _va,"
            " detail=f'redundant copies differ: {_va:#x} != {_vb:#x}')"
        )
    else:  # pragma: no cover - walker admits only TRANSLATABLE_OPS
        raise AssertionError(f"untranslatable op {op} reached the emitter")


#: Flag-writing ops whose update participates in dead-flag elimination.
_FLAG_WRITERS = _FLAG_KILLERS | {Op.DIV}


def compile_block(instructions: tuple[Instr, ...], index: int, base: int):
    """Compile the trace entered at instruction ``index``.

    A trace is the longest statically-predictable instruction path from the
    entry: straight-line code, the fall-through arm of conditional branches,
    and the (always-taken) targets of resolved JMP/CALL.  Taken conditional
    branches and RET leave through mid-trace exits; every exit reports the
    accounting of the path actually retired.

    Returns ``False`` when the entry instruction is not translatable, else
    ``(fn, n_max, n_branches, n_loads, n_stores, n_asserts, meta)`` where the
    counts cover the trace's longest path and ``fn`` has signature
    ``fn(rvals, mem_read, mem_write, h) ->
    (h, n, branches, loads, stores, asserts)`` — the architectural effects
    including the final RIP write, plus the taken exit's retirement deltas.
    """
    # Late import: cpu imports this module at load time, and the accessor is
    # only needed once per compiled trace, never on the hot path.
    from repro.machine.cpu import instr_register_accesses

    n_instrs = len(instructions)
    addrs: list[int] = []
    loads_before: list[int] = []
    stores_before: list[int] = []
    branches_through: list[int] = []
    asserts_through: list[int] = []
    loads = stores = branches = asserts = 0
    touched = 0
    visited: set[int] = set()
    j = index
    open_exit = True

    # Pass 1 — decode: walk the trace once, collecting per-step records
    # (kind, ins, addr, acct) and the retirement prefix arrays.  No code is
    # generated yet; the flag-liveness pass below needs the whole trace.
    steps: list[tuple] = []
    while True:
        if (
            not 0 <= j < n_instrs
            or j in visited
            or len(addrs) >= MAX_BLOCK_INSTRUCTIONS
        ):
            break  # falls through to the open exit at base + j*4
        ins = instructions[j]
        op = ins.op
        if op not in TRANSLATABLE_OPS:
            break
        if ins.is_branch and op is not Op.RET and ins.target is None:
            break  # unresolved control transfer: leave to the interpreter
        addr = base + j * INSTRUCTION_BYTES
        visited.add(j)
        addrs.append(addr)
        loads_before.append(loads)
        stores_before.append(stores)
        loads += OP_MEM_LOADS.get(op, 0)
        stores += OP_MEM_STORES.get(op, 0)
        if ins.is_branch:
            branches += 1
        branches_through.append(branches)
        if op in _ASSERT_OPS:
            asserts += 1
        asserts_through.append(asserts)
        reads, writes = instr_register_accesses(ins)
        for r in reads:
            touched |= 1 << r
        for r in writes:
            touched |= 1 << r
        acct = (len(addrs), branches, loads, stores, asserts)

        if op is Op.JMP or op is Op.CALL:
            t_off = ins.target - base
            if t_off % INSTRUCTION_BYTES:
                # Misaligned target: exit and let the interpreter fault.
                steps.append(("xfer_exit", ins, addr, acct))
                open_exit = False
                break
            steps.append(("xfer", ins, addr, acct))
            j = t_off // INSTRUCTION_BYTES
            continue
        if op is Op.JCC:
            steps.append(("jcc", ins, addr, acct))
            j += 1
            continue
        if op is Op.RET:
            steps.append(("ret", ins, addr, acct))
            open_exit = False
            break
        steps.append(("body", ins, addr, acct))
        j += 1

    if not addrs:
        return False

    # Pass 2 — flag liveness, walked backwards.  A step's RFLAGS update is
    # dead iff a non-faulting flag writer overwrites it before any observer.
    # Observers are everything that can expose architectural state: JCC
    # (reads flags), any exit, and every op that can fault mid-trace (its
    # side exit re-raises into the interpreter's precise state).  MOV/LEA/NOP
    # bodies and continuing JMPs are transparent.
    flags_live = [True] * len(steps)
    live = True  # the trace-end / open exit observes everything
    for k in range(len(steps) - 1, -1, -1):
        kind, ins, _addr, _acct = steps[k]
        op = ins.op
        if kind == "body":
            if op in _FLAG_WRITERS:
                flags_live[k] = live
            if op in _FLAG_KILLERS:
                live = False
            elif op not in _FLAG_TRANSPARENT:
                live = True  # can fault: earlier flag state is observable
        elif kind == "xfer" and op is Op.JMP:
            pass  # transparent: no fault, no exit, no flag access
        else:  # jcc, ret, call, and every exit kind observe flags/state
            live = True

    # Pass 3 — emit.
    em = _Emitter()
    for k, (kind, ins, addr, acct) in enumerate(steps):
        if kind == "body":
            _emit_step(em, ins, addr, flags_live[k])
            em.retire(addr)
        elif kind == "xfer":
            if ins.op is Op.CALL:
                em.materialize()  # the return-address push can fault
                em.line(
                    f"_push(mem_write, rvals,"
                    f" {(addr + INSTRUCTION_BYTES) & MASK64}, {addr})"
                )
            em.retire(addr)
        elif kind == "xfer_exit":
            if ins.op is Op.CALL:
                em.materialize()
                em.line(
                    f"_push(mem_write, rvals,"
                    f" {(addr + INSTRUCTION_BYTES) & MASK64}, {addr})"
                )
            em.retire(addr)
            em.materialize()
            em.flush_folds()
            em.exit_(ins.target, acct)
        elif kind == "jcc":
            em.retire(addr)  # the branch retires on both arms
            pred = None
            if em.pending is not None:
                code = _TABLE_TO_CODE.get(ins.cond_table)
                tmpl = _PRED_TABLES[em.pending[0]].get(code) if code else None
                if tmpl is not None:
                    pred = tmpl.format(b=em.pending[1], S=_SIGN, M=_M)
            em.flush_folds()
            if pred is None:
                em.materialize()
                em.line(f"_f = rvals[{_I_FL}]")
                em.line(
                    f"if ({ins.cond_table} >> ((_f & 1) | ((_f >> 5) & 6)"
                    " | ((_f >> 8) & 8))) & 1:"
                )
                em.exit_(ins.target, acct, indent=_IND2)
            else:
                em.line(f"if {pred}:")
                em.materialize(indent=_IND2, keep=True)
                em.exit_(ins.target, acct, indent=_IND2)
        else:  # ret
            em.materialize()  # the return-target pop can fault
            em.line(f"_t = _pop(mem_read, rvals, {addr})")
            em.retire(addr)
            em.flush_folds()
            em.line(f"rvals[{_I_RIP}] = _t")
            n_through, n_br, n_ld, n_st, n_ak = acct
            em.line(f"return h, {n_through}, {n_br}, {n_ld}, {n_st}, {n_ak}")
    if open_exit:
        em.materialize()
        em.flush_folds()
        em.exit_(
            base + j * INSTRUCTION_BYTES,
            (len(addrs), branches, loads, stores, asserts),
        )
    em.out.append("    return _block")
    source = "\n".join(em.out)
    namespace: dict = {}
    exec(compile(source, f"<tblock@{addrs[0]:#x}>", "exec"), namespace)
    fn = namespace["_factory"](
        HardwareException, AssertionViolation, Vector.DIVIDE_ERROR,
        _push_word, _pop_word, add_flags, sub_flags, update_flags_logic,
    )
    addrs_t = tuple(addrs)
    meta = BlockMeta(
        addr=addrs_t[0],
        addrs=addrs_t,
        loads_before=tuple(loads_before),
        stores_before=tuple(stores_before),
        branches_through=tuple(branches_through),
        asserts_through=tuple(asserts_through),
        index_of={a: k for k, a in enumerate(addrs_t)},
        touched=touched,
        source=source,
    )
    return (fn, len(addrs_t), branches, loads, stores, asserts, meta)


class ProgramTranslation:
    """Lazily compiled basic blocks of one program text.

    ``blocks[i]`` is ``None`` (not yet compiled), ``False`` (entry ``i`` is
    not translatable), or the ``compile_block`` entry tuple.  One instance is
    shared by every :class:`~repro.machine.isa.Program` whose text digest
    matches, so blocks compile once per process, not once per hypervisor.
    """

    __slots__ = ("base", "instructions", "blocks", "digest", "heat",
                 "compiled_blocks", "uncompilable_blocks")

    def __init__(self, program: Program) -> None:
        self.base = program.base
        self.instructions = program.instructions
        self.blocks: list = [None] * len(program.instructions)
        #: Dispatch counts for not-yet-compiled entries; an entry compiles
        #: only once its heat reaches :data:`COMPILE_THRESHOLD`, so one-off
        #: side entries (e.g. post-injection resynchronization points) never
        #: pay the trace-compilation cost.
        self.heat = [0] * len(program.instructions)
        self.digest = program.text_digest()
        self.compiled_blocks = 0
        self.uncompilable_blocks = 0

    def compile_block(self, index: int):
        """Compile (and memoize) the block entered at instruction ``index``."""
        entry = compile_block(self.instructions, index, self.base)
        if entry is False:
            self.uncompilable_blocks += 1
        else:
            self.compiled_blocks += 1
        self.blocks[index] = entry
        return entry

    def block_at(self, address: int):
        """Entry tuple for the block at byte ``address`` (compiling it on
        demand), or ``None`` when the address is not a translatable entry."""
        offset = address - self.base
        if offset < 0 or offset % INSTRUCTION_BYTES:
            return None
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            return None
        entry = self.blocks[index]
        if entry is None:
            entry = self.compile_block(index)
        return entry if entry is not False else None


class TranslationCache:
    """Process-wide registry of program translations, keyed by text digest."""

    def __init__(self, max_programs: int = 64) -> None:
        self.max_programs = max_programs
        self._programs: dict[str, ProgramTranslation] = {}
        #: Programs that attached to an already-compiled translation.
        self.hits = 0
        #: Programs whose digest was seen for the first time.
        self.misses = 0
        # Process-wide execution mix, accumulated by every core's dispatch
        # loop (per-core copies live on CPUCore; these survive hypervisor
        # teardown so campaign telemetry can report one process total).
        self.translated_instructions = 0
        self.interpreted_instructions = 0
        self.block_executions = 0
        #: Blocks compiled inside a warming pass (the pool-worker
        #: initializer); compiles beyond this count happened cold, on a
        #: campaign's critical path.  A monotone counter, so snapshot
        #: deltas stay meaningful even when warming runs mid-process.
        self.blocks_prewarmed = 0

    def mark_prewarmed(self, since: int = 0) -> None:
        """Credit blocks compiled after the ``since`` count to warming.

        Callers snapshot ``stats()["blocks_compiled"]`` before warming and
        pass it here, so only the warming pass's own compiles count — in a
        fresh pool worker ``since`` is simply 0.
        """
        compiled = sum(t.compiled_blocks for t in self._programs.values())
        self.blocks_prewarmed += max(0, compiled - since)

    def get(self, program: Program) -> ProgramTranslation:
        """The (shared) translation for ``program``, creating it on miss."""
        translation = program._translation
        if translation is not None:
            return translation
        digest = program.text_digest()
        translation = self._programs.get(digest)
        if translation is None:
            self.misses += 1
            if len(self._programs) >= self.max_programs:
                # Campaigns use a handful of images; a full registry means
                # churn (e.g. fuzzing), where stale entries have no future.
                self._programs.clear()
            translation = ProgramTranslation(program)
            self._programs[digest] = translation
        else:
            self.hits += 1
        program._translation = translation
        return translation

    def stats(self) -> dict[str, int | float]:
        """Process-wide counters: program attaches, compiled blocks, and the
        translated/interpreted execution mix with the block-cache hit rate
        (share of block executions served by an already-compiled block)."""
        compiled = sum(t.compiled_blocks for t in self._programs.values())
        executions = self.block_executions
        return {
            "programs": len(self._programs),
            "program_hits": self.hits,
            "program_misses": self.misses,
            "blocks_compiled": compiled,
            "blocks_prewarmed": min(self.blocks_prewarmed, compiled),
            "blocks_compiled_cold": max(0, compiled - self.blocks_prewarmed),
            "translated_instructions": self.translated_instructions,
            "interpreted_instructions": self.interpreted_instructions,
            "block_executions": executions,
            "block_hit_rate": (
                (executions - compiled) / executions if executions > compiled else 0.0
            ),
        }


#: The process-wide cache used by every core (see ``CPUCore._dispatch``).
CACHE = TranslationCache()


def translation_for(program: Program) -> ProgramTranslation:
    """Shared :class:`ProgramTranslation` for ``program`` (cached)."""
    return CACHE.get(program)
