"""Two-pass assembler for the toy ISA.

Handler code is authored through either a fluent builder API (used by the
hypervisor image templates in :mod:`repro.hypervisor.handlers`) or a small
text syntax (used in tests and examples)::

    entry:
        mov rax, 5
        load rbx, [rbp+8]
        add rax, rbx
        cmp rax, 100
        jl entry
        assert_range rax, 0, 255, bound_check
        vmentry

Pass one records instructions and label positions; pass two resolves every
label to an absolute byte address.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.machine.flags import CONDITION_CODES
from repro.machine.isa import INSTRUCTION_BYTES, Imm, Instr, Mem, Op, Program, Reg
from repro.machine.registers import ALL_REGISTERS

__all__ = ["Assembler", "parse_asm"]

_REGISTER_NAMES = frozenset(ALL_REGISTERS)


def _reg(name: str) -> Reg:
    if name not in _REGISTER_NAMES:
        raise AssemblyError(f"unknown register {name!r}")
    return Reg(name)


def _operand(token: str | int | Reg | Imm) -> Reg | Imm:
    """Coerce a builder argument into a register or immediate operand."""
    if isinstance(token, (Reg, Imm)):
        return token
    if isinstance(token, int):
        return Imm(token)
    if token in _REGISTER_NAMES:
        return Reg(token)
    raise AssemblyError(f"cannot interpret operand {token!r}")


class Assembler:
    """Accumulates instructions and labels; :meth:`assemble` resolves them."""

    def __init__(self, base: int = 0) -> None:
        if base % INSTRUCTION_BYTES:
            raise AssemblyError(f"base {base:#x} must be {INSTRUCTION_BYTES}-byte aligned")
        self.base = base
        self._instrs: list[Instr] = []
        self._labels: dict[str, int] = {}

    # -- layout ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instrs)

    @property
    def here(self) -> int:
        """Byte address of the next instruction to be emitted."""
        return self.base + len(self._instrs) * INSTRUCTION_BYTES

    def label(self, name: str) -> str:
        """Define ``name`` at the current position; returns the name."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return name

    def emit(self, instr: Instr) -> None:
        self._instrs.append(instr)

    # -- data movement --------------------------------------------------------

    def mov(self, dst: str, src: str | int) -> None:
        self.emit(Instr(Op.MOV, dst=_reg(dst), src=_operand(src)))

    def load(self, dst: str, base: str, disp: int = 0) -> None:
        self.emit(Instr(Op.LOAD, dst=_reg(dst), src=Mem(_reg(base), disp)))

    def store(self, base: str, disp: int, src: str | int) -> None:
        self.emit(Instr(Op.STORE, dst=Mem(_reg(base), disp), src=_operand(src)))

    def lea(self, dst: str, base: str, disp: int = 0) -> None:
        self.emit(Instr(Op.LEA, dst=_reg(dst), src=Mem(_reg(base), disp)))

    def push(self, src: str) -> None:
        self.emit(Instr(Op.PUSH, src=_reg(src)))

    def pop(self, dst: str) -> None:
        self.emit(Instr(Op.POP, dst=_reg(dst)))

    # -- ALU --------------------------------------------------------------------

    def _alu(self, op: Op, dst: str, src: str | int) -> None:
        self.emit(Instr(op, dst=_reg(dst), src=_operand(src)))

    def add(self, dst: str, src: str | int) -> None:
        self._alu(Op.ADD, dst, src)

    def sub(self, dst: str, src: str | int) -> None:
        self._alu(Op.SUB, dst, src)

    def and_(self, dst: str, src: str | int) -> None:
        self._alu(Op.AND, dst, src)

    def or_(self, dst: str, src: str | int) -> None:
        self._alu(Op.OR, dst, src)

    def xor(self, dst: str, src: str | int) -> None:
        self._alu(Op.XOR, dst, src)

    def imul(self, dst: str, src: str | int) -> None:
        self._alu(Op.IMUL, dst, src)

    def div(self, dst: str, src: str) -> None:
        self._alu(Op.DIV, dst, src)

    def shl(self, dst: str, amount: int | str) -> None:
        self._alu(Op.SHL, dst, amount)

    def shr(self, dst: str, amount: int | str) -> None:
        self._alu(Op.SHR, dst, amount)

    def cmp(self, a: str, b: str | int) -> None:
        self._alu(Op.CMP, a, b)

    def test(self, a: str, b: str | int) -> None:
        self._alu(Op.TEST, a, b)

    def inc(self, dst: str) -> None:
        self.emit(Instr(Op.INC, dst=_reg(dst)))

    def dec(self, dst: str) -> None:
        self.emit(Instr(Op.DEC, dst=_reg(dst)))

    # -- control flow -----------------------------------------------------------

    def jmp(self, label: str) -> None:
        self.emit(Instr(Op.JMP, label=label))

    def jcc(self, cond: str, label: str) -> None:
        if cond not in CONDITION_CODES:
            raise AssemblyError(f"unknown condition code {cond!r}")
        self.emit(Instr(Op.JCC, cond=cond, label=label))

    def call(self, label: str) -> None:
        self.emit(Instr(Op.CALL, label=label))

    def ret(self) -> None:
        self.emit(Instr(Op.RET))

    # -- special ------------------------------------------------------------------

    def rep_movs(self) -> None:
        self.emit(Instr(Op.REP_MOVS))

    def rdtsc(self) -> None:
        self.emit(Instr(Op.RDTSC))

    def cpuid(self) -> None:
        self.emit(Instr(Op.CPUID))

    def assert_range(self, reg: str, lo: int, hi: int, assert_id: str) -> None:
        self.emit(Instr(Op.ASSERT_RANGE, dst=_reg(reg), lo=lo, hi=hi, assert_id=assert_id))

    def assert_eq(self, reg: str, value: int, assert_id: str) -> None:
        self.emit(Instr(Op.ASSERT_EQ, dst=_reg(reg), lo=value, hi=value, assert_id=assert_id))

    def assert_eq_reg(self, a: str, b: str, assert_id: str) -> None:
        """Redundancy check: the two registers must hold the same value
        (the Section VI duplicate-and-verify proposal)."""
        self.emit(Instr(Op.ASSERT_EQ_REG, dst=_reg(a), src=_reg(b), assert_id=assert_id))

    def nop(self) -> None:
        self.emit(Instr(Op.NOP))

    def vmentry(self) -> None:
        self.emit(Instr(Op.VMENTRY))

    def halt(self) -> None:
        self.emit(Instr(Op.HALT))

    # -- assembly -------------------------------------------------------------------

    def assemble(self) -> Program:
        """Resolve labels and produce an executable :class:`Program`."""
        labels = {
            name: self.base + idx * INSTRUCTION_BYTES
            for name, idx in self._labels.items()
        }
        resolved: list[Instr] = []
        for instr in self._instrs:
            if instr.label is not None:
                if instr.label not in labels:
                    raise AssemblyError(f"unresolved label {instr.label!r}")
                resolved.append(
                    Instr(
                        instr.op,
                        dst=instr.dst,
                        src=instr.src,
                        target=labels[instr.label],
                        cond=instr.cond,
                        assert_id=instr.assert_id,
                        lo=instr.lo,
                        hi=instr.hi,
                    )
                )
            else:
                resolved.append(instr)
        return Program(self.base, resolved, labels)


# -- text syntax -----------------------------------------------------------------

_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_MEM_RE = re.compile(r"^\[([a-z0-9]+)(?:\s*([+-])\s*(0[xX][0-9a-fA-F]+|\d+))?\]$")
_JCC_RE = re.compile(r"^j(" + "|".join(CONDITION_CODES) + r")$")


def _split_operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"expected integer, got {token!r}") from None


def _parse_mem(token: str) -> tuple[str, int]:
    m = _MEM_RE.match(token)
    if not m:
        raise AssemblyError(f"expected memory operand like [rbp+8], got {token!r}")
    base, sign, disp = m.group(1), m.group(2), m.group(3)
    offset = int(disp, 0) if disp else 0
    return base, -offset if sign == "-" else offset


def parse_asm(text: str, base: int = 0) -> Program:
    """Assemble text-syntax source into a :class:`Program`."""
    asm = Assembler(base=base)
    for raw_line in text.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            asm.label(label_match.group(1))
            continue
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        ops = _split_operands(rest)
        jcc = _JCC_RE.match(mnemonic)
        if jcc:
            _expect(ops, 1, line)
            asm.jcc(jcc.group(1), ops[0])
            continue
        _dispatch_text(asm, mnemonic, ops, line)
    return asm.assemble()


def _expect(ops: list[str], n: int, line: str) -> None:
    if len(ops) != n:
        raise AssemblyError(f"expected {n} operand(s) in {line!r}, got {len(ops)}")


def _reg_or_imm(token: str) -> str | int:
    return token if token in _REGISTER_NAMES else _parse_int(token)


def _dispatch_text(asm: Assembler, mnemonic: str, ops: list[str], line: str) -> None:
    if mnemonic == "mov":
        _expect(ops, 2, line)
        asm.mov(ops[0], _reg_or_imm(ops[1]))
    elif mnemonic == "load":
        _expect(ops, 2, line)
        base, disp = _parse_mem(ops[1])
        asm.load(ops[0], base, disp)
    elif mnemonic == "store":
        _expect(ops, 2, line)
        base, disp = _parse_mem(ops[0])
        asm.store(base, disp, _reg_or_imm(ops[1]))
    elif mnemonic == "lea":
        _expect(ops, 2, line)
        base, disp = _parse_mem(ops[1])
        asm.lea(ops[0], base, disp)
    elif mnemonic in ("add", "sub", "xor", "imul", "cmp", "test"):
        _expect(ops, 2, line)
        getattr(asm, mnemonic)(ops[0], _reg_or_imm(ops[1]))
    elif mnemonic in ("and", "or"):
        _expect(ops, 2, line)
        getattr(asm, mnemonic + "_")(ops[0], _reg_or_imm(ops[1]))
    elif mnemonic in ("shl", "shr"):
        _expect(ops, 2, line)
        getattr(asm, mnemonic)(ops[0], _reg_or_imm(ops[1]))
    elif mnemonic == "div":
        _expect(ops, 2, line)
        asm.div(ops[0], ops[1])
    elif mnemonic in ("inc", "dec", "push", "pop"):
        _expect(ops, 1, line)
        getattr(asm, mnemonic)(ops[0])
    elif mnemonic in ("jmp", "call"):
        _expect(ops, 1, line)
        getattr(asm, mnemonic)(ops[0])
    elif mnemonic in ("ret", "rep_movs", "rdtsc", "cpuid", "nop", "vmentry", "halt"):
        _expect(ops, 0, line)
        getattr(asm, mnemonic)()
    elif mnemonic == "assert_range":
        _expect(ops, 4, line)
        asm.assert_range(ops[0], _parse_int(ops[1]), _parse_int(ops[2]), ops[3])
    elif mnemonic == "assert_eq":
        _expect(ops, 3, line)
        asm.assert_eq(ops[0], _parse_int(ops[1]), ops[2])
    elif mnemonic == "assert_eq_reg":
        _expect(ops, 3, line)
        asm.assert_eq_reg(ops[0], ops[1], ops[2])
    else:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r} in {line!r}")
