"""Architectural register file.

Models the x86-64 architectural register state that the paper's fault model
targets (Section V.B): the sixteen general-purpose registers, the instruction
pointer, the stack pointer, and the flags register.  All values are 64-bit
unsigned integers; arithmetic elsewhere wraps modulo 2**64.

The register file is the primary fault-injection surface: a soft error is a
single bit flip in one of these registers (:meth:`RegisterFile.flip_bit`).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import MachineConfigError

__all__ = [
    "GPR_NAMES",
    "ALL_REGISTERS",
    "INJECTABLE_REGISTERS",
    "MASK64",
    "RegisterFile",
]

MASK64 = (1 << 64) - 1

#: The sixteen x86-64 general-purpose registers, in conventional order.
#: RSP is part of this file but is also tracked in INJECTABLE_REGISTERS
#: separately because flips there have distinctive (stack-corrupting) effects.
GPR_NAMES: tuple[str, ...] = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Every architected register, including the instruction pointer and flags.
ALL_REGISTERS: tuple[str, ...] = GPR_NAMES + ("rip", "rflags")

#: Registers eligible for fault injection, matching the paper's fault model:
#: "general purpose registers, instruction and stack pointers and flags".
INJECTABLE_REGISTERS: tuple[str, ...] = ALL_REGISTERS

_REG_INDEX = {name: i for i, name in enumerate(ALL_REGISTERS)}


class RegisterFile:
    """A flat array of 64-bit architectural registers.

    Registers are addressed by name (``"rax"``) or by architectural index.
    The file exposes :meth:`flip_bit` as the soft-error primitive and
    :meth:`snapshot`/:meth:`restore` for golden-run comparison and the
    recovery model's critical-state copy.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[int] = [0] * len(ALL_REGISTERS)

    # -- basic access -------------------------------------------------------

    @staticmethod
    def index_of(name: str) -> int:
        """Return the architectural index of register ``name``."""
        try:
            return _REG_INDEX[name]
        except KeyError:
            raise MachineConfigError(f"unknown register {name!r}") from None

    def read(self, name: str) -> int:
        """Read a register by name."""
        return self._values[_REG_INDEX[name]]

    def write(self, name: str, value: int) -> None:
        """Write a register by name (value is truncated to 64 bits)."""
        self._values[_REG_INDEX[name]] = value & MASK64

    @property
    def values(self) -> list[int]:
        """The backing value list, for the CPU dispatch loop's hot path.

        Callers indexing this directly must write 64-bit-masked values; the
        list object is replaced wholesale by :meth:`restore`/:meth:`reset`,
        so hoisted references must not outlive a single execution.
        """
        return self._values

    def read_index(self, index: int) -> int:
        """Read a register by architectural index (fast path for the CPU)."""
        return self._values[index]

    def write_index(self, index: int, value: int) -> None:
        """Write a register by architectural index."""
        self._values[index] = value & MASK64

    def __getitem__(self, name: str) -> int:
        return self.read(name)

    def __setitem__(self, name: str, value: int) -> None:
        self.write(name, value)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return zip(ALL_REGISTERS, self._values)

    # -- fault-injection & checkpoint primitives ----------------------------

    def flip_bit(self, name: str, bit: int) -> int:
        """Flip a single bit of register ``name`` and return the new value.

        This is the soft-error model of the paper (single bit flip in the
        architectural register state).
        """
        if not 0 <= bit < 64:
            raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        idx = _REG_INDEX[name]
        self._values[idx] ^= 1 << bit
        return self._values[idx]

    def snapshot(self) -> tuple[int, ...]:
        """Return an immutable copy of the full register state."""
        return tuple(self._values)

    def restore(self, snap: tuple[int, ...]) -> None:
        """Restore register state captured by :meth:`snapshot`."""
        if len(snap) != len(ALL_REGISTERS):
            raise MachineConfigError(
                f"snapshot has {len(snap)} entries, expected {len(ALL_REGISTERS)}"
            )
        self._values = [v & MASK64 for v in snap]

    def reset(self) -> None:
        """Zero every register."""
        self._values = [0] * len(ALL_REGISTERS)

    def diff(self, other: "RegisterFile") -> dict[str, tuple[int, int]]:
        """Return ``{name: (self_value, other_value)}`` for differing registers."""
        out: dict[str, tuple[int, int]] = {}
        for name, a, b in zip(ALL_REGISTERS, self._values, other._values):
            if a != b:
                out[name] = (a, b)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{n}={v:#x}" for n, v in self if v)
        return f"RegisterFile({regs})"
