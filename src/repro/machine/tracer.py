"""Dynamic instruction tracing.

The tracer supplies two measurements the evaluation needs:

* **Detection latency** (Fig. 10) — "the number of instructions between error
  activation and detection".  The tracer's running dynamic-instruction index
  timestamps both events.

* **Golden-run control-flow diffing** — the trace of executed instruction
  addresses lets the campaign distinguish *incorrect control flow* (valid but
  different path, Fig. 5) from data-only corruption, which is what separates
  transition-detectable faults from the Table II undetected categories.

Tracing full address sequences for tens of thousands of injection runs would
be slow and memory-hungry, so the tracer supports a ``light`` mode recording
only the dynamic count plus an order-sensitive path hash.
"""

from __future__ import annotations

__all__ = ["Tracer"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


class Tracer:
    """Records the dynamic instruction stream of one execution."""

    __slots__ = ("light", "count", "path_hash", "addresses", "enabled")

    def __init__(self, *, light: bool = True) -> None:
        self.light = light
        self.enabled = True
        self.count = 0
        self.path_hash = _FNV_OFFSET
        #: Executed instruction addresses (full mode only).
        self.addresses: list[int] = []

    def record(self, address: int) -> None:
        """Record the retirement of the instruction at ``address``."""
        if not self.enabled:
            return
        self.count += 1
        # FNV-1a over the address stream: order-sensitive, collision-resistant
        # enough to distinguish control-flow paths.
        h = self.path_hash ^ (address & _MASK64)
        self.path_hash = (h * _FNV_PRIME) & _MASK64
        if not self.light:
            self.addresses.append(address)

    def record_bulk(self, address: int, n: int) -> None:
        """Record ``n`` repetitions at ``address`` (rep-style iterations).

        Counts toward the dynamic instruction total and perturbs the path
        hash as a function of both the address and the repeat count, so two
        executions differing only in iteration count hash differently.
        """
        if not self.enabled or n <= 0:
            return
        self.count += n
        h = self.path_hash ^ ((address ^ (n * 0x9E3779B97F4A7C15)) & _MASK64)
        self.path_hash = (h * _FNV_PRIME) & _MASK64
        if not self.light:
            self.addresses.extend([address] * n)

    def reset(self) -> None:
        self.count = 0
        self.path_hash = _FNV_OFFSET
        self.addresses.clear()

    def snapshot(self) -> tuple[int, int, tuple[int, ...]]:
        """Capture trace state for a mid-run core checkpoint."""
        return (self.count, self.path_hash, tuple(self.addresses))

    def restore(self, snap: tuple[int, int, tuple[int, ...]]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.count = snap[0]
        self.path_hash = snap[1]
        self.addresses[:] = snap[2]

    def same_path(self, other: "Tracer") -> bool:
        """True when both traces followed the same dynamic path."""
        return self.count == other.count and self.path_hash == other.path_hash
