"""Execution debugging: annotated traces and fault forensics.

Tooling a systems project needs when an injection behaves unexpectedly:
re-run an execution with full tracing and render a disassembled, annotated
instruction log; or diff a golden/faulty trace pair to the first divergent
instruction (how campaign anomalies get root-caused).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationEvent
from repro.machine.cpu import CPUCore
from repro.machine.isa import Program
from repro.machine.registers import ALL_REGISTERS
from repro.machine.translator import translation_for

__all__ = [
    "TraceEntry",
    "ExecutionTrace",
    "disassemble_block",
    "trace_execution",
    "diff_traces",
]


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction with its address and rendering."""

    index: int
    address: int
    text: str


@dataclass(frozen=True)
class ExecutionTrace:
    """A fully-expanded dynamic trace plus the terminal event."""

    entries: tuple[TraceEntry, ...]
    final_registers: tuple[int, ...]
    event: str  # "vmentry", "halt", or the exception description

    def __len__(self) -> int:
        return len(self.entries)

    def render(self, *, limit: int = 200, labels: dict[int, str] | None = None) -> str:
        """Human-readable listing (truncated to ``limit`` lines)."""
        by_addr: dict[int, str] = {}
        if labels:
            by_addr = {addr: name for name, addr in labels.items()} if all(
                isinstance(v, int) for v in labels.values()
            ) else dict(labels)
        lines: list[str] = []
        for entry in self.entries[:limit]:
            label = by_addr.get(entry.address)
            prefix = f"{label}:\n" if label else ""
            lines.append(f"{prefix}  [{entry.index:>5}] {entry.address:#010x}  {entry.text}")
        if len(self.entries) > limit:
            lines.append(f"  ... {len(self.entries) - limit} more instructions")
        lines.append(f"  => {self.event}")
        return "\n".join(lines)


def trace_execution(
    cpu: CPUCore,
    program: Program,
    entry: int,
    *,
    max_instructions: int = 50_000,
) -> ExecutionTrace:
    """Execute with full tracing enabled and return the annotated trace.

    The core's tracer is temporarily switched to full (address-recording)
    mode; the pre-existing mode is restored afterwards.
    """
    was_light = cpu.tracer.light
    cpu.tracer.light = False
    cpu.tracer.reset()
    event = "vmentry"
    try:
        result = cpu.run(program, entry, max_instructions=max_instructions)
        event = result.exit_op.value
    except SimulationEvent as exc:
        event = f"{type(exc).__name__}: {exc}"
    finally:
        addresses = tuple(cpu.tracer.addresses)
        cpu.tracer.light = was_light
    entries = tuple(
        TraceEntry(
            index=i,
            address=addr,
            text=str(instr) if (instr := program.instruction_at(addr)) else "<invalid>",
        )
        for i, addr in enumerate(addresses)
    )
    return ExecutionTrace(
        entries=entries,
        final_registers=cpu.regs.snapshot(),
        event=event,
    )


def disassemble_block(
    program: Program, address: int, *, show_source: bool = False
) -> str:
    """Disassemble the translated basic block entered at byte ``address``.

    Renders each covered instruction next to its address — the exact
    straight-line run the block's compiled closure retires — plus the block's
    batched accounting (instruction/branch/load/store/assert deltas).  With
    ``show_source`` the generated Python is appended, so a suspected
    cache-semantics mismatch can be audited line by line against the
    interpreter.  Returns a note instead when the address does not start a
    translatable block.
    """
    entry = translation_for(program).block_at(address)
    if entry is None:
        return f"{address:#010x}: not a translatable block entry"
    _fn, n, n_br, n_loads, n_stores, n_asserts, meta = entry
    lines = [
        f"block @{meta.addr:#010x}: {n} instructions, "
        f"{n_br} branches, {n_loads} loads, {n_stores} stores, "
        f"{n_asserts} assertion checks"
    ]
    for addr in meta.addrs:
        instr = program.instruction_at(addr)
        lines.append(f"  {addr:#010x}  {instr if instr is not None else '<invalid>'}")
    if show_source:
        lines.append("generated source:")
        lines.extend("  " + line for line in meta.source.splitlines())
    return "\n".join(lines)


def diff_traces(golden: ExecutionTrace, faulty: ExecutionTrace) -> str:
    """Report where two traces first diverge (fault forensics)."""
    n = min(len(golden), len(faulty))
    for i in range(n):
        if golden.entries[i].address != faulty.entries[i].address:
            return "\n".join(
                [
                    f"divergence at dynamic instruction {i}:",
                    f"  golden: {golden.entries[i].address:#010x}  {golden.entries[i].text}",
                    f"  faulty: {faulty.entries[i].address:#010x}  {faulty.entries[i].text}",
                ]
            )
    if len(golden) != len(faulty):
        longer, name = (golden, "golden") if len(golden) > len(faulty) else (faulty, "faulty")
        return (
            f"paths agree for {n} instructions; {name} continues for "
            f"{len(longer) - n} more (ends with {longer.event})"
        )
    if golden.event != faulty.event:
        return f"identical paths, different terminal events: {golden.event} vs {faulty.event}"
    reg_diffs = [
        f"  {name}: {a:#x} -> {b:#x}"
        for name, a, b in zip(
            ALL_REGISTERS, golden.final_registers, faulty.final_registers
        )
        if a != b
    ]
    if reg_diffs:
        return "identical paths and events; final registers differ:\n" + "\n".join(reg_diffs)
    return "traces are identical"
