"""Lock-step batched execution of faulty twins.

Every faulty twin of a golden group runs the *same* activation from the
*same* machine state; a twin's column of architectural state stays
bit-identical to the golden column until its flipped register first
matters.  Advancing N still-identical twins in lock-step is therefore
the identity on N-1 of them: one decode/dispatch of the golden stream
drives every column at once.  This module exploits that degeneracy
head-on — the batch replays the golden activation **once** in
full-trace mode and lowers the shared instruction stream into
per-register *read/write position columns* (numpy arrays of dynamic
indices).  Each twin's divergence point then falls out analytically
instead of by execution:

* the flip fires at the first retirement boundary at-or-after its
  injection index (bulk-retiring REP iterations snap the flip to the
  next boundary, exactly like the interpreter's between-dispatch
  injection check);
* a twin whose flipped register is **overwritten before the next
  read** — or never touched again — is *dead*: its column can never
  diverge from the golden one, so its trial record is synthesized
  without executing a single instruction;
* a twin whose register is **read first** diverges there: it peels off
  into the per-trial path.  The peel resumes from the golden ladder
  rung at-or-before the *read point*, not merely the injection index —
  the prefix up to the first read is bit-identical to golden except
  for the flipped bit itself, which the injector re-applies to the
  restored rung (:meth:`CPUCore.arm_applied_flip`).

RIP and RFLAGS flips always peel (control is consumed on the very next
fetch / flags have implicit readers), as do injection indices at or
beyond the traced run (the scan refuses to guess; the per-trial path
is the oracle).  The fixed-seed campaign is bit-identical with the
batch scan on or off — ``--no-twin-batch`` forces the per-trial path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.isa import Op, Program
from repro.machine.registers import ALL_REGISTERS, RegisterFile

__all__ = [
    "TwinPlan",
    "build_plan",
    "classify_twin",
    "stats",
    "reset_stats",
    "DEAD",
    "PEEL",
]

_RIP = RegisterFile.index_of("rip")
_RFLAGS = RegisterFile.index_of("rflags")
_N_REGS = len(ALL_REGISTERS)

#: Sentinel past any real dynamic index ("never touched again").
_NEVER = 1 << 62

DEAD = "dead"
PEEL = "peel"

#: Process-wide batch accounting, mirroring the translation cache's role
#: for engine/CLI telemetry (per-machine copies live on
#: ``XenHypervisor.lockstep_stats``; with worker pools these counters cover
#: the coordinating process only, like the translation counters).
STATS = {
    "twin_batches": 0,
    "twins": 0,
    "dead_twins": 0,
    "peeled_twins": 0,
    "synthesized_instructions": 0,
    "read_ff_instructions": 0,
}


def stats() -> dict[str, int]:
    """A snapshot of the process-wide twin-batch counters."""
    return dict(STATS)


def reset_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    for key in STATS:
        STATS[key] = 0


@dataclass(frozen=True)
class TwinPlan:
    """Shared batch state of one golden group's faulty twins.

    The golden instruction stream, lowered to sorted position columns:
    ``tops`` holds every retirement boundary (REP continuations collapse
    into their first dispatch), ``reads_pos[r]`` / ``writes_pos[r]`` the
    dynamic indices at which register ``r`` is read / written.
    """

    #: Dynamic indices that start a dispatch (flip application points).
    tops: np.ndarray
    #: Per-register sorted dynamic indices of reads.
    reads_pos: tuple[np.ndarray, ...]
    #: Per-register sorted dynamic indices of writes.
    writes_pos: tuple[np.ndarray, ...]
    #: Dynamic length of the traced golden run.
    instructions: int


def _access_masks(program: Program, address: int, cache: dict) -> tuple[int, int, bool]:
    """(read bitmask, write bitmask, is_rep) of the instruction at ``address``."""
    m = cache.get(address)
    if m is None:
        # Imported here: cpu imports this module's sibling helpers lazily
        # elsewhere and a module-level import would be cyclic.
        from repro.machine.cpu import instr_register_accesses

        ins = program.instruction_at(address)
        reads, writes = instr_register_accesses(ins)
        m = cache[address] = (
            sum(1 << r for r in reads),
            sum(1 << r for r in writes),
            ins.op is Op.REP_MOVS,
        )
    return m


def build_plan(program: Program, addresses: list[int]) -> TwinPlan:
    """Lower a full golden address trace into a :class:`TwinPlan`.

    ``addresses`` is the per-retirement address stream (REP iterations
    appear once per moved word, at the same address).  Pure in its
    inputs; the hypervisor-side trace replay lives with the injector.
    """
    n = len(addresses)
    rd = np.empty(n, dtype=np.uint32)
    wr = np.empty(n, dtype=np.uint32)
    loop_top = np.ones(n, dtype=bool)
    cache: dict[int, tuple[int, int, bool]] = {}
    prev = None
    for i, a in enumerate(addresses):
        rm, wm, is_rep = _access_masks(program, a, cache)
        rd[i] = rm
        wr[i] = wm
        # Consecutive same-address REP entries are one dispatch: a flip
        # scheduled inside the bulk applies at the *next* boundary.
        if is_rep and prev == a:
            loop_top[i] = False
        prev = a
    return TwinPlan(
        tops=np.flatnonzero(loop_top),
        reads_pos=tuple(
            np.flatnonzero(rd & np.uint32(1 << r)) for r in range(_N_REGS)
        ),
        writes_pos=tuple(
            np.flatnonzero(wr & np.uint32(1 << r)) for r in range(_N_REGS)
        ),
        instructions=n,
    )


def classify_twin(
    plan: TwinPlan, register: str, dynamic_index: int
) -> tuple[str, int | None]:
    """Settle one twin against the shared golden columns.

    Returns ``(DEAD, None)`` when the flip provably cannot diverge the
    twin from the golden column (synthesize the non-activated record),
    or ``(PEEL, read_point)`` when it must execute per-trial —
    ``read_point`` is the dynamic index of the first golden read of the
    flipped register (a resume hint: state before it is golden except
    the flipped bit), or ``None`` when the scan cannot bound it.
    """
    reg = RegisterFile.index_of(register)
    if reg == _RIP or reg == _RFLAGS:
        return PEEL, None
    tops = plan.tops
    j = int(np.searchsorted(tops, dynamic_index, side="left"))
    if j >= len(tops):
        return PEEL, None  # at/past the end of the traced run
    p = int(tops[j])
    rp = plan.reads_pos[reg]
    i = int(np.searchsorted(rp, p, side="left"))
    first_read = int(rp[i]) if i < len(rp) else _NEVER
    wp = plan.writes_pos[reg]
    i = int(np.searchsorted(wp, p, side="left"))
    first_write = int(wp[i]) if i < len(wp) else _NEVER
    if first_read <= first_write and first_read < _NEVER:
        return PEEL, first_read
    return DEAD, None
