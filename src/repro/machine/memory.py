"""Sparse, page-granular physical memory with protection.

The memory model gives fault injection its teeth: a bit flip in a pointer
register sends a load/store to an address that is (a) still mapped — silent
data corruption, (b) unmapped — #PF, or (c) non-canonical — #GP, which is
precisely the spectrum of behaviours the paper's runtime detection observes.

Pages are 4 KiB and materialized lazily inside mapped regions, so mapping a
multi-gigabyte region costs nothing until it is touched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemoryConfigError
from repro.machine.exceptions import HardwareException, PageFaultKind, Vector

__all__ = ["PAGE_SIZE", "Region", "Memory", "is_canonical"]

PAGE_SIZE = 4096
_PAGE_MASK = PAGE_SIZE - 1
_MASK64 = (1 << 64) - 1
_CANON_HIGH = 0xFFFF_8000_0000_0000


def is_canonical(address: int) -> bool:
    """True when ``address`` is canonical (bits 63..47 all equal).

    x86-64 raises #GP on non-canonical accesses; flips in pointer high bits
    land here, giving the short-latency detection path of Fig. 2.
    """
    address &= _MASK64
    top = address >> 47
    return top == 0 or top == 0x1FFFF


@dataclass(frozen=True)
class Region:
    """A mapped address range with protection bits.

    ``name`` tags the region for diagnostics and outcome attribution (e.g.
    ``"hypervisor_text"``, ``"hypervisor_heap"``, ``"stack_cpu0"``).
    """

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False

    def __post_init__(self) -> None:
        if self.base & _PAGE_MASK or self.size & _PAGE_MASK:
            raise MemoryConfigError(
                f"region {self.name!r} must be page aligned (base={self.base:#x}, size={self.size:#x})"
            )
        if self.size <= 0:
            raise MemoryConfigError(f"region {self.name!r} has non-positive size")
        if not is_canonical(self.base) or not is_canonical(self.base + self.size - 1):
            raise MemoryConfigError(f"region {self.name!r} spans non-canonical addresses")

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class Memory:
    """Sparse paged memory: 64-bit word access with protection checks.

    All word accesses are 8-byte; the toy ISA is a 64-bit word machine.
    Unaligned word access is tolerated (as on x86) but crossing into an
    unmapped page faults, matching hardware.
    """

    __slots__ = ("_regions", "_pages", "_writes")

    def __init__(self) -> None:
        self._regions: list[Region] = []
        self._pages: dict[int, bytearray] = {}
        #: Count of committed stores, exposed for sanity checks in tests.
        self._writes = 0

    # -- mapping ------------------------------------------------------------

    def map_region(self, region: Region) -> Region:
        """Map a region; overlapping an existing region is a config error."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise MemoryConfigError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        return region

    def region_at(self, address: int) -> Region | None:
        """Return the region containing ``address``, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def region(self, name: str) -> Region:
        """Look up a mapped region by name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise MemoryConfigError(f"no region named {name!r}")

    # -- access -------------------------------------------------------------

    def _check(self, address: int, rip: int, *, write: bool, execute: bool = False) -> Region:
        address &= _MASK64
        if not is_canonical(address):
            raise HardwareException(
                Vector.GENERAL_PROTECTION, rip, address=address,
                detail="non-canonical address",
            )
        region = self.region_at(address)
        if region is None:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_UNMAPPED, detail="unmapped address",
            )
        if execute and not region.executable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"execute of {region.name}",
            )
        if write and not region.writable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"write to read-only {region.name}",
            )
        if not write and not execute and not region.readable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"read of {region.name}",
            )
        return region

    def _page(self, page_base: int) -> bytearray:
        page = self._pages.get(page_base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_base] = page
        return page

    def read_u64(self, address: int, *, rip: int = 0) -> int:
        """Read a 64-bit little-endian word, enforcing mapping/protection."""
        self._check(address, rip, write=False)
        if (address & _PAGE_MASK) > PAGE_SIZE - 8:
            self._check(address + 7, rip, write=False)  # word crosses a page
            return int.from_bytes(
                bytes(self._byte(address + i) for i in range(8)), "little"
            )
        page = self._page(address & ~_PAGE_MASK)
        off = address & _PAGE_MASK
        return int.from_bytes(page[off:off + 8], "little")

    def write_u64(self, address: int, value: int, *, rip: int = 0) -> None:
        """Write a 64-bit little-endian word, enforcing mapping/protection."""
        self._check(address, rip, write=True)
        value &= _MASK64
        if (address & _PAGE_MASK) > PAGE_SIZE - 8:
            self._check(address + 7, rip, write=True)
            for i, b in enumerate(value.to_bytes(8, "little")):
                self._set_byte(address + i, b)
        else:
            page = self._page(address & ~_PAGE_MASK)
            off = address & _PAGE_MASK
            page[off:off + 8] = value.to_bytes(8, "little")
        self._writes += 1

    def check_execute(self, address: int, rip: int) -> Region:
        """Verify ``address`` may be fetched as an instruction."""
        return self._check(address, rip, write=False, execute=True)

    def _byte(self, address: int) -> int:
        page = self._page(address & ~_PAGE_MASK)
        return page[address & _PAGE_MASK]

    def _set_byte(self, address: int, value: int) -> None:
        page = self._page(address & ~_PAGE_MASK)
        page[address & _PAGE_MASK] = value

    # -- bulk setup access (DMA-style, not counted as CPU stores) --------------

    def write_block(self, address: int, data: bytes, *, rip: int = 0) -> None:
        """Write raw bytes starting at ``address`` (setup/DMA path).

        Protection is checked at both ends; the write does not count toward
        :attr:`store_count` because it models platform-level initialization,
        not CPU stores.
        """
        if not data:
            return
        self._check(address, rip, write=True)
        self._check(address + len(data) - 1, rip, write=True)
        offset = 0
        while offset < len(data):
            addr = address + offset
            page = self._page(addr & ~_PAGE_MASK)
            page_off = addr & _PAGE_MASK
            chunk = min(len(data) - offset, PAGE_SIZE - page_off)
            page[page_off:page_off + chunk] = data[offset:offset + chunk]
            offset += chunk

    def read_block(self, address: int, length: int, *, rip: int = 0) -> bytes:
        """Read raw bytes (setup/diagnostic path)."""
        if length <= 0:
            return b""
        self._check(address, rip, write=False)
        self._check(address + length - 1, rip, write=False)
        out = bytearray(length)
        offset = 0
        while offset < length:
            addr = address + offset
            page = self._page(addr & ~_PAGE_MASK)
            page_off = addr & _PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - page_off)
            out[offset:offset + chunk] = page[page_off:page_off + chunk]
            offset += chunk
        return bytes(out)

    # -- checkpointing (golden/faulty run comparison) -------------------------

    def checkpoint(self) -> dict[int, bytes]:
        """Capture the full contents of all materialized pages."""
        return {base: bytes(page) for base, page in self._pages.items()}

    def restore(self, snapshot: dict[int, bytes]) -> None:
        """Restore page contents captured by :meth:`checkpoint`.

        Pages materialized after the checkpoint are dropped (they were zero
        then, and will be zero-filled again on demand).
        """
        self._pages = {base: bytearray(page) for base, page in snapshot.items()}

    # -- diffing & stats (golden-run comparison) -----------------------------

    @property
    def store_count(self) -> int:
        """Total committed 64-bit stores since construction."""
        return self._writes

    def touched_pages(self) -> tuple[int, ...]:
        """Bases of all materialized pages (sorted)."""
        return tuple(sorted(self._pages))

    def snapshot_region(self, region: Region) -> bytes:
        """Copy the current contents of an entire region (zero-filled holes)."""
        out = bytearray(region.size)
        for page_base, page in self._pages.items():
            if region.base <= page_base < region.end:
                off = page_base - region.base
                out[off:off + PAGE_SIZE] = page
        return bytes(out)

    def diff_region(self, region: Region, baseline: bytes) -> list[int]:
        """Return addresses of 8-byte words in ``region`` differing from ``baseline``."""
        current = self.snapshot_region(region)
        if len(baseline) != len(current):
            raise MemoryConfigError("baseline length does not match region size")
        diffs: list[int] = []
        for off in range(0, len(current), 8):
            if current[off:off + 8] != baseline[off:off + 8]:
                diffs.append(region.base + off)
        return diffs
