"""Sparse, page-granular physical memory with protection.

The memory model gives fault injection its teeth: a bit flip in a pointer
register sends a load/store to an address that is (a) still mapped — silent
data corruption, (b) unmapped — #PF, or (c) non-canonical — #GP, which is
precisely the spectrum of behaviours the paper's runtime detection observes.

Pages are 4 KiB and materialized lazily inside mapped regions, so mapping a
multi-gigabyte region costs nothing until it is touched.

Checkpointing is copy-on-write: the memory tracks which pages were written
since the last checkpoint or restore, so :meth:`Memory.checkpoint` copies
only dirty pages (sharing clean-page buffers structurally with the previous
checkpoint) and :meth:`Memory.restore` rewrites only pages that changed since
the target checkpoint.  The trial loop of a fault-injection campaign — tens
of thousands of restore/execute pairs against a mostly-unchanging machine
image — is therefore O(dirty pages) per trial rather than O(all pages).
The eager full-copy API (:meth:`checkpoint_full`/:meth:`restore_full`) is
kept as the differential-testing oracle for the COW implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MemoryConfigError
from repro.machine.exceptions import HardwareException, PageFaultKind, Vector

try:  # vectorized word scan in diff_region; pure-Python fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = [
    "PAGE_SIZE",
    "Region",
    "Memory",
    "MemoryCheckpoint",
    "is_canonical",
]

PAGE_SIZE = 4096
_PAGE_MASK = PAGE_SIZE - 1
_WORD_LIMIT = PAGE_SIZE - 8
_MASK64 = (1 << 64) - 1
_CANON_HIGH = 0xFFFF_8000_0000_0000
_ZERO_PAGE = bytes(PAGE_SIZE)


def is_canonical(address: int) -> bool:
    """True when ``address`` is canonical (bits 63..47 all equal).

    x86-64 raises #GP on non-canonical accesses; flips in pointer high bits
    land here, giving the short-latency detection path of Fig. 2.
    """
    address &= _MASK64
    top = address >> 47
    return top == 0 or top == 0x1FFFF


@dataclass(frozen=True)
class Region:
    """A mapped address range with protection bits.

    ``name`` tags the region for diagnostics and outcome attribution (e.g.
    ``"hypervisor_text"``, ``"hypervisor_heap"``, ``"stack_cpu0"``).
    """

    name: str
    base: int
    size: int
    readable: bool = True
    writable: bool = True
    executable: bool = False

    def __post_init__(self) -> None:
        if self.base & _PAGE_MASK or self.size & _PAGE_MASK:
            raise MemoryConfigError(
                f"region {self.name!r} must be page aligned (base={self.base:#x}, size={self.size:#x})"
            )
        if self.size <= 0:
            raise MemoryConfigError(f"region {self.name!r} has non-positive size")
        if not is_canonical(self.base) or not is_canonical(self.base + self.size - 1):
            raise MemoryConfigError(f"region {self.name!r} spans non-canonical addresses")

    @property
    def end(self) -> int:
        """One past the last mapped byte."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass(frozen=True, eq=False)
class MemoryCheckpoint:
    """A copy-on-write memory snapshot.

    ``pages`` maps page base -> immutable page contents.  Buffers of pages
    that did not change between two checkpoints are *shared* (the same
    ``bytes`` object), which is what makes both capture and the restore-time
    diff O(pages touched) instead of O(pages mapped).

    Checkpoints are logically immutable values; equality compares page
    contents (two checkpoints of identical machine states are equal even if
    captured on different ladders).
    """

    pages: dict[int, bytes]
    #: Monotonic capture sequence number of the owning :class:`Memory`
    #: (diagnostics only; not part of the checkpoint's identity).
    epoch: int = field(default=0, compare=False)

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryCheckpoint):
            return NotImplemented
        return self.pages == other.pages

    def __hash__(self) -> int:  # pragma: no cover - checkpoints aren't keys
        return id(self)


class Memory:
    """Sparse paged memory: 64-bit word access with protection checks.

    All word accesses are 8-byte; the toy ISA is a 64-bit word machine.
    Unaligned word access is tolerated (as on x86) but crossing into an
    unmapped page faults, matching hardware.
    """

    __slots__ = ("_regions", "_pages", "_writes", "_dirty", "_base", "_epoch",
                 "_region_cache")

    def __init__(self) -> None:
        self._regions: list[Region] = []
        self._pages: dict[int, bytearray] = {}
        #: Count of committed stores, exposed for sanity checks in tests.
        self._writes = 0
        #: Pages written or materialized since the last checkpoint/restore.
        #: Invariant: for every page base not in ``_dirty``, the live page
        #: set and contents agree exactly with ``_base``.
        self._dirty: set[int] = set()
        #: Page map of the most recent checkpoint (or restore target).
        self._base: dict[int, bytes] = {}
        self._epoch = 0
        #: Page base -> owning region, filled on first access (pages are
        #: region-aligned, so the mapping never changes once a region maps).
        self._region_cache: dict[int, Region] = {}

    # -- mapping ------------------------------------------------------------

    def map_region(self, region: Region) -> Region:
        """Map a region; overlapping an existing region is a config error."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise MemoryConfigError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._region_cache.clear()
        return region

    def region_at(self, address: int) -> Region | None:
        """Return the region containing ``address``, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def region(self, name: str) -> Region:
        """Look up a mapped region by name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise MemoryConfigError(f"no region named {name!r}")

    # -- access -------------------------------------------------------------

    def _check(self, address: int, rip: int, *, write: bool, execute: bool = False) -> Region:
        address &= _MASK64
        if not is_canonical(address):
            raise HardwareException(
                Vector.GENERAL_PROTECTION, rip, address=address,
                detail="non-canonical address",
            )
        region = self.region_at(address)
        if region is None:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_UNMAPPED, detail="unmapped address",
            )
        if execute and not region.executable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"execute of {region.name}",
            )
        if write and not region.writable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"write to read-only {region.name}",
            )
        if not write and not execute and not region.readable:
            raise HardwareException(
                Vector.PAGE_FAULT, rip, address=address,
                kind=PageFaultKind.FATAL_PROTECTION, detail=f"read of {region.name}",
            )
        return region

    def _page(self, page_base: int) -> bytearray:
        page = self._pages.get(page_base)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_base] = page
            # Materialization changes the touched-page set, which restore
            # must be able to roll back, so it counts as dirtying.
            self._dirty.add(page_base)
        return page

    def read_u64(self, address: int, rip: int = 0) -> int:
        """Read a 64-bit little-endian word, enforcing mapping/protection."""
        address &= _MASK64
        off = address & _PAGE_MASK
        if off <= _WORD_LIMIT:
            page_base = address - off
            region = self._region_cache.get(page_base)
            if region is None:
                region = self._check(address, rip, write=False)
                self._region_cache[page_base] = region
            elif not region.readable:
                self._check(address, rip, write=False)  # raises with detail
            page = self._pages.get(page_base)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_base] = page
                self._dirty.add(page_base)
            return int.from_bytes(page[off:off + 8], "little")
        self._check(address, rip, write=False)
        self._check(address + 7, rip, write=False)  # word crosses a page
        return int.from_bytes(
            bytes(self._byte(address + i) for i in range(8)), "little"
        )

    def write_u64(self, address: int, value: int, rip: int = 0) -> None:
        """Write a 64-bit little-endian word, enforcing mapping/protection."""
        address &= _MASK64
        value &= _MASK64
        off = address & _PAGE_MASK
        if off <= _WORD_LIMIT:
            page_base = address - off
            region = self._region_cache.get(page_base)
            if region is None:
                region = self._check(address, rip, write=True)
                self._region_cache[page_base] = region
            elif not region.writable:
                self._check(address, rip, write=True)  # raises with detail
            page = self._pages.get(page_base)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_base] = page
            page[off:off + 8] = value.to_bytes(8, "little")
            self._dirty.add(page_base)
        else:
            self._check(address, rip, write=True)
            self._check(address + 7, rip, write=True)
            for i, b in enumerate(value.to_bytes(8, "little")):
                self._set_byte(address + i, b)
        self._writes += 1

    def check_execute(self, address: int, rip: int) -> Region:
        """Verify ``address`` may be fetched as an instruction."""
        return self._check(address, rip, write=False, execute=True)

    def _byte(self, address: int) -> int:
        page = self._page(address & ~_PAGE_MASK)
        return page[address & _PAGE_MASK]

    def _set_byte(self, address: int, value: int) -> None:
        page = self._page(address & ~_PAGE_MASK)
        page[address & _PAGE_MASK] = value
        self._dirty.add(address & ~_PAGE_MASK)

    # -- bulk setup access (DMA-style, not counted as CPU stores) --------------

    def write_block(self, address: int, data: bytes, *, rip: int = 0) -> None:
        """Write raw bytes starting at ``address`` (setup/DMA path).

        Protection is checked at both ends; the write does not count toward
        :attr:`store_count` because it models platform-level initialization,
        not CPU stores.
        """
        if not data:
            return
        self._check(address, rip, write=True)
        self._check(address + len(data) - 1, rip, write=True)
        offset = 0
        while offset < len(data):
            addr = address + offset
            page_base = addr & ~_PAGE_MASK
            page = self._page(page_base)
            page_off = addr & _PAGE_MASK
            chunk = min(len(data) - offset, PAGE_SIZE - page_off)
            page[page_off:page_off + chunk] = data[offset:offset + chunk]
            self._dirty.add(page_base)
            offset += chunk

    def read_block(self, address: int, length: int, *, rip: int = 0) -> bytes:
        """Read raw bytes (setup/diagnostic path)."""
        if length <= 0:
            return b""
        self._check(address, rip, write=False)
        self._check(address + length - 1, rip, write=False)
        out = bytearray(length)
        offset = 0
        while offset < length:
            addr = address + offset
            page = self._page(addr & ~_PAGE_MASK)
            page_off = addr & _PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - page_off)
            out[offset:offset + chunk] = page[page_off:page_off + chunk]
            offset += chunk
        return bytes(out)

    # -- checkpointing (golden/faulty run pairs, mid-run ladders) --------------

    def checkpoint(self) -> MemoryCheckpoint:
        """Capture the current contents of all materialized pages (COW).

        Only pages dirtied since the previous checkpoint/restore are copied;
        clean pages share their buffers with the previous checkpoint.
        """
        dirty = self._dirty
        if dirty:
            base = dict(self._base)
            pages = self._pages
            for page_base in dirty:
                page = pages.get(page_base)
                if page is None:  # pragma: no cover - defensive; see restore()
                    base.pop(page_base, None)
                else:
                    base[page_base] = bytes(page)
            self._base = base
            dirty.clear()
        self._epoch += 1
        return MemoryCheckpoint(pages=self._base, epoch=self._epoch)

    def restore(self, snapshot: MemoryCheckpoint | dict[int, bytes]) -> None:
        """Restore page contents captured by :meth:`checkpoint`.

        Pages materialized after the checkpoint are dropped (they were zero
        then, and will be zero-filled again on demand).  Cost is proportional
        to the number of pages that changed since ``snapshot`` was captured —
        pages dirtied since the last sync point plus pages whose buffers
        differ between the two checkpoint generations (an identity check,
        thanks to structural sharing).

        A plain ``dict[int, bytes]`` from :meth:`checkpoint_full` is accepted
        too, so the eager oracle path stays drop-in interchangeable.
        """
        if isinstance(snapshot, dict):
            self.restore_full(snapshot)
            return
        target = snapshot.pages
        dirty = self._dirty
        base = self._base
        if target is not base:
            get_base = base.get
            get_target = target.get
            for page_base in base.keys() | target.keys():
                if get_base(page_base) is not get_target(page_base):
                    dirty.add(page_base)
            self._base = target
        if dirty:
            pages = self._pages
            for page_base in dirty:
                source = target.get(page_base)
                if source is None:
                    pages.pop(page_base, None)
                else:
                    live = pages.get(page_base)
                    if live is None:
                        pages[page_base] = bytearray(source)
                    else:
                        live[:] = source
            dirty.clear()
        self._epoch += 1

    # -- eager full-copy oracle ------------------------------------------------

    def checkpoint_full(self) -> dict[int, bytes]:
        """Eagerly copy every materialized page (the pre-COW implementation).

        Kept as the differential-testing oracle: COW checkpoint/restore must
        be observationally identical to this path for any write sequence.
        """
        return {base: bytes(page) for base, page in self._pages.items()}

    def restore_full(self, snapshot: dict[int, bytes]) -> None:
        """Restore an eager :meth:`checkpoint_full` snapshot."""
        self._pages = {base: bytearray(page) for base, page in snapshot.items()}
        # The COW bookkeeping no longer describes the live pages: resync by
        # treating everything as dirty against an empty base.
        self._base = {}
        self._dirty = set(self._pages)
        self._epoch += 1

    # -- diffing & stats (golden-run comparison) -----------------------------

    @property
    def store_count(self) -> int:
        """Total committed 64-bit stores since construction."""
        return self._writes

    @property
    def dirty_page_count(self) -> int:
        """Pages written or materialized since the last checkpoint/restore."""
        return len(self._dirty)

    def dirty_pages(self) -> tuple[int, ...]:
        """Bases of pages dirtied since the last checkpoint/restore (sorted)."""
        return tuple(sorted(self._dirty))

    def touched_pages(self) -> tuple[int, ...]:
        """Bases of all materialized pages (sorted)."""
        return tuple(sorted(self._pages))

    def snapshot_region(self, region: Region) -> bytes:
        """Copy the current contents of an entire region (zero-filled holes)."""
        out = bytearray(region.size)
        for page_base, page in self._pages.items():
            if region.base <= page_base < region.end:
                off = page_base - region.base
                out[off:off + PAGE_SIZE] = page
        return bytes(out)

    def diff_region(self, region: Region, baseline: bytes) -> list[int]:
        """Return addresses of 8-byte words in ``region`` differing from ``baseline``.

        Compares page by page — a single C-speed equality check skips
        identical pages — and word-scans only pages that actually differ,
        so the common no-divergence case costs one memcmp per page.
        """
        if len(baseline) != region.size:
            raise MemoryConfigError("baseline length does not match region size")
        view = memoryview(baseline)
        pages = self._pages
        diffs: list[int] = []
        for off in range(0, region.size, PAGE_SIZE):
            page = pages.get(region.base + off)
            chunk = view[off:off + PAGE_SIZE]
            if page is None:
                if chunk == _ZERO_PAGE:
                    continue
                page = _ZERO_PAGE
            elif page == chunk:
                continue
            if _np is not None:
                a = _np.frombuffer(page, dtype=_np.uint64)
                b = _np.frombuffer(chunk, dtype=_np.uint64)
                base = region.base + off
                diffs.extend(base + int(w) * 8 for w in _np.nonzero(a != b)[0])
            else:
                for word in range(0, PAGE_SIZE, 8):
                    if page[word:word + 8] != chunk[word:word + 8]:
                        diffs.append(region.base + off + word)
        return diffs
