"""The machine substrate: a functional full-system CPU simulator.

Plays the role Simics plays in the paper (Section V.A): it executes the
hypervisor's code for real — register file, paged memory, hardware exceptions,
performance counters — so that injected bit flips produce genuine
architectural behaviour rather than sampled outcomes.
"""

from repro.machine.assembler import Assembler, parse_asm
from repro.machine.cpu import (
    CoreCheckpoint,
    CPUCore,
    DEFAULT_CPUID_TABLE,
    ExecutionResult,
    InjectionReport,
    instr_register_accesses,
)
from repro.machine.exceptions import (
    AssertionViolation,
    FATAL_VECTORS,
    HardwareException,
    PageFaultKind,
    Vector,
    classify_exception,
    raise_stack_fault,
)
from repro.machine.flags import CONDITION_CODES
from repro.machine.isa import (
    BRANCH_OPS,
    Imm,
    INSTRUCTION_BYTES,
    Instr,
    Mem,
    Op,
    Program,
    Reg,
)
from repro.machine.memory import Memory, MemoryCheckpoint, PAGE_SIZE, Region, is_canonical
from repro.machine.perfcounters import CounterSample, Event, PerformanceCounterUnit
from repro.machine.registers import (
    ALL_REGISTERS,
    GPR_NAMES,
    INJECTABLE_REGISTERS,
    MASK64,
    RegisterFile,
)
from repro.machine.tracer import Tracer
from repro.machine.translator import (
    CACHE,
    ProgramTranslation,
    TranslationCache,
    translation_for,
)

__all__ = [
    "ALL_REGISTERS",
    "Assembler",
    "AssertionViolation",
    "BRANCH_OPS",
    "CACHE",
    "CONDITION_CODES",
    "CPUCore",
    "CoreCheckpoint",
    "CounterSample",
    "DEFAULT_CPUID_TABLE",
    "Event",
    "ExecutionResult",
    "FATAL_VECTORS",
    "GPR_NAMES",
    "HardwareException",
    "INJECTABLE_REGISTERS",
    "INSTRUCTION_BYTES",
    "Imm",
    "InjectionReport",
    "Instr",
    "MASK64",
    "Mem",
    "Memory",
    "MemoryCheckpoint",
    "Op",
    "PAGE_SIZE",
    "PageFaultKind",
    "PerformanceCounterUnit",
    "Program",
    "ProgramTranslation",
    "Reg",
    "Region",
    "RegisterFile",
    "Tracer",
    "TranslationCache",
    "Vector",
    "classify_exception",
    "instr_register_accesses",
    "is_canonical",
    "parse_asm",
    "raise_stack_fault",
    "translation_for",
]
