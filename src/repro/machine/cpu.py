"""CPU core: fetch/decode/execute with fault-injection hooks.

One :class:`CPUCore` models a logical core executing host-mode (hypervisor)
code.  The core owns the architectural register file, a performance-counter
bank, a tracer, and a time-stamp counter; memory is shared machine state.

Fault injection is a first-class citizen: :meth:`CPUCore.schedule_register_flip`
arms a single-bit flip to be applied immediately before a chosen *dynamic*
instruction, after which the core tracks whether the flipped register is read
before it is overwritten — the paper's activated/non-activated distinction
(Section V.B: "Only soft errors occurring before reading registers can be
activated").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import MachineConfigError, SimulationLimitExceeded
from repro.machine.exceptions import (
    AssertionViolation,
    HardwareException,
    PageFaultKind,
    Vector,
    raise_stack_fault,
)
from repro.machine.flags import add_flags, sub_flags, update_flags_logic
from repro.machine.isa import (
    INSTRUCTION_BYTES,
    OP_INDEX,
    Instr,
    Mem,
    Op,
    Program,
    Reg,
)
from repro.machine.memory import Memory, is_canonical
from repro.machine.perfcounters import PerformanceCounterUnit
from repro.machine.registers import MASK64, RegisterFile
from repro.machine.tracer import _FNV_PRIME, Tracer
from repro.machine import translator as _translator
from repro.machine.translator import CACHE, translation_for

__all__ = [
    "CPUCore",
    "CoreCheckpoint",
    "ExecutionResult",
    "InjectionReport",
    "instr_register_accesses",
    "DEFAULT_CPUID_TABLE",
]

_RIP = RegisterFile.index_of("rip")
_RSP = RegisterFile.index_of("rsp")
_RFLAGS = RegisterFile.index_of("rflags")
_RAX = RegisterFile.index_of("rax")
_RBX = RegisterFile.index_of("rbx")
_RCX = RegisterFile.index_of("rcx")
_RDX = RegisterFile.index_of("rdx")
_RSI = RegisterFile.index_of("rsi")
_RDI = RegisterFile.index_of("rdi")

# Dense op indices for the dispatch loop's inline bodies (ordered there by
# measured dynamic frequency) and its terminator test — VMENTRY/HALT are the
# last two enum members, so one >= comparison classifies both.
_I_JCC = OP_INDEX[Op.JCC]
_I_CMP = OP_INDEX[Op.CMP]
_I_MOV = OP_INDEX[Op.MOV]
_I_INC = OP_INDEX[Op.INC]
_I_JMP = OP_INDEX[Op.JMP]
_I_ADD = OP_INDEX[Op.ADD]
_I_TEST = OP_INDEX[Op.TEST]
_I_STORE = OP_INDEX[Op.STORE]
_I_LOAD = OP_INDEX[Op.LOAD]
_I_SHL = OP_INDEX[Op.SHL]
_I_DEC = OP_INDEX[Op.DEC]
_I_SHR = OP_INDEX[Op.SHR]
_I_AND = OP_INDEX[Op.AND]
_I_OR = OP_INDEX[Op.OR]
_I_POP = OP_INDEX[Op.POP]
_I_IMUL = OP_INDEX[Op.IMUL]
_I_PUSH = OP_INDEX[Op.PUSH]
_TERMINATOR_MIN = OP_INDEX[Op.VMENTRY]
assert _TERMINATOR_MIN == len(OP_INDEX) - 2  # VMENTRY, HALT close the enum

# Stack-access #SS conversion — one implementation shared with the
# translated-block codegen (see repro.machine.exceptions.raise_stack_fault).
_raise_stack_fault = raise_stack_fault

# Runaway-loop probe tuning (see repro.machine.loopproof).  A full-budget run
# that retires _PROBE_AT instructions is suspected of spinning: the dispatch
# loop records a _PROBE_WINDOW address history, looks for a rip-periodic
# cycle, measures its per-period register deltas over two real periods, and
# asks the induction prover to certify the hang.  Failed attempts re-arm
# _PROBE_RETRY instructions later, at most _PROBE_MAX_ATTEMPTS times.  All
# of this is invisible to outcomes: proofs are exact and bails keep
# executing concretely.
_PROBE_AT = 1_024
_PROBE_WINDOW = 320
_PROBE_RETRY = 2_048
_PROBE_MAX_ATTEMPTS = 3


#: Deterministic CPUID leaves: leaf -> (eax, ebx, ecx, edx).  Values echo a
#: Xeon-like identification block; what matters for the reproduction is that
#: the hypervisor's trap-and-emulate path produces *specific* values a guest
#: will consume (the Section II.A long-latency example).
DEFAULT_CPUID_TABLE: dict[int, tuple[int, int, int, int]] = {
    0x0: (0x0000000B, 0x756E6547, 0x6C65746E, 0x49656E69),  # "GenuineIntel"
    0x1: (0x000106A5, 0x00100800, 0x009CE3BD, 0xBFEBFBFF),  # family/model/features
    0x2: (0x55035A01, 0x00F0B2E4, 0x00000000, 0x09CA212C),
    0x4: (0x1C004121, 0x01C0003F, 0x0000003F, 0x00000000),
    0x80000000: (0x80000008, 0, 0, 0),
    0x80000008: (0x00003028, 0, 0, 0),
}


def instr_register_accesses(instr: Instr) -> tuple[frozenset[int], frozenset[int]]:
    """Return ``(reads, writes)`` register-index sets for ``instr``.

    RIP is deliberately excluded (every instruction touches it); flips in RIP
    are always considered activated by the injector.  The sets drive the
    activated/non-activated classification of injected faults.

    The result is memoized on the (static) instruction object: the injector's
    watch loop calls this once per retired instruction while a flipped
    register is live, so recomputation would dominate that window.
    """
    cached = instr.__dict__.get("_accesses")
    if cached is not None:
        return cached
    op = instr.op
    reads: set[int] = set()
    writes: set[int] = set()

    def _src_reads() -> None:
        if isinstance(instr.src, Reg):
            reads.add(instr.src.index)
        elif isinstance(instr.src, Mem):
            reads.add(instr.src.base.index)

    if op is Op.MOV:
        _src_reads()
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op in (Op.LOAD, Op.LEA):
        reads.add(instr.src.base.index)  # type: ignore[union-attr]
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.STORE:
        reads.add(instr.dst.base.index)  # type: ignore[union-attr]
        if isinstance(instr.src, Reg):
            reads.add(instr.src.index)
    elif op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.DIV, Op.SHL, Op.SHR):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        _src_reads()
        writes.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(_RFLAGS)
    elif op in (Op.CMP, Op.TEST):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        _src_reads()
        writes.add(_RFLAGS)
    elif op in (Op.INC, Op.DEC):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(_RFLAGS)
    elif op is Op.JCC:
        reads.add(_RFLAGS)
    elif op is Op.CALL:
        reads.add(_RSP)
        writes.add(_RSP)
    elif op is Op.RET:
        reads.add(_RSP)
        writes.add(_RSP)
    elif op is Op.PUSH:
        reads.add(_RSP)
        reads.add(instr.src.index)  # type: ignore[union-attr]
        writes.add(_RSP)
    elif op is Op.POP:
        reads.add(_RSP)
        writes.add(_RSP)
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.REP_MOVS:
        reads.update((_RCX, _RSI, _RDI))
        writes.update((_RCX, _RSI, _RDI))
    elif op is Op.RDTSC:
        writes.update((_RAX, _RDX))
    elif op is Op.CPUID:
        reads.add(_RAX)
        writes.update((_RAX, _RBX, _RCX, _RDX))
    elif op in (Op.ASSERT_RANGE, Op.ASSERT_EQ):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.ASSERT_EQ_REG:
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        reads.add(instr.src.index)  # type: ignore[union-attr]
    # JMP/NOP/VMENTRY/HALT touch nothing but RIP.
    result = (frozenset(reads), frozenset(writes))
    object.__setattr__(instr, "_accesses", result)  # frozen dataclass, no slots
    return result


@dataclass(frozen=True)
class InjectionReport:
    """What happened to a scheduled fault after the run."""

    applied: bool
    register: str
    bit: int
    dynamic_index: int
    #: True when the flipped value was read before being overwritten; None
    #: when the run ended before the register was touched again (treated as
    #: non-activated, same as the paper's non-activated errors).
    activated: bool | None
    activation_index: int | None


@dataclass(frozen=True)
class CoreCheckpoint:
    """Mid-run architectural state of one core, captured at an instruction
    boundary (``index`` instructions retired, RIP holding the next fetch).

    Together with a memory checkpoint this is everything needed to resume
    execution bit-identically: registers, PMU totals and collection window,
    tracer state, TSC, and the assertion-check tally.  Injection state is
    deliberately excluded — the injector re-arms after restoring.
    """

    index: int
    regs: tuple[int, ...]
    pmu: tuple
    tracer: tuple[int, int, tuple[int, ...]]
    tsc: int
    assert_checks: int


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one host-mode execution that ran to a terminator."""

    exit_op: Op                 # VMENTRY or HALT
    instructions: int           # dynamic instructions retired (tracer count)
    final_rip: int
    path_hash: int
    tsc_end: int
    assertion_checks: int = 0   # how many assertion predicates were evaluated
    addresses: tuple[int, ...] = field(default_factory=tuple)


class CPUCore:
    """A logical core executing toy-ISA programs against shared memory."""

    def __init__(
        self,
        core_id: int,
        memory: Memory,
        *,
        tsc_start: int = 1_000_000,
        tsc_per_instruction: int = 1,
        cpuid_table: dict[int, tuple[int, int, int, int]] | None = None,
        light_trace: bool = True,
        translate: bool = True,
    ) -> None:
        if core_id < 0:
            raise MachineConfigError("core_id must be non-negative")
        self.core_id = core_id
        self.memory = memory
        self.regs = RegisterFile()
        self.pmu = PerformanceCounterUnit()
        self.tracer = Tracer(light=light_trace)
        self.tsc = tsc_start
        self.tsc_per_instruction = tsc_per_instruction
        self.cpuid_table = dict(DEFAULT_CPUID_TABLE if cpuid_table is None else cpuid_table)
        #: Execute through cached translated blocks where possible (the
        #: interpreter remains the oracle; ``translate=False`` forces it).
        self.translate = translate
        #: Attempt exact runaway-loop proofs when a full-budget run spins
        #: (see repro.machine.loopproof; ``False`` forces concrete execution).
        self.loop_proof = True
        #: Watchdog outcomes settled by induction proof instead of execution,
        #: and the instructions those proofs skipped (cumulative telemetry).
        self.proved_hangs = 0
        self.proved_hang_instructions = 0
        # Cumulative execution-mix telemetry (never reset by checkpoints or
        # hypervisor resets; see XenHypervisor.translation_stats).
        self.translated_instructions = 0
        self.interpreted_instructions = 0
        self.block_executions = 0
        # Injection state
        self._inj_index: int | None = None
        self._inj_reg: str | None = None
        self._inj_bit = 0
        #: Multi-flip set: ``None`` for the classic single-bit path,
        #: otherwise every (register, bit) pair applied at the injection
        #: index (multi-bit upsets and time-correlated bursts).
        self._inj_flips: tuple[tuple[str, int], ...] | None = None
        self._inj_applied = False
        self._inj_known: int | None = None
        self._watch_reg: int | None = None
        self._activated: bool | None = None
        self._activation_index: int | None = None
        self._assert_checks = 0
        exec_map: dict[Op, Callable[[Instr], int | None]] = {
            Op.MOV: self._op_mov,
            Op.LOAD: self._op_load,
            Op.STORE: self._op_store,
            Op.LEA: self._op_lea,
            Op.ADD: self._op_add,
            Op.SUB: self._op_sub,
            Op.AND: self._op_and,
            Op.OR: self._op_or,
            Op.XOR: self._op_xor,
            Op.IMUL: self._op_imul,
            Op.DIV: self._op_div,
            Op.SHL: self._op_shl,
            Op.SHR: self._op_shr,
            Op.CMP: self._op_cmp,
            Op.TEST: self._op_test,
            Op.INC: self._op_inc,
            Op.DEC: self._op_dec,
            Op.JMP: self._op_jmp,
            Op.JCC: self._op_jcc,
            Op.CALL: self._op_call,
            Op.RET: self._op_ret,
            Op.PUSH: self._op_push,
            Op.POP: self._op_pop,
            Op.REP_MOVS: self._op_rep_movs,
            Op.RDTSC: self._op_rdtsc,
            Op.CPUID: self._op_cpuid,
            Op.ASSERT_RANGE: self._op_assert_range,
            Op.ASSERT_EQ: self._op_assert_eq,
            Op.ASSERT_EQ_REG: self._op_assert_eq_reg,
            Op.NOP: self._op_nop,
        }
        # Dense dispatch table indexed by Instr.op_index (no enum hashing on
        # the hot path).  Terminators have no executor.
        self._exec_list: list[Callable[[Instr], int | None] | None] = [
            exec_map.get(op) for op in Op
        ]

    # -- fault injection ------------------------------------------------------

    def schedule_register_flip(
        self,
        dynamic_index: int,
        register: str,
        bit: int,
        *,
        known_activation: int | None = None,
    ) -> None:
        """Arm a single-bit flip in ``register`` before dynamic instruction
        ``dynamic_index`` (0-based) of the next :meth:`run`.

        ``known_activation`` is the lock-step scan's analytic activation
        index: the golden trace proved the register's first access after
        the flip is a *read* at that dynamic index, so the activation
        watch (which forces per-instruction visibility on blocks touching
        the register) is skipped entirely and the report is settled the
        moment the flip applies.
        """
        RegisterFile.index_of(register)  # validate eagerly
        if not 0 <= bit < 64:
            raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        if dynamic_index < 0:
            raise MachineConfigError("dynamic_index must be non-negative")
        self._inj_index = dynamic_index
        self._inj_reg = register
        self._inj_bit = bit
        self._inj_flips = None
        self._inj_applied = False
        self._inj_known = known_activation
        self._watch_reg = None
        self._activated = None
        self._activation_index = None

    def schedule_flip_set(
        self,
        dynamic_index: int,
        flips: tuple[tuple[str, int], ...],
        *,
        known_activation: int | None = None,
    ) -> None:
        """Arm several bit flips striking atomically before dynamic
        instruction ``dynamic_index`` of the next :meth:`run`.

        Single-register sets (multi-bit upsets) keep the normal activation
        watch; sets spanning registers (bursts) have no single register to
        watch, so the report's ``activated`` stays ``None`` and callers
        infer activation from divergence (exactly like memory faults).
        ``known_activation`` is honored only for single-register sets.
        """
        flips = tuple(flips)
        if not flips:
            raise MachineConfigError("flip set must not be empty")
        for register, bit in flips:
            RegisterFile.index_of(register)  # validate eagerly
            if not 0 <= bit < 64:
                raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        if dynamic_index < 0:
            raise MachineConfigError("dynamic_index must be non-negative")
        self._inj_index = dynamic_index
        self._inj_reg = flips[0][0]
        self._inj_bit = flips[0][1]
        self._inj_flips = flips
        self._inj_applied = False
        self._inj_known = known_activation
        self._watch_reg = None
        self._activated = None
        self._activation_index = None

    def arm_applied_flip_set(
        self,
        dynamic_index: int,
        flips: tuple[tuple[str, int], ...],
        *,
        known_activation: int | None = None,
    ) -> None:
        """Apply a single-register flip set *now* (resume-side twin of
        :meth:`schedule_flip_set`, mirroring :meth:`arm_applied_flip`).

        Only legal for sets confined to one register: the lock-step scan's
        no-access proof is per register, so a multi-register burst cannot
        soundly fast-forward past its injection index this way.
        """
        flips = tuple(flips)
        if not flips:
            raise MachineConfigError("flip set must not be empty")
        registers = {register for register, _ in flips}
        if len(registers) != 1:
            raise MachineConfigError(
                "arm_applied_flip_set needs a single-register flip set"
            )
        register = flips[0][0]
        reg_index = RegisterFile.index_of(register)
        for _, bit in flips:
            if not 0 <= bit < 64:
                raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        if dynamic_index < 0:
            raise MachineConfigError("dynamic_index must be non-negative")
        self._inj_index = dynamic_index
        self._inj_reg = register
        self._inj_bit = flips[0][1]
        self._inj_flips = flips
        self._inj_applied = True
        self._inj_known = None
        self._activated = None
        self._activation_index = None
        for _, bit in flips:
            self.regs.flip_bit(register, bit)
        if reg_index == _RIP:
            self._activated = True
            self._activation_index = dynamic_index
            self._watch_reg = None
        elif known_activation is not None:
            self._activated = True
            self._activation_index = known_activation
            self._watch_reg = None
        else:
            self._watch_reg = reg_index

    def arm_applied_flip(
        self,
        dynamic_index: int,
        register: str,
        bit: int,
        *,
        known_activation: int | None = None,
    ) -> None:
        """Apply a flip *now* and arm only the activation watch.

        Resume-side twin of :meth:`schedule_register_flip` for the
        lock-step peel path: when the golden prefix provably never
        touches ``register`` between the injection index and the restore
        point, flipping the restored (golden) value is bit-identical to
        having flipped it at ``dynamic_index`` — so the injector may
        fast-forward past the injection and re-apply the flip here.  The
        report carries the original ``dynamic_index``.

        With ``known_activation`` the watch is not armed at all: the
        golden trace already proved the first access is a read at that
        index, so the report is settled analytically and the run stays
        eligible for translated execution throughout.
        """
        reg_index = RegisterFile.index_of(register)
        if not 0 <= bit < 64:
            raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        if dynamic_index < 0:
            raise MachineConfigError("dynamic_index must be non-negative")
        self._inj_index = dynamic_index
        self._inj_reg = register
        self._inj_bit = bit
        self._inj_flips = None
        self._inj_applied = True
        self._inj_known = None
        self._activated = None
        self._activation_index = None
        self.regs.flip_bit(register, bit)
        if reg_index == _RIP:
            self._activated = True
            self._activation_index = dynamic_index
            self._watch_reg = None
        elif known_activation is not None:
            self._activated = True
            self._activation_index = known_activation
            self._watch_reg = None
        else:
            self._watch_reg = reg_index

    def clear_injection(self) -> None:
        """Disarm any scheduled fault."""
        self._inj_index = None
        self._inj_reg = None
        self._inj_flips = None
        self._inj_applied = False
        self._inj_known = None
        self._watch_reg = None

    @property
    def injection_report(self) -> InjectionReport | None:
        """Report of the most recently scheduled fault, if any."""
        if self._inj_reg is None:
            return None
        return InjectionReport(
            applied=self._inj_applied,
            register=self._inj_reg,
            bit=self._inj_bit,
            dynamic_index=self._inj_index if self._inj_index is not None else -1,
            activated=self._activated,
            activation_index=self._activation_index,
        )

    def _apply_injection(self, count: int) -> None:
        # ``count`` is the dispatch loop's buffered dynamic-instruction count
        # (the tracer's own counter lags it while the loop runs).
        assert self._inj_reg is not None
        flips = self._inj_flips
        if flips is not None and len(flips) > 1:
            self._apply_flip_set(flips, count)
            return
        self.regs.flip_bit(self._inj_reg, self._inj_bit)
        self._inj_applied = True
        reg_index = RegisterFile.index_of(self._inj_reg)
        if reg_index == _RIP:
            # Control is transferred through RIP on the very next fetch:
            # always activated, immediately.
            self._activated = True
            self._activation_index = count
        elif self._inj_known is not None:
            # The lock-step scan proved the first access is a read at this
            # index; settle the report without arming the watch so the run
            # stays on the translated path.
            self._activated = True
            self._activation_index = self._inj_known
        else:
            self._watch_reg = reg_index

    def _apply_flip_set(self, flips: tuple[tuple[str, int], ...], count: int) -> None:
        for register, bit in flips:
            self.regs.flip_bit(register, bit)
        self._inj_applied = True
        reg_indices = {RegisterFile.index_of(register) for register, _ in flips}
        if _RIP in reg_indices:
            self._activated = True
            self._activation_index = count
        elif len(reg_indices) == 1:
            reg_index = next(iter(reg_indices))
            if self._inj_known is not None:
                self._activated = True
                self._activation_index = self._inj_known
            else:
                self._watch_reg = reg_index
        # Multi-register burst: no single register to watch — the report's
        # ``activated`` stays None and callers infer it from divergence.

    def _watch(self, instr: Instr, count: int) -> None:
        reads, writes = instr_register_accesses(instr)
        reg = self._watch_reg
        if reg in reads:
            self._activated = True
            self._activation_index = count
            self._watch_reg = None
        elif reg in writes:
            self._activated = False
            self._watch_reg = None

    # -- checkpointing --------------------------------------------------------

    def checkpoint_core(self) -> CoreCheckpoint:
        """Capture the core's architectural state at the current instruction
        boundary (valid between :meth:`resume` slices or after a run)."""
        return CoreCheckpoint(
            index=self.tracer.count,
            regs=self.regs.snapshot(),
            pmu=self.pmu.snapshot(),
            tracer=self.tracer.snapshot(),
            tsc=self.tsc,
            assert_checks=self._assert_checks,
        )

    def restore_core(self, checkpoint: CoreCheckpoint) -> None:
        """Restore state captured by :meth:`checkpoint_core`.

        Injection state is untouched; callers arming a fault do so *after*
        restoring (as :meth:`schedule_register_flip` fully re-initializes it).
        """
        self.regs.restore(checkpoint.regs)
        self.pmu.restore(checkpoint.pmu)
        self.tracer.restore(checkpoint.tracer)
        self.tsc = checkpoint.tsc
        self._assert_checks = checkpoint.assert_checks

    # -- execution ------------------------------------------------------------

    def begin(self, entry: int) -> None:
        """Position the core at ``entry`` with a fresh assertion tally,
        ready for :meth:`resume`.  ``run`` == ``begin`` + drain."""
        self.regs.write_index(_RIP, entry)
        self._assert_checks = 0

    def run(
        self,
        program: Program,
        entry: int,
        *,
        max_instructions: int = 200_000,
    ) -> ExecutionResult:
        """Execute ``program`` from byte address ``entry`` to a terminator.

        Raises :class:`HardwareException` / :class:`AssertionViolation` for
        simulated architectural events and :class:`SimulationLimitExceeded`
        when the watchdog budget is exhausted (a modeled hang).
        """
        self.begin(entry)
        result = self._dispatch(program, max_instructions, None)
        assert result is not None  # stop_at=None always drains to a terminator
        return result

    def resume(
        self,
        program: Program,
        *,
        max_instructions: int = 200_000,
        stop_at: int | None = None,
    ) -> ExecutionResult | None:
        """Continue execution from the current architectural state.

        With ``stop_at``, execution pauses *before* dynamic instruction index
        ``stop_at`` retires and returns ``None`` — the core then sits at an
        instruction boundary suitable for :meth:`checkpoint_core`.  Without
        it, runs to a terminator exactly like :meth:`run` (the watchdog
        budget is absolute, measured against the tracer's total count, so a
        resumed run behaves bit-identically to an uninterrupted one).
        """
        return self._dispatch(program, max_instructions, stop_at)

    def _dispatch(
        self, program: Program, budget: int, stop_at: int | None
    ) -> ExecutionResult | None:
        # Hot loop: every per-iteration attribute load that cannot change
        # mid-run is hoisted into a local, and the per-instruction machine
        # state (dynamic count, path hash, PMU inst/branch totals, TSC) is
        # buffered in locals — flushed on every exit path by the finally
        # block, and synced around the two ops that consume it mid-loop
        # (rep_movs mutates tracer/PMU/TSC in bulk, rdtsc reads the TSC).
        regs = self.regs
        rvals = regs._values
        tracer = self.tracer
        pmu = self.pmu
        light = tracer.light
        enabled = tracer.enabled
        addresses = tracer.addresses
        tsc_step = self.tsc_per_instruction
        mem_read = self.memory.read_u64
        mem_write = self.memory.write_u64
        add_f = add_flags
        sub_f = sub_flags
        logic_f = update_flags_logic
        ib = INSTRUCTION_BYTES
        # Fast-fetch bounds: addresses inside the program text are decoded by
        # direct indexing; everything else goes through the faulting path.
        text_base = program.base
        text_span = program.end - text_base
        instructions = program.instructions
        exec_list = self._exec_list
        inj_index = self._inj_index
        injecting = inj_index is not None and not self._inj_applied
        watching = self._watch_reg is not None
        # Single hot-loop comparison: pausing (ladder checkpoint) and the
        # watchdog budget share one threshold; the slow path disambiguates,
        # with the budget raise winning when both trip at the same count.
        pause = budget if stop_at is None or stop_at > budget else stop_at
        # Runaway-loop probe (repro.machine.loopproof): armed only for
        # full-budget runs with light tracing — ladder slices observe
        # mid-run state and full traces observe every address, so both must
        # execute concretely.  The probe shares the loop-top ``pause``
        # comparison; ``real_pause`` keeps the genuine stop threshold.
        real_pause = pause
        probe_state = (
            1
            if self.loop_proof and stop_at is None and light and enabled
            and pause > _PROBE_AT + tracer.count
            else 0
        )
        if probe_state:
            pause = tracer.count + _PROBE_AT
        probe_hist: list[int] | None = None
        probe_period: list[int] = []
        probe_anchor = 0
        probe_p = 0
        probe_s0: list[int] = []
        probe_s1: list[int] = []
        probe_attempts = 0
        proved_skip = 0
        # Constants rebound as locals (LOAD_FAST beats LOAD_GLOBAL in the
        # per-retirement opcode comparison chain below).
        m64 = MASK64
        fnv = _FNV_PRIME
        i_rip = _RIP
        i_fl = _RFLAGS
        i_sp = _RSP
        term_min = _TERMINATOR_MIN
        c_jcc = _I_JCC
        c_cmp = _I_CMP
        c_mov = _I_MOV
        c_inc = _I_INC
        c_jmp = _I_JMP
        c_add = _I_ADD
        c_test = _I_TEST
        c_store = _I_STORE
        c_load = _I_LOAD
        c_shl = _I_SHL
        c_dec = _I_DEC
        c_shr = _I_SHR
        c_and = _I_AND
        c_or = _I_OR
        c_pop = _I_POP
        c_imul = _I_IMUL
        c_push = _I_PUSH

        count = tracer.count
        path_hash = tracer.path_hash
        p_inst = pmu._inst
        p_br = pmu._br
        p_loads = pmu._loads
        p_stores = pmu._stores
        tsc = self.tsc

        # Translated-block dispatch is only legal when a block's batched
        # accounting matches what per-instruction interpretation would have
        # done: light tracing (no per-address log), tracer enabled (blocks
        # always count), and in-text execution.  A pending injection needs
        # per-instruction visibility (``block_limit`` stops blocks short of
        # the flip), and a live activation watch interprets any block that
        # touches the watched register — blocks that cannot resolve the
        # watch (``meta.touched``) still run translated.
        use_trans = self.translate and light and enabled and text_span > 0
        if use_trans:
            translation = translation_for(program)
            blocks = translation.blocks
            compile_block = translation.compile_block
            heat = translation.heat
            # Read through the module so tests can pin the threshold to 1.
            threshold = _translator.COMPILE_THRESHOLD
        else:
            blocks = compile_block = heat = None  # type: ignore[assignment]
            threshold = 0
        fast = use_trans and not watching
        # A block only runs when it retires entirely before the next stop:
        # the pause/budget threshold always, and the injection index while a
        # flip is pending (the trial interprets from the injection point on).
        block_limit = inj_index if injecting and inj_index < pause else pause
        t_instr = 0
        t_blocks = 0
        count0 = count

        try:
            while True:
                if count >= pause:
                    if count >= budget:
                        raise SimulationLimitExceeded(budget)
                    if not probe_state:
                        return None
                    # -- runaway-loop probe state machine (count < budget,
                    # so this trip belongs to the probe, not the caller) --
                    advanced = False
                    if probe_state == 1:
                        # Suspicion threshold: start recording a window of
                        # retirement addresses (a pending flip or live
                        # watch needs per-instruction visibility — retry
                        # once it resolves).
                        if not injecting and not watching:
                            probe_hist = []
                            probe_state = 2
                            pause = min(real_pause, count + _PROBE_WINDOW)
                            advanced = True
                    elif probe_state == 2:
                        # Window complete (unless a bulk retire overshot
                        # it): look for a rip-periodic cycle the prover
                        # can rotate to a flags-clean anchor.
                        from repro.machine import loopproof as _loopproof

                        period = (
                            _loopproof.find_period(probe_hist, rvals[i_rip])
                            if count == pause and probe_hist is not None
                            else None
                        )
                        probe_hist = None
                        if period is not None:
                            rot = _loopproof.plan_rotation(program, period)
                            if rot is not None:
                                probe_period = period[rot:] + period[:rot]
                                probe_anchor = probe_period[0]
                                probe_p = len(period)
                                if rot == 0:
                                    probe_s0 = rvals[:]
                                    probe_state = 4
                                    pause = min(real_pause, count + probe_p)
                                else:
                                    probe_state = 3
                                    pause = min(real_pause, count + rot)
                                advanced = True
                    elif probe_state == 3:
                        # Rotated to the anchor: snapshot S0.
                        if count == pause and rvals[i_rip] == probe_anchor:
                            probe_s0 = rvals[:]
                            probe_state = 4
                            pause = min(real_pause, count + probe_p)
                            advanced = True
                    elif probe_state == 4:
                        # One real period later: snapshot S1.
                        if count == pause and rvals[i_rip] == probe_anchor:
                            probe_s1 = rvals[:]
                            probe_state = 5
                            pause = min(real_pause, count + probe_p)
                            advanced = True
                    else:  # probe_state == 5: S2 — deltas, then the proof.
                        if count == pause and rvals[i_rip] == probe_anchor:
                            from repro.machine import loopproof as _loopproof

                            s0, s1 = probe_s0, probe_s1
                            if _loopproof.prove_runaway(
                                program,
                                self.memory,
                                probe_period,
                                rvals[:],
                                [(b - a) & m64 for a, b in zip(s0, s1)],
                                [(b - a) & m64 for a, b in zip(s1, rvals)],
                                budget - count,
                            ):
                                # Certified: the cycle retires one
                                # instruction per address until the budget.
                                # Only the final count is architecturally
                                # observable past a watchdog kill — no
                                # checkpoint is taken and the classifier
                                # reads tracer.count alone — so jump
                                # straight to the exhausted budget.
                                skipped = budget - count
                                proved_skip = skipped
                                count = budget
                                p_inst += skipped
                                tsc += tsc_step * skipped
                                self.proved_hangs += 1
                                self.proved_hang_instructions += skipped
                                raise SimulationLimitExceeded(budget)
                    if not advanced:
                        probe_attempts += 1
                        probe_hist = None
                        if probe_attempts >= _PROBE_MAX_ATTEMPTS:
                            probe_state = 0
                            pause = real_pause
                        else:
                            probe_state = 1
                            pause = min(real_pause, count + _PROBE_RETRY)
                    block_limit = (
                        inj_index if injecting and inj_index < pause else pause
                    )
                    continue
                rip = rvals[i_rip]
                if injecting and count >= inj_index:
                    self._apply_injection(count)
                    injecting = False
                    watching = self._watch_reg is not None
                    fast = use_trans and not watching
                    block_limit = pause
                    rip = rvals[i_rip]
                offset = rip - text_base
                if 0 <= offset < text_span and not offset & 3:
                    if use_trans:
                        idx = offset >> 2
                        entry = blocks[idx]
                        if entry is None:
                            # Warmth-gated compilation: interpret cold
                            # entries (one-off side entries never amortize
                            # trace compilation); compile at the threshold.
                            warmth = heat[idx] + 1
                            if warmth >= threshold:
                                entry = compile_block(idx)
                            else:
                                heat[idx] = warmth
                                entry = False
                        if (
                            entry is not False
                            and count + entry[1] <= block_limit
                            and (
                                fast
                                or not entry[6].touched >> self._watch_reg & 1
                            )
                        ):
                            try:
                                (
                                    path_hash, n, nbr, nld, nst, nak,
                                ) = entry[0](rvals, mem_read, mem_write, path_hash)
                            except (HardwareException, AssertionViolation) as exc:
                                # Precise side exit: re-synchronize counters,
                                # hash and RIP for the partially retired
                                # prefix — the faulting instruction retires
                                # (count/inst/tsc, and its branch event for a
                                # faulting CALL/RET) but not its memory event
                                # — then deliver the exception exactly as the
                                # interpreter would have.
                                meta = entry[6]
                                k = meta.index_of[exc.rip]
                                retired = k + 1
                                count += retired
                                p_inst += retired
                                tsc += tsc_step * retired
                                p_loads += meta.loads_before[k]
                                p_stores += meta.stores_before[k]
                                p_br += meta.branches_through[k]
                                self._assert_checks += meta.asserts_through[k]
                                for a in meta.addrs[:retired]:
                                    path_hash = ((path_hash ^ a) * fnv) & m64
                                t_instr += retired
                                rvals[i_rip] = exc.rip
                                raise
                            count += n
                            p_inst += n
                            p_br += nbr
                            p_loads += nld
                            p_stores += nst
                            tsc += tsc_step * n
                            if nak:
                                self._assert_checks += nak
                            t_instr += n
                            t_blocks += 1
                            if probe_hist is not None:
                                probe_hist.extend(entry[6].addrs[:n])
                            continue
                    instr = instructions[offset >> 2]
                else:
                    instr = self._fetch(program, rip)
                oi = instr.op_index
                if oi >= term_min:
                    if enabled:
                        count += 1
                        path_hash = ((path_hash ^ rip) * fnv) & m64
                        if not light:
                            addresses.append(rip)
                    p_inst += 1
                    tsc += tsc_step
                    return ExecutionResult(
                        exit_op=instr.op,
                        instructions=count,
                        final_rip=rip,
                        path_hash=path_hash,
                        tsc_end=tsc,
                        assertion_checks=self._assert_checks,
                        addresses=tuple(addresses) if not light else (),
                    )
                if watching:
                    self._watch(instr, count)
                    watching = self._watch_reg is not None
                    if not watching:
                        fast = use_trans
                if enabled:
                    count += 1
                    path_hash = ((path_hash ^ rip) * fnv) & m64
                    if not light:
                        addresses.append(rip)
                if probe_hist is not None:
                    probe_hist.append(rip)
                p_inst += 1
                tsc += tsc_step
                # Inline bodies for the ops that dominate the dynamic mix
                # (ordered by measured frequency; together ~98% of retirements).
                # Each block ends by writing RIP and continuing — the generic
                # tail below only serves the rare fallback ops.
                if oi == c_jcc:
                    p_br += 1
                    f = rvals[i_fl]
                    if (instr.cond_table >> ((f & 1) | ((f >> 5) & 6) | ((f >> 8) & 8))) & 1:
                        rvals[i_rip] = instr.target & m64  # type: ignore[operator]
                    else:
                        rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_cmp:
                    a = rvals[instr.dst_index]
                    b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    rvals[i_fl] = sub_f(rvals[i_fl], a - b, a, b)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_mov:
                    rvals[instr.dst_index] = (
                        rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    )
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_inc:
                    di = instr.dst_index
                    a = rvals[di]
                    rvals[di] = (a + 1) & m64
                    rvals[i_fl] = add_f(rvals[i_fl], a + 1, a, 1)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_jmp:
                    p_br += 1
                    rvals[i_rip] = instr.target & m64  # type: ignore[operator]
                    continue
                if oi == c_add:
                    di = instr.dst_index
                    a = rvals[di]
                    b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    wide = a + b
                    rvals[di] = wide & m64
                    rvals[i_fl] = add_f(rvals[i_fl], wide, a, b)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_test:
                    a = rvals[instr.dst_index]
                    b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    rvals[i_fl] = logic_f(rvals[i_fl], a & b)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_store:
                    mem_write(
                        (rvals[instr.mem_base_index] + instr.mem_disp) & m64,
                        rvals[instr.src_index] if instr.src_is_reg else instr.src_imm,
                        rip=rip,
                    )
                    p_stores += 1
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_load:
                    value = mem_read(
                        (rvals[instr.mem_base_index] + instr.mem_disp) & m64, rip=rip
                    )
                    p_loads += 1
                    rvals[instr.dst_index] = value
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_shl:
                    di = instr.dst_index
                    b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    result = (rvals[di] << (b & 63)) & m64
                    rvals[di] = result
                    rvals[i_fl] = logic_f(rvals[i_fl], result)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_dec:
                    di = instr.dst_index
                    a = rvals[di]
                    rvals[di] = (a - 1) & m64
                    rvals[i_fl] = sub_f(rvals[i_fl], a - 1, a, 1)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_shr:
                    di = instr.dst_index
                    b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    result = rvals[di] >> (b & 63)
                    rvals[di] = result
                    rvals[i_fl] = logic_f(rvals[i_fl], result)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_and:
                    di = instr.dst_index
                    result = rvals[di] & (
                        rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    )
                    rvals[di] = result
                    rvals[i_fl] = logic_f(rvals[i_fl], result)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_or:
                    di = instr.dst_index
                    result = rvals[di] | (
                        rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
                    )
                    rvals[di] = result
                    rvals[i_fl] = logic_f(rvals[i_fl], result)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_pop:
                    rsp = rvals[i_sp]
                    try:
                        value = mem_read(rsp, rip=rip)
                    except HardwareException as exc:
                        _raise_stack_fault(exc)
                    p_loads += 1
                    rvals[instr.dst_index] = value
                    rvals[i_sp] = (rsp + 8) & m64
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_imul:
                    di = instr.dst_index
                    result = (
                        rvals[di]
                        * (rvals[instr.src_index] if instr.src_is_reg else instr.src_imm)
                    ) & m64
                    rvals[di] = result
                    rvals[i_fl] = logic_f(rvals[i_fl], result)
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                if oi == c_push:
                    rsp = (rvals[i_sp] - 8) & m64
                    try:
                        mem_write(rsp, rvals[instr.src_index], rip=rip)
                    except HardwareException as exc:
                        _raise_stack_fault(exc)
                    p_stores += 1
                    rvals[i_sp] = rsp
                    rvals[i_rip] = (rip + ib) & m64
                    continue
                # Fallback: rare ops run through their handler with the
                # buffered state flushed first (rep_movs/rdtsc consume it,
                # call/ret bump PMU memory counters) and reloaded after.
                if instr.is_branch:
                    p_br += 1
                tracer.count = count
                tracer.path_hash = path_hash
                pmu._inst = p_inst
                pmu._br = p_br
                pmu._loads = p_loads
                pmu._stores = p_stores
                self.tsc = tsc
                next_rip = exec_list[oi](instr)  # type: ignore[misc]
                count = tracer.count
                path_hash = tracer.path_hash
                p_inst = pmu._inst
                p_br = pmu._br
                p_loads = pmu._loads
                p_stores = pmu._stores
                tsc = self.tsc
                rvals[i_rip] = (rip + ib) & m64 if next_rip is None else next_rip & m64
        finally:
            tracer.count = count
            tracer.path_hash = path_hash
            pmu._inst = p_inst
            pmu._br = p_br
            pmu._loads = p_loads
            pmu._stores = p_stores
            self.tsc = tsc
            self.translated_instructions += t_instr
            self.block_executions += t_blocks
            interp = count - count0 - t_instr - proved_skip
            self.interpreted_instructions += interp
            CACHE.translated_instructions += t_instr
            CACHE.block_executions += t_blocks
            CACHE.interpreted_instructions += interp

    def _fetch(self, program: Program, rip: int) -> Instr:
        if not is_canonical(rip):
            raise HardwareException(
                Vector.GENERAL_PROTECTION, rip, address=rip, detail="non-canonical rip"
            )
        region = self.memory.region_at(rip)
        if region is None:
            raise HardwareException(
                Vector.PAGE_FAULT,
                rip,
                address=rip,
                kind=PageFaultKind.FATAL_UNMAPPED,
                detail="instruction fetch from unmapped memory",
            )
        if not region.executable:
            raise HardwareException(
                Vector.PAGE_FAULT,
                rip,
                address=rip,
                kind=PageFaultKind.FATAL_PROTECTION,
                detail=f"instruction fetch from non-executable {region.name}",
            )
        instr = program.instruction_at(rip)
        if instr is None:
            # Mapped, executable, but not a valid instruction boundary:
            # decoding garbage -> invalid opcode.
            raise HardwareException(
                Vector.INVALID_OPCODE, rip, address=rip, detail="misaligned or stray fetch"
            )
        return instr

    # -- instruction semantics ---------------------------------------------------

    # The arithmetic/logic/compare handlers below index the register value
    # list directly (writes are masked in place) and read operands through
    # the Instr's flattened metadata (``dst_index``/``src_is_reg``/...):
    # together they retire most dynamic instructions, and attribute-chain
    # plus read_index/write_index call overhead is the dominant
    # per-instruction cost at this grain.

    def _op_mov(self, instr: Instr) -> None:
        rvals = self.regs._values
        rvals[instr.dst_index] = (
            rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        )

    def _op_load(self, instr: Instr) -> None:
        rvals = self.regs._values
        addr = (rvals[instr.mem_base_index] + instr.mem_disp) & MASK64
        value = self.memory.read_u64(addr, rip=rvals[_RIP])
        self.pmu._loads += 1
        rvals[instr.dst_index] = value

    def _op_store(self, instr: Instr) -> None:
        rvals = self.regs._values
        addr = (rvals[instr.mem_base_index] + instr.mem_disp) & MASK64
        self.memory.write_u64(
            addr,
            rvals[instr.src_index] if instr.src_is_reg else instr.src_imm,
            rip=rvals[_RIP],
        )
        self.pmu._stores += 1

    def _op_lea(self, instr: Instr) -> None:
        rvals = self.regs._values
        rvals[instr.dst_index] = (rvals[instr.mem_base_index] + instr.mem_disp) & MASK64

    def _op_add(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        a = rvals[di]
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        wide = a + b
        rvals[di] = wide & MASK64
        rvals[_RFLAGS] = add_flags(rvals[_RFLAGS], wide, a, b)

    def _op_sub(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        a = rvals[di]
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        wide = a - b
        rvals[di] = wide & MASK64
        rvals[_RFLAGS] = sub_flags(rvals[_RFLAGS], wide, a, b)

    # AND/OR/XOR keep results inside the 64-bit mask by construction (both
    # operands are already masked), so only IMUL/SHL re-mask below.

    def _op_and(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        result = rvals[di] & (rvals[instr.src_index] if instr.src_is_reg else instr.src_imm)
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_or(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        result = rvals[di] | (rvals[instr.src_index] if instr.src_is_reg else instr.src_imm)
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_xor(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        result = rvals[di] ^ (rvals[instr.src_index] if instr.src_is_reg else instr.src_imm)
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_imul(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        result = (
            rvals[di] * (rvals[instr.src_index] if instr.src_is_reg else instr.src_imm)
        ) & MASK64
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_div(self, instr: Instr) -> None:
        rvals = self.regs._values
        divisor = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        if divisor == 0:
            raise HardwareException(
                Vector.DIVIDE_ERROR, rvals[_RIP], detail="division by zero"
            )
        di = instr.dst_index
        quotient = rvals[di] // divisor
        rvals[di] = quotient
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], quotient)

    def _op_shl(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        result = (rvals[di] << (b & 63)) & MASK64
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_shr(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        result = rvals[di] >> (b & 63)
        rvals[di] = result
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], result)

    def _op_cmp(self, instr: Instr) -> None:
        rvals = self.regs._values
        a = rvals[instr.dst_index]
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        rvals[_RFLAGS] = sub_flags(rvals[_RFLAGS], a - b, a, b)

    def _op_test(self, instr: Instr) -> None:
        rvals = self.regs._values
        a = rvals[instr.dst_index]
        b = rvals[instr.src_index] if instr.src_is_reg else instr.src_imm
        rvals[_RFLAGS] = update_flags_logic(rvals[_RFLAGS], a & b)

    def _op_inc(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        a = rvals[di]
        rvals[di] = (a + 1) & MASK64
        rvals[_RFLAGS] = add_flags(rvals[_RFLAGS], a + 1, a, 1)

    def _op_dec(self, instr: Instr) -> None:
        rvals = self.regs._values
        di = instr.dst_index
        a = rvals[di]
        rvals[di] = (a - 1) & MASK64
        rvals[_RFLAGS] = sub_flags(rvals[_RFLAGS], a - 1, a, 1)

    def _op_jmp(self, instr: Instr) -> int:
        return instr.target  # type: ignore[return-value]

    def _op_jcc(self, instr: Instr) -> int | None:
        f = self.regs._values[_RFLAGS]
        if (instr.cond_table >> ((f & 1) | ((f >> 5) & 6) | ((f >> 8) & 8))) & 1:
            return instr.target
        return None

    # Stack ops guard their memory access inline (a try/except is free when
    # no exception fires; the old closure-per-execution pattern was not),
    # converting fatal page faults into #SS via ``_raise_stack_fault``.

    def _op_call(self, instr: Instr) -> int | None:
        rvals = self.regs._values
        rsp = (rvals[_RSP] - 8) & MASK64
        rip = rvals[_RIP]
        try:
            self.memory.write_u64(rsp, rip + INSTRUCTION_BYTES, rip=rip)
        except HardwareException as exc:
            _raise_stack_fault(exc)
        self.pmu._stores += 1
        rvals[_RSP] = rsp
        return instr.target  # type: ignore[return-value]

    def _op_ret(self, instr: Instr) -> int | None:
        rvals = self.regs._values
        rsp = rvals[_RSP]
        try:
            target = self.memory.read_u64(rsp, rip=rvals[_RIP])
        except HardwareException as exc:
            _raise_stack_fault(exc)
        self.pmu._loads += 1
        rvals[_RSP] = (rsp + 8) & MASK64
        return target

    def _op_push(self, instr: Instr) -> None:
        rvals = self.regs._values
        rsp = (rvals[_RSP] - 8) & MASK64
        try:
            self.memory.write_u64(rsp, rvals[instr.src_index], rip=rvals[_RIP])
        except HardwareException as exc:
            _raise_stack_fault(exc)
        self.pmu._stores += 1
        rvals[_RSP] = rsp

    def _op_pop(self, instr: Instr) -> None:
        rvals = self.regs._values
        rsp = rvals[_RSP]
        try:
            value = self.memory.read_u64(rsp, rip=rvals[_RIP])
        except HardwareException as exc:
            _raise_stack_fault(exc)
        self.pmu._loads += 1
        rvals[instr.dst_index] = value
        rvals[_RSP] = (rsp + 8) & MASK64

    def _op_rep_movs(self, instr: Instr) -> None:
        """Copy ``rcx`` 64-bit words from ``[rsi]`` to ``[rdi]``.

        Executed in bulk for speed, but counted per-word: each copied word
        retires one "instruction" (iteration), one load and one store, so a
        corrupted ``rcx`` visibly stretches the dynamic footprint (Fig. 5a).
        """
        regs = self.regs
        rip = regs.read_index(_RIP)
        count = regs.read_index(_RCX)
        copied = 0
        while copied < count:
            rsi = regs.read_index(_RSI)
            rdi = regs.read_index(_RDI)
            src_ok = self._words_until_fault(rsi, write=False)
            dst_ok = self._words_until_fault(rdi, write=True)
            chunk = min(count - copied, src_ok, dst_ok)
            if chunk == 0:
                # The next word access faults; route through the memory system
                # so the exception carries an accurate faulting address.
                if src_ok == 0:
                    self.memory.read_u64(rsi, rip=rip)
                else:
                    self.memory.write_u64(rdi, 0, rip=rip)
                raise AssertionError("unreachable: fault expected")  # pragma: no cover
            for i in range(chunk):
                value = self.memory.read_u64(rsi + 8 * i, rip=rip)
                self.memory.write_u64(rdi + 8 * i, value, rip=rip)
            copied += chunk
            regs.write_index(_RSI, (rsi + 8 * chunk) & MASK64)
            regs.write_index(_RDI, (rdi + 8 * chunk) & MASK64)
            regs.write_index(_RCX, count - copied)
            # Each copied word retires one extra "iteration instruction" on
            # top of the rep_movs itself, so a corrupted rcx stretches both
            # the RT counter and the dynamic path (Fig. 5a behaviour).
            self.pmu.count_block(chunk, 0, chunk, chunk)
            self.tracer.record_bulk(rip, chunk)
            self.tsc += self.tsc_per_instruction * chunk

    def _words_until_fault(self, address: int, *, write: bool) -> int:
        """How many consecutive 8-byte words starting at ``address`` are safe."""
        if not is_canonical(address):
            return 0
        region = self.memory.region_at(address)
        if region is None:
            return 0
        if (write and not region.writable) or (not write and not region.readable):
            return 0
        return max(0, (region.end - address) // 8)

    def _op_rdtsc(self, instr: Instr) -> None:
        self.regs.write_index(_RAX, self.tsc & 0xFFFFFFFF)
        self.regs.write_index(_RDX, (self.tsc >> 32) & 0xFFFFFFFF)

    def _op_cpuid(self, instr: Instr) -> None:
        leaf = self.regs.read_index(_RAX)
        eax, ebx, ecx, edx = self.cpuid_table.get(leaf & 0xFFFFFFFF, (0, 0, 0, 0))
        self.regs.write_index(_RAX, eax)
        self.regs.write_index(_RBX, ebx)
        self.regs.write_index(_RCX, ecx)
        self.regs.write_index(_RDX, edx)

    def _op_assert_range(self, instr: Instr) -> None:
        self._assert_checks += 1
        value = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        if not instr.lo <= value <= instr.hi:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                value,
                detail=f"expected [{instr.lo}, {instr.hi}]",
            )

    def _op_assert_eq(self, instr: Instr) -> None:
        self._assert_checks += 1
        value = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        if value != instr.lo:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                value,
                detail=f"expected {instr.lo:#x}",
            )

    def _op_assert_eq_reg(self, instr: Instr) -> None:
        self._assert_checks += 1
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self.regs.read_index(instr.src.index)  # type: ignore[union-attr]
        if a != b:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                a,
                detail=f"redundant copies differ: {a:#x} != {b:#x}",
            )

    def _op_nop(self, instr: Instr) -> None:
        return None


_BRANCH_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.RET})
