"""CPU core: fetch/decode/execute with fault-injection hooks.

One :class:`CPUCore` models a logical core executing host-mode (hypervisor)
code.  The core owns the architectural register file, a performance-counter
bank, a tracer, and a time-stamp counter; memory is shared machine state.

Fault injection is a first-class citizen: :meth:`CPUCore.schedule_register_flip`
arms a single-bit flip to be applied immediately before a chosen *dynamic*
instruction, after which the core tracks whether the flipped register is read
before it is overwritten — the paper's activated/non-activated distinction
(Section V.B: "Only soft errors occurring before reading registers can be
activated").
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import MachineConfigError, SimulationLimitExceeded
from repro.machine.exceptions import (
    AssertionViolation,
    HardwareException,
    PageFaultKind,
    Vector,
)
from repro.machine.flags import condition_met, update_flags_arith, update_flags_logic
from repro.machine.isa import (
    INSTRUCTION_BYTES,
    Imm,
    Instr,
    Mem,
    Op,
    Program,
    Reg,
)
from repro.machine.memory import Memory, is_canonical
from repro.machine.perfcounters import PerformanceCounterUnit
from repro.machine.registers import MASK64, RegisterFile
from repro.machine.tracer import Tracer

__all__ = [
    "CPUCore",
    "ExecutionResult",
    "InjectionReport",
    "instr_register_accesses",
    "DEFAULT_CPUID_TABLE",
]

_RIP = RegisterFile.index_of("rip")
_RSP = RegisterFile.index_of("rsp")
_RFLAGS = RegisterFile.index_of("rflags")
_RAX = RegisterFile.index_of("rax")
_RBX = RegisterFile.index_of("rbx")
_RCX = RegisterFile.index_of("rcx")
_RDX = RegisterFile.index_of("rdx")
_RSI = RegisterFile.index_of("rsi")
_RDI = RegisterFile.index_of("rdi")

#: Deterministic CPUID leaves: leaf -> (eax, ebx, ecx, edx).  Values echo a
#: Xeon-like identification block; what matters for the reproduction is that
#: the hypervisor's trap-and-emulate path produces *specific* values a guest
#: will consume (the Section II.A long-latency example).
DEFAULT_CPUID_TABLE: dict[int, tuple[int, int, int, int]] = {
    0x0: (0x0000000B, 0x756E6547, 0x6C65746E, 0x49656E69),  # "GenuineIntel"
    0x1: (0x000106A5, 0x00100800, 0x009CE3BD, 0xBFEBFBFF),  # family/model/features
    0x2: (0x55035A01, 0x00F0B2E4, 0x00000000, 0x09CA212C),
    0x4: (0x1C004121, 0x01C0003F, 0x0000003F, 0x00000000),
    0x80000000: (0x80000008, 0, 0, 0),
    0x80000008: (0x00003028, 0, 0, 0),
}


def instr_register_accesses(instr: Instr) -> tuple[frozenset[int], frozenset[int]]:
    """Return ``(reads, writes)`` register-index sets for ``instr``.

    RIP is deliberately excluded (every instruction touches it); flips in RIP
    are always considered activated by the injector.  The sets drive the
    activated/non-activated classification of injected faults.
    """
    op = instr.op
    reads: set[int] = set()
    writes: set[int] = set()

    def _src_reads() -> None:
        if isinstance(instr.src, Reg):
            reads.add(instr.src.index)
        elif isinstance(instr.src, Mem):
            reads.add(instr.src.base.index)

    if op is Op.MOV:
        _src_reads()
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op in (Op.LOAD, Op.LEA):
        reads.add(instr.src.base.index)  # type: ignore[union-attr]
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.STORE:
        reads.add(instr.dst.base.index)  # type: ignore[union-attr]
        if isinstance(instr.src, Reg):
            reads.add(instr.src.index)
    elif op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.DIV, Op.SHL, Op.SHR):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        _src_reads()
        writes.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(_RFLAGS)
    elif op in (Op.CMP, Op.TEST):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        _src_reads()
        writes.add(_RFLAGS)
    elif op in (Op.INC, Op.DEC):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(instr.dst.index)  # type: ignore[union-attr]
        writes.add(_RFLAGS)
    elif op is Op.JCC:
        reads.add(_RFLAGS)
    elif op is Op.CALL:
        reads.add(_RSP)
        writes.add(_RSP)
    elif op is Op.RET:
        reads.add(_RSP)
        writes.add(_RSP)
    elif op is Op.PUSH:
        reads.add(_RSP)
        reads.add(instr.src.index)  # type: ignore[union-attr]
        writes.add(_RSP)
    elif op is Op.POP:
        reads.add(_RSP)
        writes.add(_RSP)
        writes.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.REP_MOVS:
        reads.update((_RCX, _RSI, _RDI))
        writes.update((_RCX, _RSI, _RDI))
    elif op is Op.RDTSC:
        writes.update((_RAX, _RDX))
    elif op is Op.CPUID:
        reads.add(_RAX)
        writes.update((_RAX, _RBX, _RCX, _RDX))
    elif op in (Op.ASSERT_RANGE, Op.ASSERT_EQ):
        reads.add(instr.dst.index)  # type: ignore[union-attr]
    elif op is Op.ASSERT_EQ_REG:
        reads.add(instr.dst.index)  # type: ignore[union-attr]
        reads.add(instr.src.index)  # type: ignore[union-attr]
    # JMP/NOP/VMENTRY/HALT touch nothing but RIP.
    return frozenset(reads), frozenset(writes)


@dataclass(frozen=True)
class InjectionReport:
    """What happened to a scheduled fault after the run."""

    applied: bool
    register: str
    bit: int
    dynamic_index: int
    #: True when the flipped value was read before being overwritten; None
    #: when the run ended before the register was touched again (treated as
    #: non-activated, same as the paper's non-activated errors).
    activated: bool | None
    activation_index: int | None


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one host-mode execution that ran to a terminator."""

    exit_op: Op                 # VMENTRY or HALT
    instructions: int           # dynamic instructions retired (tracer count)
    final_rip: int
    path_hash: int
    tsc_end: int
    assertion_checks: int = 0   # how many assertion predicates were evaluated
    addresses: tuple[int, ...] = field(default_factory=tuple)


class CPUCore:
    """A logical core executing toy-ISA programs against shared memory."""

    def __init__(
        self,
        core_id: int,
        memory: Memory,
        *,
        tsc_start: int = 1_000_000,
        tsc_per_instruction: int = 1,
        cpuid_table: dict[int, tuple[int, int, int, int]] | None = None,
        light_trace: bool = True,
    ) -> None:
        if core_id < 0:
            raise MachineConfigError("core_id must be non-negative")
        self.core_id = core_id
        self.memory = memory
        self.regs = RegisterFile()
        self.pmu = PerformanceCounterUnit()
        self.tracer = Tracer(light=light_trace)
        self.tsc = tsc_start
        self.tsc_per_instruction = tsc_per_instruction
        self.cpuid_table = dict(DEFAULT_CPUID_TABLE if cpuid_table is None else cpuid_table)
        # Injection state
        self._inj_index: int | None = None
        self._inj_reg: str | None = None
        self._inj_bit = 0
        self._inj_applied = False
        self._watch_reg: int | None = None
        self._activated: bool | None = None
        self._activation_index: int | None = None
        self._assert_checks = 0
        exec_map: dict[Op, Callable[[Instr], int | None]] = {
            Op.MOV: self._op_mov,
            Op.LOAD: self._op_load,
            Op.STORE: self._op_store,
            Op.LEA: self._op_lea,
            Op.ADD: self._op_add,
            Op.SUB: self._op_sub,
            Op.AND: self._op_and,
            Op.OR: self._op_or,
            Op.XOR: self._op_xor,
            Op.IMUL: self._op_imul,
            Op.DIV: self._op_div,
            Op.SHL: self._op_shl,
            Op.SHR: self._op_shr,
            Op.CMP: self._op_cmp,
            Op.TEST: self._op_test,
            Op.INC: self._op_inc,
            Op.DEC: self._op_dec,
            Op.JMP: self._op_jmp,
            Op.JCC: self._op_jcc,
            Op.CALL: self._op_call,
            Op.RET: self._op_ret,
            Op.PUSH: self._op_push,
            Op.POP: self._op_pop,
            Op.REP_MOVS: self._op_rep_movs,
            Op.RDTSC: self._op_rdtsc,
            Op.CPUID: self._op_cpuid,
            Op.ASSERT_RANGE: self._op_assert_range,
            Op.ASSERT_EQ: self._op_assert_eq,
            Op.ASSERT_EQ_REG: self._op_assert_eq_reg,
            Op.NOP: self._op_nop,
        }
        # Dense dispatch table indexed by Instr.op_index (no enum hashing on
        # the hot path).  Terminators have no executor.
        self._exec_list: list[Callable[[Instr], int | None] | None] = [
            exec_map.get(op) for op in Op
        ]

    # -- fault injection ------------------------------------------------------

    def schedule_register_flip(self, dynamic_index: int, register: str, bit: int) -> None:
        """Arm a single-bit flip in ``register`` before dynamic instruction
        ``dynamic_index`` (0-based) of the next :meth:`run`."""
        RegisterFile.index_of(register)  # validate eagerly
        if not 0 <= bit < 64:
            raise MachineConfigError(f"bit index {bit} outside [0, 64)")
        if dynamic_index < 0:
            raise MachineConfigError("dynamic_index must be non-negative")
        self._inj_index = dynamic_index
        self._inj_reg = register
        self._inj_bit = bit
        self._inj_applied = False
        self._watch_reg = None
        self._activated = None
        self._activation_index = None

    def clear_injection(self) -> None:
        """Disarm any scheduled fault."""
        self._inj_index = None
        self._inj_reg = None
        self._inj_applied = False
        self._watch_reg = None

    @property
    def injection_report(self) -> InjectionReport | None:
        """Report of the most recently scheduled fault, if any."""
        if self._inj_reg is None:
            return None
        return InjectionReport(
            applied=self._inj_applied,
            register=self._inj_reg,
            bit=self._inj_bit,
            dynamic_index=self._inj_index if self._inj_index is not None else -1,
            activated=self._activated,
            activation_index=self._activation_index,
        )

    def _apply_injection(self) -> None:
        assert self._inj_reg is not None
        self.regs.flip_bit(self._inj_reg, self._inj_bit)
        self._inj_applied = True
        reg_index = RegisterFile.index_of(self._inj_reg)
        if reg_index == _RIP:
            # Control is transferred through RIP on the very next fetch:
            # always activated, immediately.
            self._activated = True
            self._activation_index = self.tracer.count
        else:
            self._watch_reg = reg_index

    def _watch(self, instr: Instr) -> None:
        reads, writes = instr_register_accesses(instr)
        reg = self._watch_reg
        if reg in reads:
            self._activated = True
            self._activation_index = self.tracer.count
            self._watch_reg = None
        elif reg in writes:
            self._activated = False
            self._watch_reg = None

    # -- execution ------------------------------------------------------------

    def run(
        self,
        program: Program,
        entry: int,
        *,
        max_instructions: int = 200_000,
    ) -> ExecutionResult:
        """Execute ``program`` from byte address ``entry`` to a terminator.

        Raises :class:`HardwareException` / :class:`AssertionViolation` for
        simulated architectural events and :class:`SimulationLimitExceeded`
        when the watchdog budget is exhausted (a modeled hang).
        """
        regs = self.regs
        tracer = self.tracer
        pmu = self.pmu
        regs.write_index(_RIP, entry)
        self._assert_checks = 0
        budget = max_instructions
        # Fast-fetch bounds: addresses inside the program text are decoded by
        # direct indexing; everything else goes through the faulting path.
        text_base = program.base
        text_end = program.end
        instructions = program.instructions
        exec_list = self._exec_list
        injecting = self._inj_index is not None

        while True:
            if tracer.count >= budget:
                raise SimulationLimitExceeded(budget)
            rip = regs.read_index(_RIP)
            if injecting and not self._inj_applied and tracer.count >= self._inj_index:
                self._apply_injection()
                rip = regs.read_index(_RIP)
            offset = rip - text_base
            if 0 <= offset < text_end - text_base and not offset & 3:
                instr = instructions[offset >> 2]
            else:
                instr = self._fetch(program, rip)
            if instr.is_terminator:
                tracer.record(rip)
                pmu.count_instruction()
                self.tsc += self.tsc_per_instruction
                return ExecutionResult(
                    exit_op=instr.op,
                    instructions=tracer.count,
                    final_rip=rip,
                    path_hash=tracer.path_hash,
                    tsc_end=self.tsc,
                    assertion_checks=self._assert_checks,
                    addresses=tuple(tracer.addresses) if not tracer.light else (),
                )
            if self._watch_reg is not None:
                self._watch(instr)
            tracer.record(rip)
            pmu.count_instruction()
            if instr.is_branch:
                pmu.count_branch()
            self.tsc += self.tsc_per_instruction
            next_rip = exec_list[instr.op_index](instr)  # type: ignore[misc]
            regs.write_index(_RIP, next_rip if next_rip is not None else rip + INSTRUCTION_BYTES)

    def _fetch(self, program: Program, rip: int) -> Instr:
        if not is_canonical(rip):
            raise HardwareException(
                Vector.GENERAL_PROTECTION, rip, address=rip, detail="non-canonical rip"
            )
        region = self.memory.region_at(rip)
        if region is None:
            raise HardwareException(
                Vector.PAGE_FAULT,
                rip,
                address=rip,
                kind=PageFaultKind.FATAL_UNMAPPED,
                detail="instruction fetch from unmapped memory",
            )
        if not region.executable:
            raise HardwareException(
                Vector.PAGE_FAULT,
                rip,
                address=rip,
                kind=PageFaultKind.FATAL_PROTECTION,
                detail=f"instruction fetch from non-executable {region.name}",
            )
        instr = program.instruction_at(rip)
        if instr is None:
            # Mapped, executable, but not a valid instruction boundary:
            # decoding garbage -> invalid opcode.
            raise HardwareException(
                Vector.INVALID_OPCODE, rip, address=rip, detail="misaligned or stray fetch"
            )
        return instr

    # -- operand helpers -------------------------------------------------------

    def _value(self, operand: Reg | Imm) -> int:
        if type(operand) is Reg:
            return self.regs.read_index(operand.index)
        return operand.value & MASK64

    def _address(self, mem: Mem) -> int:
        return (self.regs.read_index(mem.base.index) + mem.disp) & MASK64

    # -- instruction semantics ---------------------------------------------------

    def _op_mov(self, instr: Instr) -> None:
        self.regs.write_index(instr.dst.index, self._value(instr.src))  # type: ignore[union-attr]

    def _op_load(self, instr: Instr) -> None:
        addr = self._address(instr.src)  # type: ignore[arg-type]
        value = self.memory.read_u64(addr, rip=self.regs.read_index(_RIP))
        self.pmu.count_load()
        self.regs.write_index(instr.dst.index, value)  # type: ignore[union-attr]

    def _op_store(self, instr: Instr) -> None:
        addr = self._address(instr.dst)  # type: ignore[arg-type]
        self.memory.write_u64(addr, self._value(instr.src), rip=self.regs.read_index(_RIP))
        self.pmu.count_store()

    def _op_lea(self, instr: Instr) -> None:
        self.regs.write_index(instr.dst.index, self._address(instr.src))  # type: ignore[union-attr, arg-type]

    def _arith(self, instr: Instr, *, subtract: bool) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self._value(instr.src)
        wide = a - b if subtract else a + b
        self.regs.write_index(instr.dst.index, wide & MASK64)  # type: ignore[union-attr]
        self.regs.write_index(
            _RFLAGS,
            update_flags_arith(self.regs.read_index(_RFLAGS), wide, a, b, subtraction=subtract),
        )

    def _op_add(self, instr: Instr) -> None:
        self._arith(instr, subtract=False)

    def _op_sub(self, instr: Instr) -> None:
        self._arith(instr, subtract=True)

    def _logic(self, instr: Instr, fn: Callable[[int, int], int]) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self._value(instr.src)
        result = fn(a, b) & MASK64
        self.regs.write_index(instr.dst.index, result)  # type: ignore[union-attr]
        self.regs.write_index(_RFLAGS, update_flags_logic(self.regs.read_index(_RFLAGS), result))

    def _op_and(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a & b)

    def _op_or(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a | b)

    def _op_xor(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a ^ b)

    def _op_imul(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a * b)

    def _op_div(self, instr: Instr) -> None:
        divisor = self._value(instr.src)
        if divisor == 0:
            raise HardwareException(
                Vector.DIVIDE_ERROR, self.regs.read_index(_RIP), detail="division by zero"
            )
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        self.regs.write_index(instr.dst.index, a // divisor)  # type: ignore[union-attr]
        self.regs.write_index(
            _RFLAGS, update_flags_logic(self.regs.read_index(_RFLAGS), a // divisor)
        )

    def _op_shl(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a << (b & 63))

    def _op_shr(self, instr: Instr) -> None:
        self._logic(instr, lambda a, b: a >> (b & 63))

    def _op_cmp(self, instr: Instr) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self._value(instr.src)
        self.regs.write_index(
            _RFLAGS,
            update_flags_arith(self.regs.read_index(_RFLAGS), a - b, a, b, subtraction=True),
        )

    def _op_test(self, instr: Instr) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self._value(instr.src)
        self.regs.write_index(_RFLAGS, update_flags_logic(self.regs.read_index(_RFLAGS), a & b))

    def _op_inc(self, instr: Instr) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        self.regs.write_index(instr.dst.index, (a + 1) & MASK64)  # type: ignore[union-attr]
        self.regs.write_index(
            _RFLAGS,
            update_flags_arith(self.regs.read_index(_RFLAGS), a + 1, a, 1, subtraction=False),
        )

    def _op_dec(self, instr: Instr) -> None:
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        self.regs.write_index(instr.dst.index, (a - 1) & MASK64)  # type: ignore[union-attr]
        self.regs.write_index(
            _RFLAGS,
            update_flags_arith(self.regs.read_index(_RFLAGS), a - 1, a, 1, subtraction=True),
        )

    def _op_jmp(self, instr: Instr) -> int:
        return instr.target  # type: ignore[return-value]

    def _op_jcc(self, instr: Instr) -> int | None:
        if condition_met(instr.cond, self.regs.read_index(_RFLAGS)):  # type: ignore[arg-type]
            return instr.target
        return None

    def _stack_guard(self, fn: Callable[[], int | None]) -> int | None:
        """Run a stack access, converting fatal page faults into #SS."""
        try:
            return fn()
        except HardwareException as exc:
            if exc.vector is Vector.PAGE_FAULT and exc.kind in (
                PageFaultKind.FATAL_UNMAPPED,
                PageFaultKind.FATAL_PROTECTION,
            ):
                raise HardwareException(
                    Vector.STACK_FAULT,
                    exc.rip,
                    address=exc.address,
                    detail=f"stack access fault: {exc.detail}",
                ) from None
            raise

    def _op_call(self, instr: Instr) -> int | None:
        def do() -> int:
            rsp = (self.regs.read_index(_RSP) - 8) & MASK64
            rip = self.regs.read_index(_RIP)
            self.memory.write_u64(rsp, rip + INSTRUCTION_BYTES, rip=rip)
            self.pmu.count_store()
            self.regs.write_index(_RSP, rsp)
            return instr.target  # type: ignore[return-value]

        return self._stack_guard(do)

    def _op_ret(self, instr: Instr) -> int | None:
        def do() -> int:
            rsp = self.regs.read_index(_RSP)
            rip = self.regs.read_index(_RIP)
            target = self.memory.read_u64(rsp, rip=rip)
            self.pmu.count_load()
            self.regs.write_index(_RSP, (rsp + 8) & MASK64)
            return target

        return self._stack_guard(do)

    def _op_push(self, instr: Instr) -> None:
        def do() -> None:
            rsp = (self.regs.read_index(_RSP) - 8) & MASK64
            rip = self.regs.read_index(_RIP)
            self.memory.write_u64(rsp, self.regs.read_index(instr.src.index), rip=rip)  # type: ignore[union-attr]
            self.pmu.count_store()
            self.regs.write_index(_RSP, rsp)

        self._stack_guard(do)  # type: ignore[arg-type]

    def _op_pop(self, instr: Instr) -> None:
        def do() -> None:
            rsp = self.regs.read_index(_RSP)
            rip = self.regs.read_index(_RIP)
            value = self.memory.read_u64(rsp, rip=rip)
            self.pmu.count_load()
            self.regs.write_index(instr.dst.index, value)  # type: ignore[union-attr]
            self.regs.write_index(_RSP, (rsp + 8) & MASK64)

        self._stack_guard(do)  # type: ignore[arg-type]

    def _op_rep_movs(self, instr: Instr) -> None:
        """Copy ``rcx`` 64-bit words from ``[rsi]`` to ``[rdi]``.

        Executed in bulk for speed, but counted per-word: each copied word
        retires one "instruction" (iteration), one load and one store, so a
        corrupted ``rcx`` visibly stretches the dynamic footprint (Fig. 5a).
        """
        regs = self.regs
        rip = regs.read_index(_RIP)
        count = regs.read_index(_RCX)
        copied = 0
        while copied < count:
            rsi = regs.read_index(_RSI)
            rdi = regs.read_index(_RDI)
            src_ok = self._words_until_fault(rsi, write=False)
            dst_ok = self._words_until_fault(rdi, write=True)
            chunk = min(count - copied, src_ok, dst_ok)
            if chunk == 0:
                # The next word access faults; route through the memory system
                # so the exception carries an accurate faulting address.
                if src_ok == 0:
                    self.memory.read_u64(rsi, rip=rip)
                else:
                    self.memory.write_u64(rdi, 0, rip=rip)
                raise AssertionError("unreachable: fault expected")  # pragma: no cover
            for i in range(chunk):
                value = self.memory.read_u64(rsi + 8 * i, rip=rip)
                self.memory.write_u64(rdi + 8 * i, value, rip=rip)
            copied += chunk
            regs.write_index(_RSI, (rsi + 8 * chunk) & MASK64)
            regs.write_index(_RDI, (rdi + 8 * chunk) & MASK64)
            regs.write_index(_RCX, count - copied)
            self.pmu.count_load(chunk)
            self.pmu.count_store(chunk)
            # Each copied word retires one extra "iteration instruction" on
            # top of the rep_movs itself, so a corrupted rcx stretches both
            # the RT counter and the dynamic path (Fig. 5a behaviour).
            self.pmu.count_instruction(chunk)
            self.tracer.record_bulk(rip, chunk)
            self.tsc += self.tsc_per_instruction * chunk

    def _words_until_fault(self, address: int, *, write: bool) -> int:
        """How many consecutive 8-byte words starting at ``address`` are safe."""
        if not is_canonical(address):
            return 0
        region = self.memory.region_at(address)
        if region is None:
            return 0
        if (write and not region.writable) or (not write and not region.readable):
            return 0
        return max(0, (region.end - address) // 8)

    def _op_rdtsc(self, instr: Instr) -> None:
        self.regs.write_index(_RAX, self.tsc & 0xFFFFFFFF)
        self.regs.write_index(_RDX, (self.tsc >> 32) & 0xFFFFFFFF)

    def _op_cpuid(self, instr: Instr) -> None:
        leaf = self.regs.read_index(_RAX)
        eax, ebx, ecx, edx = self.cpuid_table.get(leaf & 0xFFFFFFFF, (0, 0, 0, 0))
        self.regs.write_index(_RAX, eax)
        self.regs.write_index(_RBX, ebx)
        self.regs.write_index(_RCX, ecx)
        self.regs.write_index(_RDX, edx)

    def _op_assert_range(self, instr: Instr) -> None:
        self._assert_checks += 1
        value = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        if not instr.lo <= value <= instr.hi:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                value,
                detail=f"expected [{instr.lo}, {instr.hi}]",
            )

    def _op_assert_eq(self, instr: Instr) -> None:
        self._assert_checks += 1
        value = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        if value != instr.lo:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                value,
                detail=f"expected {instr.lo:#x}",
            )

    def _op_assert_eq_reg(self, instr: Instr) -> None:
        self._assert_checks += 1
        a = self.regs.read_index(instr.dst.index)  # type: ignore[union-attr]
        b = self.regs.read_index(instr.src.index)  # type: ignore[union-attr]
        if a != b:
            raise AssertionViolation(
                instr.assert_id or "<anon>",
                self.regs.read_index(_RIP),
                a,
                detail=f"redundant copies differ: {a:#x} != {b:#x}",
            )

    def _op_nop(self, instr: Instr) -> None:
        return None


_BRANCH_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.RET})
