"""Runaway-loop induction proofs for the watchdog fast path.

A fault that corrupts a loop bound leaves the CPU spinning until the
watchdog budget expires — the paper's *hypervisor hang* outcome.  Those
trials dominate campaign wall-clock: each one burns the entire instruction
budget executing the same few-instruction cycle thousands of times, yet the
only architectural fact the hang record observes is the final dynamic
instruction count (the watchdog fires, the classifier reads
``tracer.count`` and the activation index, and the next trial restores a
checkpoint over everything else).

This module lets the dispatch loop *prove* that outcome instead of
executing it.  Given a detected rip-periodic cycle and the per-period
register deltas measured from two real periods, :func:`prove_runaway`
establishes — exactly, not heuristically — that the cycle cannot exit,
fault, or terminate before the budget is reached:

* register state is modeled as an **affine function of the iteration
  number** (``value = base + slope*k``) with demotion to sound intervals
  when affinity is lost (masking, loads);
* every conditional branch in the cycle must be *decidably constant* over
  all remaining iterations and match the recorded direction;
* every load/store address range must stay inside one mapped (and, for
  stores, writable) region for all remaining iterations;
* a loaded value is unknown (bottom) in the first pass; when that leaves a
  branch undecidable, a second pass **enumerates** the load's affine
  address set concretely — sound because the cycle's stores are proven
  disjoint from it, so those words cannot change — and retries with the
  observed value range;
* the cycle's live-in registers must be closed under the period transfer
  (``out = in + delta``), which is what extends two measured periods to an
  arbitrary number of them.

Any unsupported opcode, undecidable branch, possible wraparound, or failed
closure makes the proof **bail** — the dispatch loop simply keeps executing
concretely, so conservatism can never change an outcome.  A successful
proof lets the CPU advance its retirement count straight to the budget and
deliver the watchdog exception bit-identically to the slow path.
"""

from __future__ import annotations

from repro.machine.cpu import instr_register_accesses
from repro.machine.isa import INSTRUCTION_BYTES, Instr, Mem, Op, Program
from repro.machine.memory import Memory
from repro.machine.registers import MASK64, RegisterFile

__all__ = ["find_period", "plan_rotation", "prove_runaway"]

_RIP = RegisterFile.index_of("rip")
_RFLAGS = RegisterFile.index_of("rflags")
_RAX = RegisterFile.index_of("rax")
_RDX = RegisterFile.index_of("rdx")
_TWO64 = 1 << 64
_SIGN = 1 << 63

#: Opcodes the symbolic pass can transfer.  Anything else bails: DIV can
#: raise #DE, stack ops can fault through RSP, REP_MOVS retires in bulk
#: (breaking count-exactness), CPUID can reject a leaf, asserts can raise,
#: and terminators would have exited the cycle.
_SUPPORTED = frozenset({
    Op.MOV, Op.LOAD, Op.STORE, Op.LEA,
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR,
    Op.CMP, Op.TEST, Op.INC, Op.DEC,
    Op.JMP, Op.JCC, Op.NOP, Op.RDTSC,
})

# Symbolic values: ('a', base, slope) is exactly base + slope*k for every
# iteration k in [0, K] (creation guarantees no mod-2**64 wrap on that
# range); ('i', lo, hi) is a sound unsigned interval.  _FULL is the
# bottom element.
_FULL = ("i", 0, MASK64)

#: Cap on per-load concrete enumeration in the refinement pass (one word
#: per remaining iteration; the watchdog budget keeps K far below this).
_ENUM_LIMIT = 8192


def find_period(hist: list[int], cur: int) -> list[int] | None:
    """Smallest period of the retirement-address suffix of ``hist``.

    Returns the upcoming period's address sequence (starting at ``cur``,
    the next instruction to execute) when the last ``2p`` retirements are
    periodic and predict ``cur``; ``None`` when no period fits the window.
    """
    n = len(hist)
    if n < 4:
        return None
    last = hist[-1]
    for p in range(1, n // 2 + 1):
        if hist[-1 - p] != last:
            continue
        if hist[-p] != cur:
            continue
        if hist[-p:] == hist[-2 * p:-p]:
            return hist[-p:]
    return None


def _decode(program: Program, period: list[int]) -> list[Instr] | None:
    base = program.base
    span = program.end - base
    instrs = program.instructions
    out: list[Instr] = []
    for addr in period:
        off = addr - base
        if off < 0 or off >= span or off & 3:
            return None  # outside immutable text: cannot trust static decode
        ins = instrs[off >> 2]
        if ins.op not in _SUPPORTED:
            return None
        if ins.op is Op.MOV and isinstance(ins.src, Mem):
            return None  # memory-source MOV is not modeled
        out.append(ins)
    return out


def plan_rotation(program: Program, period: list[int]) -> int | None:
    """Pick a cycle rotation whose body defines RFLAGS before any JCC reads
    them (so the symbolic pass never needs a live-in flags value), after
    checking every cycle instruction is statically analyzable.  Among valid
    rotations, prefer the one with the fewest live-in registers: a register
    defined inside the cycle before any use (e.g. a load destination) needs
    no induction hypothesis, and loaded values change by data-dependent
    amounts each period that would defeat the delta-equality premise.
    Returns the rotation offset, or ``None`` when the cycle cannot be
    proven."""
    seq = _decode(program, period)
    if seq is None:
        return None
    p = len(seq)
    accesses = [instr_register_accesses(ins) for ins in seq]
    best: int | None = None
    best_live = -1
    for rot in range(p):
        flags_def = False
        ok = True
        live: set[int] = set()
        defined: set[int] = set()
        for i in range(p):
            reads, writes = accesses[(rot + i) % p]
            if _RFLAGS in reads and not flags_def:
                ok = False
                break
            for r in reads:
                if r not in defined:
                    live.add(r)
            if _RFLAGS in writes:
                flags_def = True
            defined |= writes
        if ok and (best is None or len(live) < best_live):
            best = rot
            best_live = len(live)
    return best


def _walk_alt(
    program: Program, pc: int, period: list[int], fork: int, limit: int = 32
) -> tuple[list[tuple[int, Instr]], int] | None:
    """Trace a JCC's *untaken* arm until it rejoins the cycle.

    Walks straight-line code (following JMPs) from ``pc`` and returns the
    traversed ``(address, instr)`` list plus the period index ``j > fork``
    where execution re-enters the recorded cycle; ``None`` when the arm
    branches again, leaves the text, uses an unsupported op, or fails to
    rejoin ahead of the fork within ``limit`` instructions.
    """
    base = program.base
    span = program.end - base
    instrs = program.instructions
    rejoin: dict[int, int] = {}
    for j in range(len(period) - 1, fork, -1):
        rejoin[period[j]] = j  # earliest index wins
    out: list[tuple[int, Instr]] = []
    for _ in range(limit):
        j = rejoin.get(pc)
        if j is not None:
            return out, j
        off = pc - base
        if off < 0 or off >= span or off & 3:
            return None
        ins = instrs[off >> 2]
        if ins.op not in _SUPPORTED or ins.op is Op.JCC:
            return None
        if ins.op is Op.MOV and isinstance(ins.src, Mem):
            return None
        out.append((pc, ins))
        pc = (ins.target & MASK64) if ins.op is Op.JMP else pc + INSTRUCTION_BYTES
    return None


def _sign_of(lo: int, hi: int) -> int | None:
    """Sign bit of an unsigned-[0, 2**64) range; None when undecidable."""
    if lo >= _SIGN:
        return 1
    if hi < _SIGN:
        return 0
    return None


def prove_runaway(
    program: Program,
    memory: Memory,
    period: list[int],
    regs: list[int],
    deltas1: list[int],
    deltas2: list[int],
    remaining: int,
) -> bool:
    """Prove the cycle spins for at least ``remaining`` more retirements.

    ``regs`` is the concrete register file at the cycle anchor (about to
    execute ``period[0]``); ``deltas1``/``deltas2`` the per-register change
    over the two preceding measured periods.  Only *live-in* registers of
    the cycle need equal deltas — everything defined inside the period
    before use (load destinations in particular change by data-dependent
    amounts) starts from bottom anyway.  True means execution is guaranteed
    to stay in the cycle — same branches, no architectural events — until
    the watchdog budget is reached, retiring exactly one instruction per
    address (the cycle contains no bulk-retiring ops).
    """
    seq = _decode(program, period)
    if seq is None:
        return False
    p = len(seq)
    mask = MASK64
    ib = INSTRUCTION_BYTES

    # -- static alternate arms ---------------------------------------------
    # A conditional inside the cycle whose direction the symbolic pass
    # cannot decide is still compatible with a hang when its other arm
    # rejoins the cycle ahead of the fork: either way execution stays in
    # the loop.  Map each JCC to its untaken-arm trace and rejoin index.
    alt_info: dict[int, tuple[list[tuple[int, Instr]], int]] = {}
    shrink = 0
    for i, (addr, ins) in enumerate(zip(period, seq)):
        if ins.op is not Op.JCC or i + 1 >= p:
            continue
        nxt = period[i + 1]
        taken_next = ins.target & mask
        fall_next = (addr + ib) & mask
        if taken_next == fall_next or nxt not in (taken_next, fall_next):
            continue
        walk = _walk_alt(
            program, fall_next if nxt == taken_next else taken_next, period, i
        )
        if walk is not None:
            alt_seq, j = walk
            alt_info[i] = (alt_seq, j)
            # An iteration through a shorter alternate arm retires fewer
            # instructions, so more iterations may fit in the budget.
            shrink += max(0, (j - i - 1) - len(alt_seq))
    # Branch/no-wrap obligations cover every full or partial iteration up
    # to the budget; closure pushes values one more period out.
    K = remaining // max(1, p - shrink) + 2

    def mk_aff(b: int, s: int):
        """Affine value, demoted to _FULL when [0, K]·slope leaves the
        unsigned 64-bit range (a wrap would break exactness)."""
        e = b + s * K
        lo, hi = (b, e) if s >= 0 else (e, b)
        if lo < 0 or hi > mask:
            return _FULL
        return ("a", b, s)

    def mk_iv(lo: int, hi: int):
        if lo < 0 or hi > mask:
            return _FULL
        return ("i", lo, hi)

    def rng(v) -> tuple[int, int]:
        if v[0] == "a":
            b, s = v[1], v[2]
            e = b + s * K
            return (b, e) if s >= 0 else (e, b)
        return v[1], v[2]

    # -- live-in set (use-before-def over one period) -----------------------
    # Alternate arms read registers too: anything they use that the shared
    # prefix has not defined by the fork also needs an induction value.
    live_in: set[int] = set()
    defined: set[int] = set()
    for i, ins in enumerate(seq):
        reads, writes = instr_register_accesses(ins)
        for r in reads:
            if r not in defined:
                live_in.add(r)
        if i in alt_info:
            seen = set(defined)
            for _, alt_ins in alt_info[i][0]:
                a_reads, a_writes = instr_register_accesses(alt_ins)
                for r in a_reads:
                    if r not in seen:
                        live_in.add(r)
                seen |= a_writes
        defined |= writes
    if _RFLAGS in live_in:
        return False  # plan_rotation should have prevented this

    # -- initial symbolic state --------------------------------------------
    if deltas1[_RIP] & mask or deltas2[_RIP] & mask:
        return False
    vals0: list = [_FULL] * len(regs)
    signed_d: list[int] = [0] * len(regs)
    for r in range(len(regs)):
        d = deltas2[r] & mask
        signed_d[r] = d if d < _SIGN else d - _TWO64
        if r in live_in:
            if d != deltas1[r] & mask:
                return False  # non-constant per-period change: no induction
            v = mk_aff(regs[r], signed_d[r])
            if v[0] != "a":
                return False  # live-in register would wrap: no induction
            vals0[r] = v

    const_cache: dict[int, tuple] = {}

    def const(c: int):
        v = const_cache.get(c)
        if v is None:
            v = const_cache[c] = ("a", c & mask, 0)
        return v

    def src_val(ins: Instr, vals: list):
        return vals[ins.src_index] if ins.src_is_reg else const(ins.src_imm)

    # -- transfer helpers (exact mirrors of the CPU's op semantics) ---------
    def add_vals(a, b):
        if a[0] == "a" and b[0] == "a":
            return mk_aff(a[1] + b[1], a[2] + b[2])
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        lo, hi = alo + blo, ahi + bhi
        if hi <= mask:
            return mk_iv(lo, hi)
        if lo >= _TWO64:
            return mk_iv(lo - _TWO64, hi - _TWO64)
        return _FULL

    def sub_vals(a, b):
        if a[0] == "a" and b[0] == "a":
            return mk_aff(a[1] - b[1], a[2] - b[2])
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        lo, hi = alo - bhi, ahi - blo
        if lo >= 0:
            return mk_iv(lo, hi)
        if hi < 0:
            return mk_iv(lo + _TWO64, hi + _TWO64)
        return _FULL

    def and_vals(a, b):
        if a[0] == "a" and a[2] == 0 and b[0] == "a" and b[2] == 0:
            return const(a[1] & b[1])
        for x, m in ((a, b), (b, a)):
            if m[0] == "a" and m[2] == 0:
                mc = m[1]
                if x[0] == "a" and mc + 1 & mc == 0 and x[2] % (mc + 1) == 0:
                    # Low-bit mask with period-invariant low bits:
                    # (base + slope*k) & mask is constant.
                    return const(x[1] & mc)
                return mk_iv(0, min(mc, rng(x)[1]))
        return mk_iv(0, min(rng(a)[1], rng(b)[1]))

    def or_vals(a, b):
        if a[0] == "a" and a[2] == 0 and b[0] == "a" and b[2] == 0:
            return const(a[1] | b[1])
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        return mk_iv(max(alo, blo), min(mask, ahi + bhi))

    def xor_vals(a, b):
        if a[0] == "a" and a[2] == 0 and b[0] == "a" and b[2] == 0:
            return const(a[1] ^ b[1])
        return mk_iv(0, min(mask, rng(a)[1] + rng(b)[1]))

    def imul_vals(a, b):
        for x, c in ((a, b), (b, a)):
            if c[0] == "a" and c[2] == 0:
                if x[0] == "a":
                    return mk_aff(x[1] * c[1], x[2] * c[1])
                lo, hi = rng(x)
                if hi * c[1] <= mask:
                    return mk_iv(lo * c[1], hi * c[1])
                return _FULL
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        if ahi * bhi <= mask:
            return mk_iv(alo * blo, ahi * bhi)
        return _FULL

    def shl_vals(a, b):
        if b[0] != "a" or b[2] != 0:
            return _FULL
        sh = b[1] & 63
        if a[0] == "a":
            return mk_aff(a[1] << sh, a[2] << sh)
        lo, hi = rng(a)
        if hi << sh <= mask:
            return mk_iv(lo << sh, hi << sh)
        return _FULL

    def shr_vals(a, b):
        if b[0] != "a" or b[2] != 0:
            return _FULL
        sh = b[1] & 63
        if a[0] == "a" and a[2] == 0:
            return const(a[1] >> sh)
        lo, hi = rng(a)
        return mk_iv(lo >> sh, hi >> sh)  # >> is monotone: exact bounds

    def check_mem(addr_val, *, write: bool) -> bool:
        if addr_val[0] == "i" and addr_val[1] == 0 and addr_val[2] == mask:
            return False  # unbounded address
        lo, hi = rng(addr_val)
        region = memory.region_at(lo)
        if region is None or hi + 8 > region.end:
            return False
        return region.writable or not write

    def flags_of(src) -> tuple:
        kind = src[0]
        if kind == "logic":
            lo, hi = rng(src[1])
            zf = 0 if lo > 0 else (1 if hi == 0 else None)
            return 0, zf, _sign_of(lo, hi), 0
        a, b = src[1], src[2]
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        sign_a, sign_b = _sign_of(alo, ahi), _sign_of(blo, bhi)
        if kind == "sub":
            if a[0] == "a" and b[0] == "a":
                d0 = a[1] - b[1]
                dK = d0 + (a[2] - b[2]) * K
                dlo, dhi = (d0, dK) if dK >= d0 else (dK, d0)
            else:
                dlo, dhi = alo - bhi, ahi - blo
            cf = 1 if dhi < 0 else (0 if dlo >= 0 else None)
            zf = 0 if (dlo > 0 or dhi < 0) else (1 if dlo == dhi == 0 else None)
            if (-_SIGN <= dlo and dhi < 0) or (_SIGN <= dlo and dhi < _TWO64):
                sf = 1
            elif (0 <= dlo and dhi < _SIGN) or (-_TWO64 < dlo and dhi < -_SIGN):
                sf = 0
            else:
                sf = None
            of = None
            if sign_a is not None and sign_b is not None and sf is not None:
                of = int(sign_a != sign_b and sign_a != sf)
            return cf, zf, sf, of
        # kind == "add": wide = a + b in [0, 2**65)
        if a[0] == "a" and b[0] == "a":
            w0 = a[1] + b[1]
            wK = w0 + (a[2] + b[2]) * K
            wlo, whi = (w0, wK) if wK >= w0 else (wK, w0)
        else:
            wlo, whi = alo + blo, ahi + bhi
        cf = 1 if wlo > mask else (0 if whi <= mask else None)
        zero_possible = wlo <= 0 <= whi or wlo <= _TWO64 <= whi
        zf = 0 if not zero_possible else (1 if wlo == whi else None)
        if (_SIGN <= wlo and whi < _TWO64) or (_TWO64 + _SIGN <= wlo):
            sf = 1
        elif whi < _SIGN or (_TWO64 <= wlo and whi < _TWO64 + _SIGN):
            sf = 0
        else:
            sf = None
        of = None
        if sign_a is not None and sign_b is not None and sf is not None:
            of = int(sign_a == sign_b and sf != sign_a)
        return cf, zf, sf, of

    def jcc_truth(table: int, flags: tuple) -> int | None:
        """Condition truth when constant over every consistent flag combo."""
        cf, zf, sf, of = flags
        truths = set()
        for c in (cf,) if cf is not None else (0, 1):
            for z in (zf,) if zf is not None else (0, 1):
                for s in (sf,) if sf is not None else (0, 1):
                    for o in (of,) if of is not None else (0, 1):
                        truths.add(table >> (c | z << 1 | s << 2 | o << 3) & 1)
                        if len(truths) > 1:
                            return None
        return truths.pop()

    # -- one symbolic period ------------------------------------------------
    # ``evaluate`` walks the cycle once, threading the symbolic register
    # state and a flag source — ('sub', a, b) | ('add', a, b) |
    # ('logic', result), set by the last flag-writing instruction; each JCC
    # derives (CF, ZF, SF, OF) from it.  Structural problems (wrong
    # successor, possible memory fault, missing flags) are *hard* failures:
    # no refinement can fix them.  An undecidable-or-wrong branch is a
    # *soft* failure: the walk continues (values evolve along the recorded
    # path either way) so every load address and store range is still
    # collected for the refinement pass.  Load keys are a period index, or
    # ('alt', fork_index, step) inside an alternate arm.
    load_addrs: dict = {}
    store_rngs: list[tuple[int, int]] = []
    store_vrngs: list[tuple[int, int]] = []

    def hull(a, b):
        (alo, ahi), (blo, bhi) = rng(a), rng(b)
        return mk_iv(min(alo, blo), max(ahi, bhi))

    def refine_branch(vals, flag_src, flag_reg, table, truth) -> None:
        """Clamp the compared register by the unsigned ordering a branch
        direction implies.  Only CMP reg, const qualifies (``flag_reg`` is
        the register, still unmodified since the compare); SF/OF are left
        free, so the allowed-ordering set over-approximates and the clamp
        stays sound."""
        if flag_reg is None or flag_src[0] != "sub":
            return
        b = flag_src[2]
        if b[0] != "a" or b[2] != 0:
            return
        c = b[1]
        allowed = set()
        for name, cf, zf in (("lt", 1, 0), ("eq", 0, 1), ("gt", 0, 0)):
            if any(
                table >> (cf | zf << 1 | s << 2 | o << 3) & 1 == truth
                for s in (0, 1)
                for o in (0, 1)
            ):
                allowed.add(name)
        if "lt" in allowed and "gt" in allowed:
            return
        lo, hi = rng(vals[flag_reg])
        if "gt" not in allowed:
            hi = min(hi, c if "eq" in allowed else c - 1)
        if "lt" not in allowed:
            lo = max(lo, c if "eq" in allowed else c + 1)
        if lo > hi or lo < 0:
            return  # arm infeasible for every value: leave unrefined
        vals[flag_reg] = mk_iv(lo, hi)

    def evaluate(load_vals: dict) -> list | None:
        vals = list(vals0)
        fl: tuple | None = (None, None)  # (flag_src, flag_reg)
        soft_fail = False
        merges: dict[int, list[list]] = {}

        def step(ins: Instr, vals: list, fl: tuple, lkey) -> tuple | None:
            """Transfer one non-JCC instruction; returns the updated
            (flag_src, flag_reg) or None on a hard (structural) failure."""
            op = ins.op
            flag_src, flag_reg = fl
            if op is Op.MOV:
                vals[ins.dst_index] = src_val(ins, vals)
                if ins.dst_index == flag_reg:
                    flag_reg = None
            elif op is Op.LEA:
                vals[ins.dst_index] = add_vals(
                    vals[ins.mem_base_index], const(ins.mem_disp)
                )
                if ins.dst_index == flag_reg:
                    flag_reg = None
            elif op is Op.LOAD:
                av = add_vals(vals[ins.mem_base_index], const(ins.mem_disp))
                if not check_mem(av, write=False):
                    return None
                load_addrs[lkey] = av
                vals[ins.dst_index] = load_vals.get(lkey, _FULL)
                if ins.dst_index == flag_reg:
                    flag_reg = None
            elif op is Op.STORE:
                av = add_vals(vals[ins.mem_base_index], const(ins.mem_disp))
                if not check_mem(av, write=True):
                    return None
                store_rngs.append(rng(av))
                store_vrngs.append(rng(src_val(ins, vals)))
            elif op is Op.ADD:
                a, b = vals[ins.dst_index], src_val(ins, vals)
                flag_src, flag_reg = ("add", a, b), None
                vals[ins.dst_index] = add_vals(a, b)
            elif op is Op.SUB:
                a, b = vals[ins.dst_index], src_val(ins, vals)
                flag_src, flag_reg = ("sub", a, b), None
                vals[ins.dst_index] = sub_vals(a, b)
            elif op is Op.INC:
                a = vals[ins.dst_index]
                flag_src, flag_reg = ("add", a, const(1)), None
                vals[ins.dst_index] = add_vals(a, const(1))
            elif op is Op.DEC:
                a = vals[ins.dst_index]
                flag_src, flag_reg = ("sub", a, const(1)), None
                vals[ins.dst_index] = sub_vals(a, const(1))
            elif op is Op.CMP:
                # dst survives the compare: branch directions can clamp it.
                flag_src = ("sub", vals[ins.dst_index], src_val(ins, vals))
                flag_reg = ins.dst_index
            elif op is Op.TEST:
                flag_src = (
                    "logic", and_vals(vals[ins.dst_index], src_val(ins, vals))
                )
                flag_reg = None
            elif op is Op.AND:
                r = and_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.OR:
                r = or_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.XOR:
                r = xor_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.IMUL:
                r = imul_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.SHL:
                r = shl_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.SHR:
                r = shr_vals(vals[ins.dst_index], src_val(ins, vals))
                vals[ins.dst_index] = r
                flag_src, flag_reg = ("logic", r), None
            elif op is Op.RDTSC:
                vals[_RAX] = _FULL
                vals[_RDX] = _FULL
                if flag_reg in (_RAX, _RDX):
                    flag_reg = None
            elif op is Op.NOP or op is Op.JMP:
                pass  # alt-arm JMPs: the walk already followed the target
            else:  # pragma: no cover - _decode/_walk_alt filter these
                return None
            return (flag_src, flag_reg)

        for i, (addr, ins) in enumerate(zip(period, seq)):
            for mv in merges.pop(i, ()):
                # An alternate arm rejoins here: its state is one more way
                # this program point can be reached each iteration.
                for r in range(len(vals)):
                    if mv[r] != vals[r]:
                        vals[r] = hull(vals[r], mv[r])
                fl = (None, None)
            nxt = period[i + 1] if i + 1 < p else period[0]
            op = ins.op
            if op is Op.JMP:
                if (ins.target & mask) != nxt:
                    return None
                continue
            if op is Op.JCC:
                flag_src, flag_reg = fl
                if flag_src is None:
                    return None
                taken_next = ins.target & mask
                fall_next = (addr + ib) & mask
                if nxt == taken_next and nxt == fall_next:
                    continue  # degenerate: both arms agree
                if nxt == taken_next:
                    recorded = 1
                elif nxt == fall_next:
                    recorded = 0
                else:
                    return None
                truth = jcc_truth(ins.cond_table, flags_of(flag_src))
                if truth == recorded:
                    continue
                if truth is not None:
                    soft_fail = True  # decidably exits the cycle
                    continue
                ai = alt_info.get(i)
                if ai is None:
                    soft_fail = True  # undecidable, no rejoining other arm
                    continue
                # Undecidable but harmless: both arms stay in the cycle.
                # Fork — clamp each arm by the ordering its direction
                # implies, run the alternate trace, merge at the rejoin.
                alt_seq, j = ai
                avals = list(vals)
                refine_branch(
                    avals, flag_src, flag_reg, ins.cond_table, 1 - recorded
                )
                refine_branch(
                    vals, flag_src, flag_reg, ins.cond_table, recorded
                )
                afl = fl
                for s_idx, (_a_addr, a_ins) in enumerate(alt_seq):
                    afl = step(a_ins, avals, afl, ("alt", i, s_idx))
                    if afl is None:
                        return None
                merges.setdefault(j, []).append(avals)
                continue
            if nxt != (addr + ib) & mask:
                return None  # straight-line successor mismatch
            fl = step(ins, vals, fl, i)
            if fl is None:
                return None
        return None if soft_fail else vals

    out = evaluate({})
    if out is None:
        # Refinement: a branch was undecidable with loads at bottom.  Each
        # affine-address load touches an enumerable word set — read every
        # word concretely and start from their hull.  That hull is a sound
        # invariant for the loaded values unless a cycle store can land in
        # the load's address span with a value outside it, in which case
        # the hull is widened by the store's value range and re-checked
        # (assume-guarantee: if loads drawn from R imply every aliasing
        # store writes within R, then by induction over time all loaded
        # values lie in R — untouched words are in the concrete hull, and
        # overwritten words hold an earlier in-range store).
        if K + 1 > _ENUM_LIMIT:
            return False
        cand = {k: av for k, av in load_addrs.items() if av[0] == "a"}
        if not cand:
            return False
        refined: dict = {}
        for k, av in cand.items():
            b, s = av[1], av[2]
            words = [memory.read_u64(b + s * n) for n in range(K + 1)]
            refined[k] = mk_iv(min(words), max(words))
        for _ in range(3):
            load_addrs.clear()
            store_rngs.clear()
            store_vrngs.clear()
            out = evaluate(refined)
            if out is None:
                return False
            widened = False
            # Justify every refined value the pass actually consumed.  A
            # refined load the branch refinement made unreachable needs no
            # justification; a load the pass saw but refinement never keyed
            # evaluated at bottom, which is always sound.
            for k, av in load_addrs.items():
                rv = refined.get(k)
                if rv is None:
                    continue
                if cand.get(k) != av:
                    return False  # address changed vs the enumeration pass
                lo, hi = rng(av)
                vlo, vhi = rng(rv)
                for (slo, shi), (svlo, svhi) in zip(store_rngs, store_vrngs):
                    if lo <= shi + 7 and slo <= hi + 7 and (
                        svlo < vlo or svhi > vhi
                    ):
                        vlo, vhi = min(vlo, svlo), max(vhi, svhi)
                        refined[k] = mk_iv(vlo, vhi)
                        widened = True
            if not widened:
                break
        else:
            return False  # no stable invariant within the widening budget

    # -- induction closure: out = in + delta for every live-in register ----
    for r in live_in:
        if r == _RIP:
            continue
        v = out[r]
        if v[0] != "a":
            return False
        if v[1] != regs[r] + signed_d[r] or v[2] != signed_d[r]:
            return False
    return True
