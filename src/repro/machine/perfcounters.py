"""Hardware performance counters.

Models the four basic performance-monitoring events the paper selects as
features (Table I): retired instructions, retired branch instructions, and
retired memory loads/stores.  Per the paper's implementation notes
(Section IV), logical cores do not share counters, counters are armed right
before the original handler entry is called and read back at VM entry.

``rep movs`` contributes one retired instruction *per copied word* plus a
load and a store per word.  This reflects how iteration-level events dominate
real counter readings and is what makes the Fig. 5a scenario (a flipped
``rcx`` loop counter adding extra dynamic instructions) visible to the
VM-transition detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Event", "CounterSample", "PerformanceCounterUnit"]


class Event(enum.Enum):
    """Architectural performance-monitoring events (Table I synonyms)."""

    INST_RETIRED = "RT"
    BR_INST_RETIRED = "BR"
    MEM_LOADS = "RM"
    MEM_STORES = "WM"


@dataclass(frozen=True)
class CounterSample:
    """An atomic read of all four counters."""

    instructions: int
    branches: int
    loads: int
    stores: int

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.instructions, self.branches, self.loads, self.stores)


class PerformanceCounterUnit:
    """Per-logical-core counter bank with arm/disarm semantics.

    The CPU increments counters unconditionally through the fast-path
    ``count_*`` methods; arming snapshots the running totals so a collection
    window is the difference between two snapshots — the same
    free-running-counter discipline real PMUs use.
    """

    __slots__ = ("_inst", "_br", "_loads", "_stores", "_armed", "_base")

    def __init__(self) -> None:
        self._inst = 0
        self._br = 0
        self._loads = 0
        self._stores = 0
        self._armed = False
        self._base = (0, 0, 0, 0)

    # -- CPU fast path ------------------------------------------------------

    def count_instruction(self, n: int = 1) -> None:
        self._inst += n

    def count_branch(self) -> None:
        self._br += 1

    def count_load(self, n: int = 1) -> None:
        self._loads += n

    def count_store(self, n: int = 1) -> None:
        self._stores += n

    def count_block(self, instructions: int, branches: int, loads: int, stores: int) -> None:
        """Batched retirement of a whole basic block (one call per block).

        Used by bulk executors (``rep movs``, translated blocks when they
        flush through the PMU rather than the dispatch loop's buffered
        locals): identical to issuing the four ``count_*`` updates
        individually, just without per-event call overhead.
        """
        self._inst += instructions
        self._br += branches
        self._loads += loads
        self._stores += stores

    # -- collection window --------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self) -> None:
        """Begin a collection window (called by Xentry at VM exit)."""
        self._base = (self._inst, self._br, self._loads, self._stores)
        self._armed = True

    def collect(self) -> CounterSample:
        """End the window and return event deltas (called at VM entry)."""
        sample = CounterSample(
            instructions=self._inst - self._base[0],
            branches=self._br - self._base[1],
            loads=self._loads - self._base[2],
            stores=self._stores - self._base[3],
        )
        self._armed = False
        return sample

    def snapshot(self) -> tuple:
        """Capture counter state (totals + window) for a mid-run checkpoint."""
        return (self._inst, self._br, self._loads, self._stores, self._armed, self._base)

    def restore(self, snap: tuple) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._inst, self._br, self._loads, self._stores, self._armed, self._base = snap

    def totals(self) -> CounterSample:
        """Free-running totals since construction (for utilization accounting)."""
        return CounterSample(self._inst, self._br, self._loads, self._stores)

    def reset(self) -> None:
        self._inst = self._br = self._loads = self._stores = 0
        self._armed = False
        self._base = (0, 0, 0, 0)
