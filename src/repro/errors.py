"""Exception hierarchy for the repro package.

Two distinct families live here:

* ``ReproError`` subclasses signal *misuse of the library* (bad arguments,
  unmapped configuration, malformed assembly).  They are ordinary bugs in the
  caller's code and should never be caught by simulation logic.

* ``SimulationEvent`` subclasses signal *simulated architectural events*
  (hardware exceptions, assertion violations, guest failures).  They are part
  of the simulation's control flow: the hypervisor and the Xentry framework
  catch them and turn them into detection outcomes, exactly like real
  exception vectors fan out to handlers on hardware.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-usage errors raised by :mod:`repro`."""


class AssemblyError(ReproError):
    """Malformed assembly source or an unresolvable label."""


class MemoryConfigError(ReproError):
    """Invalid memory-map configuration (overlapping or misaligned regions)."""


class MachineConfigError(ReproError):
    """Invalid machine configuration (core counts, counter selection, ...)."""


class CampaignConfigError(ReproError):
    """Invalid fault-injection campaign parameters."""


class ScenarioError(CampaignConfigError):
    """Invalid scenario definition, with provenance.

    Carries where the problem came from (``source``: the YAML file path or
    a caller-supplied tag) and which key it concerns (``keypath``, dotted:
    ``faults.memory.subsystem``), so deep validation failures surface with
    enough context to fix the scenario file directly.
    """

    def __init__(self, message: str, *, source: str = "", keypath: str = "") -> None:
        self.source = source
        self.keypath = keypath
        prefix = ": ".join(part for part in (source, keypath) if part)
        super().__init__(f"{prefix}: {message}" if prefix else message)


class DatasetError(ReproError):
    """Malformed machine-learning dataset (shape/label mismatches)."""


class NotFittedError(ReproError):
    """A classifier was used before :meth:`fit` was called."""


class EngineError(ReproError):
    """Invalid campaign-engine state (shard mismatch, incomplete merge)."""


class JournalError(EngineError):
    """Malformed or mismatched trial journal (wrong campaign, bad format)."""


class ChaosInjected(EngineError):
    """An engine-level fault injected by a :class:`~repro.engine.chaos.ChaosPolicy`.

    Raised inside workers (simulated crash) or around journal writes so the
    supervisor's recovery paths can be exercised deterministically.  Seeing
    this escape the engine means a recovery path failed to contain it.
    """


class SimulationEvent(Exception):
    """Base class for simulated architectural events.

    These are *not* library errors: they model events that real hardware or a
    real hypervisor would observe (exception vectors, failed assertions).
    """


class SimulationLimitExceeded(SimulationEvent):
    """The per-activation dynamic instruction budget was exhausted.

    On real hardware a runaway hypervisor execution manifests as a hang or a
    watchdog reset; the instruction budget is our watchdog.
    """

    def __init__(self, budget: int, message: str = "") -> None:
        super().__init__(message or f"instruction budget of {budget} exhausted")
        self.budget = budget
