"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (workload generators, fault
injectors, tree learners) draws from a :class:`numpy.random.Generator` that is
derived from a single campaign seed through named, order-independent streams.
This makes full campaigns bit-reproducible regardless of the order in which
subsystems are constructed, which the paper's Simics-based campaigns achieved
by construction (checkpointed deterministic simulation).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "stream", "spawn"]


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    The derivation hashes the root seed together with the stringified path so
    that streams are independent of each other and of creation order.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest(), "little")


def stream(root_seed: int, *names: object) -> np.random.Generator:
    """Return a named, deterministic random stream for ``root_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *names))


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
