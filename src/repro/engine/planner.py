"""Deterministic shard planning for campaign execution.

A campaign is a flat sequence of *golden groups* — ``injections_per_golden``
trials sharing one fault-free run — laid out benchmark by benchmark in the
exact order :meth:`FaultInjectionCampaign.run` executes them.  The planner
cuts that sequence into ``n_shards`` contiguous chunks.  Because every
group's fault stream is derived from ``(seed, benchmark, mode, group)``
(see :func:`repro.faults.campaign.run_benchmark_groups`), each chunk can be
executed in any process at any time and still produce exactly the trials the
serial run would have produced at those positions: merging shards by trial
index reconstructs the serial record sequence bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import CampaignConfigError
from repro.faults.campaign import CampaignConfig, benchmark_geometry

__all__ = [
    "BenchmarkSlice",
    "CampaignPlan",
    "ShardPlan",
    "TrainingShard",
    "config_digest",
    "payload_digest",
    "plan_campaign",
    "plan_training_shards",
]

PLAN_FORMAT = "xentry-plan-v1"


def payload_digest(payload: dict) -> str:
    """Stable fingerprint of a JSON-able identity payload.

    The shared hashing primitive behind :func:`config_digest` and the
    training-collection digest: canonical JSON (sorted keys, no whitespace)
    hashed with blake2b, so two payloads digest equal iff they describe the
    same planned work.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def config_digest(config: CampaignConfig) -> str:
    """Stable fingerprint of everything that shapes a campaign's trials.

    Two configs with the same digest produce the same trial sequence; the
    journal stores it so a resume against a different campaign is rejected
    instead of silently merging unrelated records.
    """
    payload = {
        "format": PLAN_FORMAT,
        "benchmarks": list(config.benchmarks),
        "mode": config.mode.value,
        "n_injections": config.n_injections,
        "seed": config.seed,
        "n_domains": config.n_domains,
        "warmup_activations": config.warmup_activations,
        "injections_per_golden": config.injections_per_golden,
        "followup_activations": config.followup_activations,
        "fault_registers": list(config.fault_model.registers),
        "fault_bits": list(config.fault_model.bits),
        # config.trace, config.ladder_interval, config.translate and
        # config.twin_batch are deliberately absent: they change execution
        # strategy (full tracing, checkpoint ladders, translated-block
        # dispatch, lock-step twin batching), never the trial records, so
        # resuming a journal across them is safe.
        # The engine's supervision knobs (RetryPolicy, shard_timeout,
        # ChaosPolicy) live on CampaignEngine rather than the config for the
        # same reason, and must stay out of this payload: records are
        # invariant under retries and injected engine faults, so a journal
        # from a chaos run resumes interchangeably with a clean one.
        # config.artifacts and config.golden_cache are likewise absent: the
        # golden artifact cache trades capture for load under a bit-identity
        # contract (cold, warm, shared-memory or disabled, the records match),
        # so journals interoperate across cache settings.  The cache has its
        # own identity — repro.artifacts.store.golden_digest — which DOES
        # include strategy knobs like ladder_interval and twin_batch, because
        # they shape the cached artifact even though they never shape records.
    }
    # Recovery DOES change the records (detected trials grow a
    # RecoveryRecord), so it must enter the digest — but only when armed,
    # so every pre-recovery journal digest stays valid.
    if config.recover is not None:
        payload["recover"] = config.recover
        payload["recovery_hazard"] = config.recovery_hazard
    # A scenario replaces the group fault stream with per-trial composite
    # sampling and can reshape workloads, so its identity enters the digest —
    # but only when armed, keeping every scenario-less digest unchanged.
    if config.scenario is not None:
        payload["scenario"] = config.scenario.digest_payload()
    return payload_digest(payload)


@dataclass(frozen=True)
class BenchmarkSlice:
    """A contiguous run of golden groups of one benchmark inside a shard."""

    benchmark: str
    #: Position of the benchmark in ``config.benchmarks`` (serial order).
    benchmark_index: int
    group_start: int
    group_stop: int
    #: Global index (into the serial record sequence) of this slice's first trial.
    trial_start: int
    n_trials: int


@dataclass(frozen=True)
class ShardPlan:
    """One independently executable chunk of a campaign."""

    index: int
    slices: tuple[BenchmarkSlice, ...]

    @property
    def n_trials(self) -> int:
        """Trials this shard will execute."""
        return sum(s.n_trials for s in self.slices)

    @property
    def trial_start(self) -> int:
        """Global index of the shard's first trial."""
        return self.slices[0].trial_start if self.slices else 0


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign cut into shards, plus the identity needed to resume it."""

    config: CampaignConfig
    shards: tuple[ShardPlan, ...]
    digest: str

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def total_trials(self) -> int:
        """Trials across all shards (== the serial campaign's record count)."""
        return sum(s.n_trials for s in self.shards)


def plan_campaign(config: CampaignConfig, n_shards: int) -> CampaignPlan:
    """Split ``config`` into ``n_shards`` contiguous, balanced shards.

    ``n_shards`` is clamped to the number of golden groups (a shard must own
    at least one group).  The partition is deterministic in the config alone,
    so re-planning on resume reproduces the exact shard boundaries recorded
    in the journal.
    """
    if n_shards < 1:
        raise CampaignConfigError("n_shards must be positive")
    geo = benchmark_geometry(config)
    # Flatten all golden groups in serial execution order.
    flat: list[tuple[str, int, int, int, int]] = []  # (bench, bidx, group, trial_start, n)
    trial = 0
    for bidx, benchmark in enumerate(config.benchmarks):
        for g in range(geo.n_goldens):
            n = geo.group_trials(g)
            flat.append((benchmark, bidx, g, trial, n))
            trial += n
    n_shards = min(n_shards, len(flat))
    shards: list[ShardPlan] = []
    for k in range(n_shards):
        lo = (k * len(flat)) // n_shards
        hi = ((k + 1) * len(flat)) // n_shards
        slices: list[BenchmarkSlice] = []
        for benchmark, bidx, g, t0, n in flat[lo:hi]:
            last = slices[-1] if slices else None
            if (
                last is not None
                and last.benchmark_index == bidx
                and last.group_stop == g
            ):
                slices[-1] = BenchmarkSlice(
                    benchmark=last.benchmark,
                    benchmark_index=last.benchmark_index,
                    group_start=last.group_start,
                    group_stop=g + 1,
                    trial_start=last.trial_start,
                    n_trials=last.n_trials + n,
                )
            else:
                slices.append(
                    BenchmarkSlice(
                        benchmark=benchmark,
                        benchmark_index=bidx,
                        group_start=g,
                        group_stop=g + 1,
                        trial_start=t0,
                        n_trials=n,
                    )
                )
        shards.append(ShardPlan(index=k, slices=tuple(slices)))
    return CampaignPlan(config=config, shards=tuple(shards), digest=config_digest(config))


# -- training-collection shards ------------------------------------------------

#: The two independent sample streams of one benchmark's collection.
TRAINING_PARTS = ("free", "inj")


@dataclass(frozen=True)
class TrainingShard:
    """One independently executable chunk of a training-set collection.

    A collection run is cut per ``(benchmark, part)`` pair — the fault-free
    activation stream and the injection stream each start from a freshly
    reset hypervisor and draw from their own named RNG streams, so every
    shard can run in any process at any time and produce exactly the samples
    the serial collection would have produced at that position.  Shards are
    ordered benchmark-major, ``free`` before ``inj``, matching the serial
    loop; concatenating shard outputs by index reconstructs the serial
    sample sequence bit for bit.
    """

    index: int
    benchmark: str
    #: Position of the benchmark in the config's benchmark tuple.
    benchmark_index: int
    #: ``"free"`` (fault-free stream) or ``"inj"`` (injection stream).
    part: str
    #: Activations this shard will execute (samples produced may be fewer:
    #: exception-killed and data-only-divergent injections yield none).
    n_runs: int
    #: Global index of this shard's first activation; samples are journalled
    #: at ``run_start + k`` so indices are unique and ordered across shards.
    run_start: int = 0

    @property
    def n_trials(self) -> int:
        """Planned work units — the supervisor/telemetry progress protocol."""
        return self.n_runs


def plan_training_shards(
    benchmarks: tuple[str, ...], fault_free_runs: int, injection_runs: int
) -> tuple[TrainingShard, ...]:
    """Cut a training collection into per-(benchmark, part) shards.

    Run counts are divided per benchmark exactly as the serial collector
    divides them (floor division, minimum one), so the plan is the single
    source of truth for both execution paths.
    """
    if not benchmarks:
        raise CampaignConfigError("training plan needs at least one benchmark")
    per_free = max(1, fault_free_runs // len(benchmarks))
    per_inj = max(1, injection_runs // len(benchmarks))
    shards = []
    run_start = 0
    for bidx, benchmark in enumerate(benchmarks):
        for part in TRAINING_PARTS:
            n_runs = per_free if part == "free" else per_inj
            shards.append(
                TrainingShard(
                    index=len(shards),
                    benchmark=benchmark,
                    benchmark_index=bidx,
                    part=part,
                    n_runs=n_runs,
                    run_start=run_start,
                )
            )
            run_start += n_runs
    return tuple(shards)
