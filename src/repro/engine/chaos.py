"""Deterministic engine-level fault injection: chaos for the campaign engine.

The campaign injects bit flips into the simulated CPU; this module injects
faults into the *engine itself* — worker crashes (soft and hard), worker
hangs, and journal write failures — so every recovery path of the shard
supervisor has a reproducible test.  Mirroring the fault model's derivation
of bit flips from ``(seed, benchmark, mode, group)``, every chaos decision
is a pure function of ``(seed, kind, shard, attempt)``: the same policy
replayed against the same campaign fires the same faults at the same trials,
regardless of worker scheduling.

Fault kinds:

``crash``
    The worker raises :class:`~repro.errors.ChaosInjected` after *k* records
    (an exception crash: the future fails, the supervisor retries).
``hard_crash``
    The worker dies with ``os._exit`` — no unwinding, no result — which
    breaks the process pool exactly like a segfault or OOM kill would.
``hang``
    The worker sleeps ``hang_seconds`` mid-shard; only the supervisor's
    wall-clock watchdog can reclaim it.
``journal error / truncate``
    ``append_shard`` fails with :class:`OSError`; the ``truncate`` variant
    first writes a torn tail (begin marker + some trial lines, no
    ``shard_done``), the on-disk shape of a crash mid-append.
``shm_lost``
    The worker's shared-memory golden-artifact segment vanishes mid-shard:
    its name is unlinked and the worker's artifact source is poisoned, so
    every remaining golden group falls back to live capture.  Campaign
    records must be bit-identical anyway — that is the artifact cache's
    standing contract, and this fault is its drill.

A policy never changes *what* a shard computes — the tripwire only counts
records — so a chaos campaign whose retries succeed is bit-identical to an
undisturbed run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro import rng as rng_mod
from repro.errors import CampaignConfigError, ChaosInjected

__all__ = [
    "ChaosPolicy",
    "ChaosTripwire",
    "ShardChaos",
    "inject_journal_fault",
    "parse_chaos_spec",
]

#: Worker faults fire after 0..(_FAULT_WINDOW - 1) records of the shard, so
#: the crash/hang position varies (including "before the first trial").
_FAULT_WINDOW = 4


@dataclass(frozen=True)
class ShardChaos:
    """Resolved chaos decisions for one ``(shard, attempt)`` execution."""

    #: Raise (or ``os._exit`` when ``hard``) after this many records.
    crash_after: int | None = None
    hard: bool = False
    #: Sleep ``hang_seconds`` after this many records.
    hang_after: int | None = None
    hang_seconds: float = 0.0
    #: Unlink the worker's shared golden-artifact segment after this many
    #: records (the worker falls back to live capture for the rest).
    shm_lost_after: int | None = None

    @property
    def quiet(self) -> bool:
        """True when this attempt runs undisturbed."""
        return (
            self.crash_after is None
            and self.hang_after is None
            and self.shm_lost_after is None
        )


class ChaosTripwire:
    """Arms a :class:`ShardChaos` inside a worker.

    ``step()`` is called once when the shard starts and once after every
    produced record; the planned fault fires when the record count reaches
    its position.  The tripwire never touches the records themselves.
    """

    def __init__(self, plan: ShardChaos) -> None:
        self.plan = plan
        self.records = -1
        self._shm_callback = None

    def arm_shm(self, callback) -> None:
        """Install the ``shm_lost`` effect (unlink + poison), fired at most
        once at the planned record count.  Left unarmed — no shared segment,
        cache disabled — the planned loss is a no-op by construction: there
        is nothing to lose."""
        self._shm_callback = callback

    def step(self, _record=None) -> None:
        """Advance the record counter and fire any fault scheduled here."""
        self.records += 1
        plan = self.plan
        if plan.shm_lost_after is not None and self.records == plan.shm_lost_after:
            callback, self._shm_callback = self._shm_callback, None
            if callback is not None:
                callback()
        if plan.hang_after is not None and self.records == plan.hang_after:
            time.sleep(plan.hang_seconds)
        if plan.crash_after is not None and self.records == plan.crash_after:
            if plan.hard:
                # A hard death: no exception, no cleanup, no result — the
                # pool sees exactly what a segfaulted worker looks like.
                os._exit(86)
            raise ChaosInjected(
                f"chaos: injected worker crash after {self.records} records"
            )


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded, deterministic engine-fault injection policy.

    Each rate is the per-attempt probability that the corresponding fault
    fires, drawn from an independent named stream keyed by
    ``(seed, kind, shard, attempt)`` — decisions are reproducible and
    order-independent.  ``shards`` restricts injection to specific shard
    indices; ``only_attempt`` restricts it to one attempt number (e.g. ``0``
    makes every fault transient: first attempts fail, retries succeed).
    """

    seed: int = 0
    crash_rate: float = 0.0
    hard_crash_rate: float = 0.0
    hang_rate: float = 0.0
    journal_error_rate: float = 0.0
    journal_truncate_rate: float = 0.0
    shm_lost_rate: float = 0.0
    hang_seconds: float = 30.0
    shards: tuple[int, ...] | None = None
    only_attempt: int | None = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hard_crash_rate", "hang_rate",
                     "journal_error_rate", "journal_truncate_rate",
                     "shm_lost_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise CampaignConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise CampaignConfigError("hang_seconds must be non-negative")

    # -- deterministic draws --------------------------------------------------

    def _fires(self, kind: str, shard: int, attempt: int, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if self.shards is not None and shard not in self.shards:
            return False
        if self.only_attempt is not None and attempt != self.only_attempt:
            return False
        if rate >= 1.0:
            return True
        draw = rng_mod.stream(self.seed, "chaos", kind, shard, attempt).random()
        return float(draw) < rate

    def _position(self, kind: str, shard: int, attempt: int) -> int:
        rng = rng_mod.stream(self.seed, "chaos", kind, shard, attempt)
        return int(rng.integers(0, _FAULT_WINDOW))

    # -- the two injection sites ----------------------------------------------

    def plan(self, shard: int, attempt: int, *, allow_hard: bool = True) -> ShardChaos:
        """Worker faults for one ``(shard, attempt)`` execution.

        ``allow_hard=False`` (serial mode, where the "worker" is the engine
        process itself) degrades a hard crash to an exception crash.
        """
        crash_after: int | None = None
        hard = False
        if self._fires("hard_crash", shard, attempt, self.hard_crash_rate):
            crash_after = self._position("hard_crash_at", shard, attempt)
            hard = allow_hard
        elif self._fires("crash", shard, attempt, self.crash_rate):
            crash_after = self._position("crash_at", shard, attempt)
        hang_after: int | None = None
        if self._fires("hang", shard, attempt, self.hang_rate):
            hang_after = self._position("hang_at", shard, attempt)
        shm_lost_after: int | None = None
        if self._fires("shm_lost", shard, attempt, self.shm_lost_rate):
            shm_lost_after = self._position("shm_lost_at", shard, attempt)
        return ShardChaos(
            crash_after=crash_after,
            hard=hard,
            hang_after=hang_after,
            hang_seconds=self.hang_seconds,
            shm_lost_after=shm_lost_after,
        )

    def journal_fault(self, shard: int, attempt: int) -> str | None:
        """Journal fault for one append attempt: ``"truncate"``, ``"error"``
        or ``None``.  Drawn separately from worker faults because the journal
        append has its own retry counter."""
        if self._fires("journal_truncate", shard, attempt, self.journal_truncate_rate):
            return "truncate"
        if self._fires("journal_error", shard, attempt, self.journal_error_rate):
            return "error"
        return None


def inject_journal_fault(journal, shard_index: int, trials, fault: str) -> None:
    """Apply a planned journal fault; always raises :class:`OSError`.

    ``"truncate"`` first writes a torn tail through
    :meth:`~repro.engine.journal.TrialJournal.append_torn` — begin marker and
    half the trial lines, no durability marker — so the journal afterwards
    looks exactly like a crash mid-``append_shard``.
    """
    if fault == "truncate":
        torn = max(1, len(trials) // 2)
        journal.append_torn(shard_index, trials[:torn])
        raise OSError(
            f"chaos: journal write torn after {torn} trials of shard {shard_index}"
        )
    raise OSError(f"chaos: journal write failed for shard {shard_index}")


_SPEC_FIELDS = {
    "crash": "crash_rate",
    "hard": "hard_crash_rate",
    "hang": "hang_rate",
    "journal": "journal_error_rate",
    "truncate": "journal_truncate_rate",
    "shm": "shm_lost_rate",
    "seed": "seed",
    "hang-seconds": "hang_seconds",
}


def parse_chaos_spec(spec: str) -> ChaosPolicy:
    """Parse the CLI ``--chaos`` spec into a :class:`ChaosPolicy`.

    A bare float is shorthand for an exception-crash rate; otherwise the
    spec is comma-separated ``key=value`` pairs::

        --chaos 0.2
        --chaos crash=0.2,hard=0.05,hang=0.1,journal=0.05,truncate=0.05,seed=1
        --chaos shm=0.5,seed=3
    """
    spec = spec.strip()
    try:
        bare_rate = float(spec)
    except ValueError:
        pass
    else:
        return ChaosPolicy(crash_rate=bare_rate)
    kwargs: dict[str, float | int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        field_name = _SPEC_FIELDS.get(key.strip())
        if field_name is None or not sep:
            raise CampaignConfigError(
                f"bad --chaos field {part!r} (known: {sorted(_SPEC_FIELDS)})"
            )
        try:
            kwargs[field_name] = (
                int(value) if field_name == "seed" else float(value)
            )
        except ValueError as exc:
            raise CampaignConfigError(f"bad --chaos value {part!r}") from exc
    return ChaosPolicy(**kwargs)
