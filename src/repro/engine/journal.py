"""Crash-safe sharded journals: durable engine progress as JSON lines.

The journal is the engine's write-ahead log.  Each completed shard is
appended as one batch — its payload lines followed by a ``shard_done``
marker — and the file is fsync'd before the shard is considered durable.
A run killed mid-flight therefore leaves a journal whose completed shards
are fully recorded and whose in-flight shard is at worst a partial tail;
on resume the engine skips every shard with a marker and re-runs the rest,
so the merged result has no duplicated and no missing items.

Two payload kinds share the machinery: :class:`TrialJournal` records
fault-injection trials (``xentry-journal-v1``), and :class:`SampleJournal`
records labeled training samples from engine-backed dataset collection
(``xentry-samples-v1``).  Subclasses differ only in their header format
string and their payload codec; the line structure is identical::

    {"format": "xentry-journal-v1", "digest": ..., "n_shards": N, "total_trials": T}
    {"kind": "shard_begin", "shard": 3}                            # append started
    {"kind": "trial", "shard": 3, "trial": 1287, "rec": {...}}     # one per item
    {"kind": "shard_done", "shard": 3, "n_trials": 96}             # durability marker
    {"kind": "shard_failed", "shard": 3, "attempts": 3, ...}       # quarantined

A truncated final line (the crash case) is tolerated and ignored; a digest
mismatch (journal from a different campaign) raises :class:`JournalError`.
The ``shard_begin`` marker makes partial tails self-healing: a re-run of a
shard whose previous append was torn (crash or injected journal fault mid
write) starts with a fresh marker, so the stale trial lines are superseded
instead of corrupting the ``shard_done`` count.  ``shard_failed`` records a
quarantined shard; a later successful recording of the same shard (e.g. on
resume) wins over the failure marker.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import JournalError
from repro.faults.outcomes import TrialRecord
from repro.persist import _record_from_dict, _record_to_dict

__all__ = [
    "JOURNAL_FORMAT",
    "SAMPLE_JOURNAL_FORMAT",
    "JournalState",
    "SampleJournal",
    "TrialJournal",
    "read_state",
]

JOURNAL_FORMAT = "xentry-journal-v1"
SAMPLE_JOURNAL_FORMAT = "xentry-samples-v1"


def _sample_to_dict(sample: tuple[tuple[int, ...], int]) -> dict:
    features, label = sample
    return {"x": [int(v) for v in features], "y": int(label)}


def _sample_from_dict(data: dict) -> tuple[tuple[int, ...], int]:
    return tuple(int(v) for v in data["x"]), int(data["y"])


@dataclass
class JournalState:
    """Parsed contents of a journal file."""

    digest: str
    n_shards: int
    total_trials: int
    #: Completed shards: shard index -> [(global trial index, record), ...].
    completed: dict[int, list[tuple[int, TrialRecord]]] = field(default_factory=dict)
    #: Trials journalled for shards that never reached their marker.
    partial: dict[int, list[tuple[int, TrialRecord]]] = field(default_factory=dict)
    #: Quarantined shards: shard index -> {"attempts", "kind", "error"}.
    #: A shard here has no completed recording; resume re-runs it.
    failed: dict[int, dict] = field(default_factory=dict)

    @property
    def completed_shards(self) -> frozenset[int]:
        """Indices of shards whose ``shard_done`` marker was written."""
        return frozenset(self.completed)

    @property
    def completed_trials(self) -> int:
        """Number of durably recorded trials."""
        return sum(len(v) for v in self.completed.values())


class TrialJournal:
    """Append-per-shard journal bound to one campaign identity.

    Open with :meth:`create` for a fresh campaign or :meth:`resume` to
    continue one; both return a journal whose :meth:`append_shard` durably
    records a finished shard.  Use :func:`read_state` (or the :meth:`read`
    classmethod on a subclass) to inspect a journal without holding it open.

    Subclasses swap the header format string and the payload codec to
    journal other item kinds over the same crash-safety machinery.
    """

    #: Header format string; a journal of a different format is rejected.
    FORMAT = JOURNAL_FORMAT
    #: Payload codec: item -> JSON-able dict and back.
    _encode = staticmethod(_record_to_dict)
    _decode = staticmethod(_record_from_dict)

    def __init__(self, path: str | Path, state: JournalState, *, _fh) -> None:
        self.path = Path(path)
        self.state = state
        self._fh = _fh

    # -- opening -------------------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, *, digest: str, n_shards: int, total_trials: int
    ) -> "TrialJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            raise JournalError(
                f"{path}: journal already exists; resume it or remove the file"
            )
        fh = open(path, "a")
        header = {
            "format": cls.FORMAT,
            "digest": digest,
            "n_shards": n_shards,
            "total_trials": total_trials,
        }
        fh.write(json.dumps(header) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        state = JournalState(digest=digest, n_shards=n_shards, total_trials=total_trials)
        return cls(path, state, _fh=fh)

    @classmethod
    def resume(cls, path: str | Path, *, digest: str) -> "TrialJournal":
        """Reopen an existing journal, validating it belongs to ``digest``."""
        state = cls.read(path)
        if state is None:
            raise JournalError(f"{path}: no journal to resume")
        if state.digest != digest:
            raise JournalError(
                f"{path}: journal belongs to a different campaign "
                f"(digest {state.digest}, expected {digest})"
            )
        return cls(path, state, _fh=open(path, "a"))

    @classmethod
    def read(cls, path: str | Path) -> JournalState | None:
        """Parse a journal of this class's format without holding it open."""
        return _read_state(path, fmt=cls.FORMAT, decode=cls._decode)

    # -- writing -------------------------------------------------------------

    @classmethod
    def _trial_lines(
        cls, shard_index: int, trials: list[tuple[int, TrialRecord]]
    ) -> list[str]:
        return [
            json.dumps(
                {"kind": "trial", "shard": shard_index, "trial": t,
                 "rec": cls._encode(record)}
            )
            for t, record in trials
        ]

    def append_shard(
        self, shard_index: int, trials: list[tuple[int, TrialRecord]]
    ) -> None:
        """Durably record one finished shard (begin + records + done + fsync).

        The leading ``shard_begin`` marker supersedes any torn trial lines a
        previous attempt left for this shard, so retrying an interrupted
        append (or re-running the shard after a crash) is always safe.
        """
        if shard_index in self.state.completed:
            raise JournalError(f"shard {shard_index} already journalled")
        lines = [json.dumps({"kind": "shard_begin", "shard": shard_index})]
        lines.extend(self._trial_lines(shard_index, trials))
        lines.append(
            json.dumps(
                {"kind": "shard_done", "shard": shard_index, "n_trials": len(trials)}
            )
        )
        self._fh.write("\n".join(lines) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.state.completed[shard_index] = list(trials)
        self.state.partial.pop(shard_index, None)
        self.state.failed.pop(shard_index, None)

    def append_torn(
        self, shard_index: int, trials: list[tuple[int, TrialRecord]]
    ) -> None:
        """Write a begin marker and trial lines but *no* ``shard_done``.

        This is the on-disk shape of an append interrupted mid-write; the
        chaos harness uses it to simulate that crash deterministically.
        :func:`read_state` reports the trials under ``partial``.
        """
        lines = [json.dumps({"kind": "shard_begin", "shard": shard_index})]
        lines.extend(self._trial_lines(shard_index, trials))
        self._fh.write("\n".join(lines) + "\n")
        self._fh.flush()

    def append_failed(
        self, shard_index: int, *, attempts: int, kind: str, error: str
    ) -> None:
        """Durably record a quarantined shard; a resume will re-run it."""
        line = json.dumps(
            {"kind": "shard_failed", "shard": shard_index,
             "attempts": attempts, "error_kind": kind, "error": error}
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.state.failed[shard_index] = {
            "attempts": attempts, "kind": kind, "error": error,
        }

    def close(self) -> None:
        """Flush, fsync and close the underlying file handle (idempotent).

        The fsync guarantees that everything written — including advisory
        markers that were only flushed — is durable before the handle goes
        away, so a journal closed cleanly never loses its tail.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SampleJournal(TrialJournal):
    """Sharded journal of labeled training samples.

    The durable artifact of engine-backed :func:`~repro.xentry.training.
    collect_dataset`: each item is a ``(features, label)`` pair, journalled
    per collection shard with the same crash-safety and resume semantics as
    campaign trials.  ``total_trials`` in the header counts *planned
    activations* — the injection stream yields at most one sample per
    activation, so a shard's recorded count may be smaller than its plan.
    """

    FORMAT = SAMPLE_JOURNAL_FORMAT
    _encode = staticmethod(_sample_to_dict)
    _decode = staticmethod(_sample_from_dict)


def read_state(path: str | Path) -> JournalState | None:
    """Parse a *trial* journal file; ``None`` when it is missing or empty.

    Tolerates a truncated trailing line (crash mid-append); everything before
    it parses normally.  Shards recorded more than once (a shard re-run after
    an aborted resume) keep their latest complete recording.  For sample
    journals use :meth:`SampleJournal.read`.
    """
    return _read_state(path, fmt=JOURNAL_FORMAT, decode=_record_from_dict)


def _read_state(path: str | Path, *, fmt: str, decode) -> JournalState | None:
    path = Path(path)
    if not path.exists() or path.stat().st_size == 0:
        return None
    with open(path) as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}: unreadable journal header") from exc
        if header.get("format") != fmt:
            raise JournalError(f"{path}: not a {fmt} file")
        state = JournalState(
            digest=header["digest"],
            n_shards=int(header["n_shards"]),
            total_trials=int(header["total_trials"]),
        )
        pending: dict[int, list[tuple[int, TrialRecord]]] = {}
        for line in fh:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail from a crash: ignore it and stop
            kind = entry.get("kind")
            if kind == "trial":
                pending.setdefault(entry["shard"], []).append(
                    (entry["trial"], decode(entry["rec"]))
                )
            elif kind == "shard_begin":
                # A fresh append supersedes any torn tail this shard left
                # behind (crash or injected journal fault mid-write).
                pending[entry["shard"]] = []
            elif kind == "shard_done":
                shard = entry["shard"]
                trials = pending.pop(shard, [])
                if len(trials) != entry["n_trials"]:
                    raise JournalError(
                        f"{path}: shard {shard} marker says {entry['n_trials']} "
                        f"trials, found {len(trials)}"
                    )
                state.completed[shard] = trials
                state.failed.pop(shard, None)
            elif kind == "shard_failed":
                shard = entry["shard"]
                if shard not in state.completed:
                    state.failed[shard] = {
                        "attempts": entry.get("attempts", 0),
                        "kind": entry.get("error_kind", "unknown"),
                        "error": entry.get("error", ""),
                    }
            else:
                raise JournalError(f"{path}: unknown journal line kind {kind!r}")
        state.partial = pending
    return state
