"""Campaign execution engine: parallel, resumable, observable.

The subsystem that takes fault-injection campaigns from "a for-loop in one
process" to paper-scale: a planner cuts a campaign into deterministic shards
(:mod:`~repro.engine.planner`), a process pool fans them out
(:mod:`~repro.engine.pool`), a crash-safe JSONL journal makes progress
durable and resumable (:mod:`~repro.engine.journal`), and structured
telemetry narrates throughput, ETA and outcomes
(:mod:`~repro.engine.telemetry`).  Merged shard results are bit-identical to
a serial :meth:`FaultInjectionCampaign.run` of the same root seed.
"""

from repro.engine.journal import JournalState, TrialJournal, read_state
from repro.engine.planner import (
    BenchmarkSlice,
    CampaignPlan,
    ShardPlan,
    config_digest,
    plan_campaign,
)
from repro.engine.pool import CampaignEngine, execute_shard
from repro.engine.telemetry import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ProgressSnapshot,
    ShardFinished,
    ShardStarted,
    stderr_progress,
)

__all__ = [
    "BenchmarkSlice",
    "CampaignEngine",
    "CampaignFinished",
    "CampaignPlan",
    "CampaignStarted",
    "EngineTelemetry",
    "JournalState",
    "ProgressSnapshot",
    "ShardFinished",
    "ShardPlan",
    "ShardStarted",
    "TrialJournal",
    "config_digest",
    "execute_shard",
    "plan_campaign",
    "read_state",
    "stderr_progress",
]
