"""Campaign execution engine: parallel, resumable, observable, self-resilient.

The subsystem that takes fault-injection campaigns from "a for-loop in one
process" to paper-scale: a planner cuts a campaign into deterministic shards
(:mod:`~repro.engine.planner`), a supervised process pool fans them out with
retry/backoff, watchdog timeouts and quarantine
(:mod:`~repro.engine.pool`, :mod:`~repro.engine.supervisor`), a crash-safe
JSONL journal makes progress durable and resumable
(:mod:`~repro.engine.journal`), structured telemetry narrates throughput,
ETA, failures and outcomes (:mod:`~repro.engine.telemetry`), and a seeded
chaos harness injects engine-level faults so every recovery path has a
reproducible test (:mod:`~repro.engine.chaos`).  Merged shard results are
bit-identical to a serial :meth:`FaultInjectionCampaign.run` of the same
root seed — retries included.
"""

from repro.engine.chaos import (
    ChaosPolicy,
    ChaosTripwire,
    ShardChaos,
    parse_chaos_spec,
)
from repro.engine.journal import (
    JournalState,
    SampleJournal,
    TrialJournal,
    read_state,
)
from repro.engine.planner import (
    BenchmarkSlice,
    CampaignPlan,
    ShardPlan,
    TrainingShard,
    config_digest,
    payload_digest,
    plan_campaign,
    plan_training_shards,
)
from repro.engine.pool import CampaignEngine, execute_shard
from repro.engine.supervisor import (
    AttemptFailure,
    DegradedCampaignResult,
    RetryPolicy,
    ShardFailure,
    ShardSupervisor,
)
from repro.engine.telemetry import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ProgressSnapshot,
    ShardFailed,
    ShardFinished,
    ShardQuarantined,
    ShardRetried,
    ShardStarted,
    WorkerCrashed,
    stderr_progress,
)

__all__ = [
    "AttemptFailure",
    "BenchmarkSlice",
    "CampaignEngine",
    "CampaignFinished",
    "CampaignPlan",
    "CampaignStarted",
    "ChaosPolicy",
    "ChaosTripwire",
    "DegradedCampaignResult",
    "EngineTelemetry",
    "JournalState",
    "ProgressSnapshot",
    "RetryPolicy",
    "SampleJournal",
    "ShardChaos",
    "ShardFailed",
    "ShardFailure",
    "ShardFinished",
    "ShardPlan",
    "ShardQuarantined",
    "ShardRetried",
    "ShardStarted",
    "ShardSupervisor",
    "TrainingShard",
    "TrialJournal",
    "WorkerCrashed",
    "config_digest",
    "execute_shard",
    "parse_chaos_spec",
    "payload_digest",
    "plan_campaign",
    "plan_training_shards",
    "read_state",
    "stderr_progress",
]
