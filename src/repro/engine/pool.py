"""The campaign engine: parallel, resumable, observable shard execution.

:class:`CampaignEngine` turns a :class:`CampaignConfig` into a plan of
deterministic shards (:mod:`repro.engine.planner`), fans them out over a
``concurrent.futures`` process pool (or runs them inline when ``jobs=1``),
journals every finished shard durably (:mod:`repro.engine.journal`), and
narrates progress through :mod:`repro.engine.telemetry`.  The merged result
is bit-identical to :meth:`FaultInjectionCampaign.run` with the same seed,
and a campaign killed mid-flight resumes from its journal with completed
shards skipped.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from repro.engine.journal import TrialJournal, read_state
from repro.engine.planner import CampaignPlan, ShardPlan, plan_campaign
from repro.engine.telemetry import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ShardFinished,
    ShardStarted,
)
from repro.errors import EngineError, JournalError
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_benchmark_groups,
)
from repro.faults.injector import TransitionDetector
from repro.faults.outcomes import TrialRecord
from repro.hypervisor.xen import XenHypervisor

__all__ = ["CampaignEngine", "execute_shard"]


def execute_shard(
    config: CampaignConfig,
    shard: ShardPlan,
    detector: TransitionDetector | None,
) -> list[tuple[int, TrialRecord]]:
    """Run every slice of ``shard`` and return ``(global trial index, record)``.

    Module-level so a process pool can pickle it; workers rebuild their own
    hypervisor from the config (bit-identical to the serial campaign's, which
    resets to post-boot state before each benchmark anyway).
    """
    hv = XenHypervisor(
        n_domains=config.n_domains, seed=config.seed, light_trace=not config.trace
    )
    out: list[tuple[int, TrialRecord]] = []
    for s in shard.slices:
        records = run_benchmark_groups(
            config, s.benchmark, s.group_start, s.group_stop,
            hv=hv, detector=detector,
        )
        out.extend(enumerate(records, start=s.trial_start))
    return out


class CampaignEngine:
    """Executes a fault-injection campaign as parallel, resumable shards.

    Parameters
    ----------
    config:
        The campaign to run; also defines the shard boundaries and digest.
    jobs:
        Worker processes.  ``1`` (default) runs shards inline in this
        process — same results, no pool overhead.
    n_shards:
        Shard count; defaults to ``jobs`` (one chunk per worker).  More
        shards mean finer resume granularity and better load balancing.
    detector:
        Optional VM-transition detector deployed during trials.  It is
        pickled into each worker, so per-process traversal statistics stay
        in the workers; trial records are unaffected (classification is a
        pure function of the compiled rules).
    journal_path:
        Where to journal finished shards.  Required for ``resume=True``.
        A run manifest is written next to it as ``<journal>.manifest.json``.
    telemetry:
        An :class:`EngineTelemetry` to narrate into; a fresh silent one is
        created when omitted.
    """

    def __init__(
        self,
        config: CampaignConfig,
        *,
        jobs: int = 1,
        n_shards: int | None = None,
        detector: TransitionDetector | None = None,
        journal_path: str | Path | None = None,
        telemetry: EngineTelemetry | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError("jobs must be positive")
        self.config = config
        self.jobs = jobs
        self.n_shards = n_shards if n_shards is not None else jobs
        self.detector = detector
        self.journal_path = Path(journal_path) if journal_path else None
        self.telemetry = telemetry or EngineTelemetry()

    # -- execution -----------------------------------------------------------

    def run(self, *, resume: bool = False) -> CampaignResult:
        """Execute (or finish) the campaign and return the merged result."""
        if resume and self.journal_path is None:
            raise EngineError("resume requires a journal_path")
        plan = plan_campaign(self.config, self.n_shards)
        journal: TrialJournal | None = None
        if self.journal_path is not None:
            journal = self._open_journal(plan, resume=resume)
            if journal.state.n_shards != plan.n_shards:
                # The journal's shard structure wins: resuming with a
                # different --jobs must not reshuffle shard boundaries.
                plan = plan_campaign(self.config, journal.state.n_shards)

        done: dict[int, list[tuple[int, TrialRecord]]] = (
            dict(journal.state.completed) if journal is not None else {}
        )
        pending = [s for s in plan.shards if s.index not in done]
        self.telemetry.emit(
            CampaignStarted(
                total_trials=plan.total_trials,
                n_shards=plan.n_shards,
                jobs=self.jobs,
                resumed_shards=len(done),
            )
        )
        for index, trials in sorted(done.items()):
            self.telemetry.record_outcomes(r for _, r in trials)
            self.telemetry.emit(
                ShardFinished(
                    shard=index, n_trials=len(trials), elapsed=0.0, resumed=True
                )
            )
        try:
            if self.jobs == 1:
                self._run_serial(pending, journal, done)
            else:
                self._run_pool(pending, journal, done)
        finally:
            if journal is not None:
                journal.close()
            if self.journal_path is not None:
                self.telemetry.write_manifest(
                    self.journal_path.with_name(self.journal_path.name + ".manifest.json")
                )
        result = self._merge(plan, done)
        snap = self.telemetry.snapshot()
        self.telemetry.emit(
            CampaignFinished(
                total_trials=plan.total_trials,
                executed_trials=self.telemetry.executed_trials,
                elapsed=snap.elapsed,
                trials_per_sec=snap.trials_per_sec,
            )
        )
        return result

    def _open_journal(self, plan: CampaignPlan, *, resume: bool) -> TrialJournal:
        existing = read_state(self.journal_path)
        if existing is not None and not resume:
            raise JournalError(
                f"{self.journal_path}: journal exists; pass resume=True "
                "(--resume) to continue it or remove the file"
            )
        if resume and existing is not None:
            return TrialJournal.resume(self.journal_path, digest=plan.digest)
        return TrialJournal.create(
            self.journal_path,
            digest=plan.digest,
            n_shards=plan.n_shards,
            total_trials=plan.total_trials,
        )

    def _finish_shard(
        self,
        shard: ShardPlan,
        trials: list[tuple[int, TrialRecord]],
        elapsed: float,
        journal: TrialJournal | None,
        done: dict[int, list[tuple[int, TrialRecord]]],
    ) -> None:
        if journal is not None:
            journal.append_shard(shard.index, trials)
        done[shard.index] = trials
        self.telemetry.record_outcomes(r for _, r in trials)
        self.telemetry.emit(
            ShardFinished(shard=shard.index, n_trials=len(trials), elapsed=elapsed)
        )

    def _run_serial(self, pending, journal, done) -> None:
        for shard in pending:
            self.telemetry.emit(ShardStarted(shard=shard.index, n_trials=shard.n_trials))
            t0 = time.perf_counter()
            trials = execute_shard(self.config, shard, self.detector)
            self._finish_shard(shard, trials, time.perf_counter() - t0, journal, done)

    def _run_pool(self, pending, journal, done) -> None:
        if not pending:
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            started = {}
            futures = {}
            for shard in pending:
                self.telemetry.emit(
                    ShardStarted(shard=shard.index, n_trials=shard.n_trials)
                )
                started[shard.index] = time.perf_counter()
                futures[
                    pool.submit(execute_shard, self.config, shard, self.detector)
                ] = shard
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    shard = futures[future]
                    trials = future.result()  # propagate worker failures
                    self._finish_shard(
                        shard,
                        trials,
                        time.perf_counter() - started[shard.index],
                        journal,
                        done,
                    )

    def _merge(self, plan: CampaignPlan, done) -> CampaignResult:
        by_trial: dict[int, TrialRecord] = {}
        for trials in done.values():
            for t, record in trials:
                if t in by_trial:
                    raise EngineError(f"trial {t} recorded by more than one shard")
                by_trial[t] = record
        if len(by_trial) != plan.total_trials:
            missing = sorted(set(range(plan.total_trials)) - set(by_trial))[:5]
            raise EngineError(
                f"merge incomplete: {len(by_trial)}/{plan.total_trials} trials "
                f"(first missing: {missing})"
            )
        records = tuple(by_trial[t] for t in range(plan.total_trials))
        return CampaignResult(config=self.config, records=records)
