"""The campaign engine: parallel, resumable, observable, *self-resilient*.

:class:`CampaignEngine` turns a :class:`CampaignConfig` into a plan of
deterministic shards (:mod:`repro.engine.planner`), hands them to a
:class:`~repro.engine.supervisor.ShardSupervisor` that fans them out over a
``concurrent.futures`` process pool (or runs them inline when ``jobs=1``)
with retry, watchdog and quarantine semantics, journals every finished shard
durably (:mod:`repro.engine.journal`), and narrates progress through
:mod:`repro.engine.telemetry`.  The merged result is bit-identical to
:meth:`FaultInjectionCampaign.run` with the same seed — including runs that
needed retries — and a campaign killed mid-flight resumes from its journal
with completed shards skipped.  A campaign whose shards exhaust their retry
budget completes *degraded* (:class:`DegradedCampaignResult`) instead of
aborting mid-run.
"""

from __future__ import annotations

from pathlib import Path

from repro.artifacts import runtime as artifacts_runtime
from repro.artifacts import shm as artifacts_shm
from repro.artifacts.runtime import golden_source_for
from repro.artifacts.store import GoldenStore, golden_digest
from repro.engine.chaos import ChaosPolicy, ChaosTripwire
from repro.engine.journal import TrialJournal, read_state
from repro.engine.planner import CampaignPlan, ShardPlan, plan_campaign
from repro.engine.supervisor import (
    DegradedCampaignResult,
    RetryPolicy,
    ShardFailure,
    ShardSupervisor,
    merge_records,
)
from repro.engine.telemetry import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ShardFinished,
)
from repro.errors import EngineError, JournalError
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_benchmark_groups,
)
from repro.faults.injector import TransitionDetector
from repro.faults.outcomes import TrialRecord
from repro.hypervisor.xen import Activation, XenHypervisor
from repro.machine import lockstep
from repro.machine.translator import CACHE, COMPILE_THRESHOLD

__all__ = ["CampaignEngine", "execute_shard", "store_fully_warm", "warm_worker"]


def warm_worker(config: CampaignConfig) -> None:
    """Process-pool initializer: pre-warm the process-wide translation cache.

    A fresh pool worker starts with an empty :data:`~repro.machine.translator.CACHE`
    and cold per-entry heat counters, so its first shard pays the full
    trace-compilation cost on the campaign's critical path.  Running every
    exit reason of the campaign's program image past the warmth gate here
    compiles the handler blocks once, before any trial executes; the shards
    that follow attach to the already-compiled translation by text digest.
    ``CACHE.mark_prewarmed`` records the hand-off point, splitting the
    manifest's compile counts into warm (initializer) and cold (mid-campaign)
    shares.  Trial records are invariant under translation, so warming can
    never change campaign results.
    """
    if not config.translate:
        return
    compiled_before = CACHE.stats()["blocks_compiled"]
    hv = XenHypervisor(
        n_domains=config.n_domains, seed=config.seed, translate=True,
    )
    domain_id = min(1, hv.n_domains - 1)
    for seq, reason in enumerate(hv.registry):
        activation = Activation(
            vmer=reason.vmer, args=(3, 1), domain_id=domain_id, seq=seq
        )
        # One-dispatch-per-run entries (handler prologues) need their heat
        # pushed past the compile threshold; loop bodies cross it within a
        # single run.
        for _ in range(COMPILE_THRESHOLD + 2):
            hv.execute(activation)
    CACHE.mark_prewarmed(since=compiled_before)


def store_fully_warm(config: CampaignConfig, pending: list[ShardPlan]) -> bool:
    """True when every golden group of ``pending`` is already cached on disk.

    Decides whether worker pre-warm (:func:`warm_worker`) still pays for
    itself: the initializer exists to amortize first-*capture* translation
    latency, and a fully-warm store has no captures left to amortize — twin
    replays warm each worker's translation cache organically, off the
    critical path.  The check is one ``stat`` per group, so it costs
    microseconds against the half-second-per-worker initializer it can
    retire.  Deliberately conservative the other way: one missing artifact
    keeps the pre-warm (the capture path is about to run), and a present-
    but-corrupt artifact merely means an unwarmed live capture — slower,
    never different (records are invariant under translation warmth).
    """
    if (
        not config.artifacts
        or not getattr(config, "golden_cache", True)
        or config.trace
    ):
        return False
    store = GoldenStore(config.artifacts)
    return all(
        store.contains(golden_digest(config, s.benchmark, group))
        for shard in pending
        for s in shard.slices
        for group in range(s.group_start, s.group_stop)
    )


def execute_shard(
    config: CampaignConfig,
    shard: ShardPlan,
    detector: TransitionDetector | None,
    *,
    chaos: ChaosPolicy | None = None,
    attempt: int = 0,
    allow_hard: bool = True,
    segment: str | None = None,
) -> tuple[list[tuple[int, TrialRecord]], dict[str, int | float]]:
    """Run every slice of ``shard``; return its records plus cache stats.

    Module-level so a process pool can pickle it; workers rebuild their own
    hypervisor from the config (bit-identical to the serial campaign's, which
    resets to post-boot state before each benchmark anyway).  ``chaos`` and
    ``attempt`` arm the deterministic chaos tripwire for this execution —
    the tripwire only observes record counts, never the records themselves.

    ``segment`` names a shared-memory segment the parent pre-published with
    this shard's golden artifacts; the worker maps it instead of re-reading
    the store (and instead of re-executing goldens).  The returned trials
    come paired with this execution's delta of the process-wide artifact
    counters (:func:`repro.artifacts.runtime.stats`), so the supervisor can
    fold worker-side cache telemetry into the run manifest.
    """
    tripwire = None
    if chaos is not None:
        plan = chaos.plan(shard.index, attempt, allow_hard=allow_hard)
        if not plan.quiet:
            tripwire = ChaosTripwire(plan)
    golden_source = golden_source_for(config, segment=segment)
    stats_before = artifacts_runtime.stats()
    if tripwire is not None and golden_source is not None:
        def _lose_segment() -> None:
            # The chaos ``shm_lost`` effect: the worker's shared segment
            # vanishes mid-shard and its artifact source refuses further
            # loads, so every remaining group falls back to live capture.
            artifacts_runtime.STATS["shm_lost"] += 1
            if segment is not None:
                artifacts_shm.unlink_segment(segment)
            golden_source.poison()
        tripwire.arm_shm(_lose_segment)
    if tripwire is not None:
        tripwire.step()  # faults positioned "before the first trial"
    hv = XenHypervisor(
        n_domains=config.n_domains, seed=config.seed,
        light_trace=not config.trace, translate=config.translate,
    )
    out: list[tuple[int, TrialRecord]] = []
    for s in shard.slices:
        records = run_benchmark_groups(
            config, s.benchmark, s.group_start, s.group_stop,
            hv=hv, detector=detector,
            on_record=tripwire.step if tripwire is not None else None,
            golden_source=golden_source,
        )
        out.extend(enumerate(records, start=s.trial_start))
    stats_after = artifacts_runtime.stats()
    delta = {
        key: stats_after[key] - stats_before[key]
        for key in stats_after
        if stats_after[key] != stats_before[key]
    }
    return out, delta


class _ShardSegments:
    """Parent-side zero-copy distribution of cached golden artifacts.

    For each shard about to be submitted, :meth:`acquire` reads the shard's
    cached golden artifacts from the on-disk store (raw bytes, unverified —
    workers checksum at decode) and publishes them as one shared-memory
    segment; pool workers map that segment read-only instead of re-reading
    the store once per worker, or worse, re-executing the goldens.  The
    supervisor calls :meth:`release` when the shard reaches a terminal state
    (merged or quarantined), and the engine's :meth:`close` backstops any
    segment still live when the run unwinds, so ``/dev/shm`` is clean on
    every exit path.
    """

    def __init__(self, config: CampaignConfig) -> None:
        self._config = config
        self._store = GoldenStore(config.artifacts)
        self._publisher = artifacts_shm.SegmentPublisher()

    def acquire(self, shard: ShardPlan) -> str | None:
        """Publish ``shard``'s cached goldens; return the segment name.

        Returns ``None`` — the worker falls back to store reads and live
        capture — when nothing is cached yet (a cold first run) or shared
        memory is unavailable.  Idempotent per shard: a retried attempt
        reuses the segment already published for it.
        """
        blobs: dict[str, bytes] = {}
        for s in shard.slices:
            for group in range(s.group_start, s.group_stop):
                digest = golden_digest(self._config, s.benchmark, group)
                raw = self._store.load_bytes(digest)
                if raw is not None:
                    blobs[digest] = raw
        return self._publisher.prepare(shard.index, blobs)

    def release(self, shard_index: int) -> None:
        """Unlink the shard's segment (terminal states only)."""
        self._publisher.finished(shard_index)

    def close(self) -> None:
        """Unlink every remaining segment (run teardown backstop)."""
        self._publisher.close_all()

    @property
    def stats(self) -> dict[str, int]:
        """Parent-side publication counters (segments created, bytes)."""
        return dict(self._publisher.stats)


class CampaignEngine:
    """Executes a fault-injection campaign as supervised, resumable shards.

    Parameters
    ----------
    config:
        The campaign to run; also defines the shard boundaries and digest.
    jobs:
        Worker processes.  ``1`` (default) runs shards inline in this
        process — same results, no pool overhead.
    n_shards:
        Shard count; defaults to ``jobs`` (one chunk per worker).  More
        shards mean finer resume granularity and better load balancing.
    detector:
        Optional VM-transition detector deployed during trials.  It is
        pickled into each worker, so per-process traversal statistics stay
        in the workers; trial records are unaffected (classification is a
        pure function of the compiled rules).
    journal_path:
        Where to journal finished shards.  Required for ``resume=True``.
        A run manifest is written next to it as ``<journal>.manifest.json``
        — even when the run fails mid-flight.
    telemetry:
        An :class:`EngineTelemetry` to narrate into; a fresh silent one is
        created when omitted.
    retry:
        Per-shard retry budget and deterministic backoff schedule; defaults
        to :class:`RetryPolicy` seeded from the campaign seed.  Exhausting
        the budget quarantines the shard and degrades the campaign instead
        of aborting it.
    shard_timeout:
        Wall-clock seconds a shard attempt may run before the pool watchdog
        reclaims it (pool mode only; ``None`` disables the watchdog).
    chaos:
        Optional :class:`ChaosPolicy` injecting deterministic engine-level
        faults — the harness that proves the recovery paths work.  Like the
        retry/timeout knobs, chaos never enters the config digest: records
        are invariant under supervision, so journals interoperate freely.
    """

    def __init__(
        self,
        config: CampaignConfig,
        *,
        jobs: int = 1,
        n_shards: int | None = None,
        detector: TransitionDetector | None = None,
        journal_path: str | Path | None = None,
        telemetry: EngineTelemetry | None = None,
        retry: RetryPolicy | None = None,
        shard_timeout: float | None = None,
        chaos: ChaosPolicy | None = None,
    ) -> None:
        if jobs < 1:
            raise EngineError("jobs must be positive")
        self.config = config
        self.jobs = jobs
        self.n_shards = n_shards if n_shards is not None else jobs
        self.detector = detector
        self.journal_path = Path(journal_path) if journal_path else None
        self.telemetry = telemetry or EngineTelemetry()
        self.retry = retry or RetryPolicy(seed=config.seed)
        self.shard_timeout = shard_timeout
        self.chaos = chaos

    # -- execution -----------------------------------------------------------

    def run(self, *, resume: bool = False) -> CampaignResult:
        """Execute (or finish) the campaign and return the merged result.

        Returns a plain :class:`CampaignResult` when every shard completed,
        or a :class:`DegradedCampaignResult` when shards were quarantined.
        """
        if resume and self.journal_path is None:
            raise EngineError("resume requires a journal_path")
        plan = plan_campaign(self.config, self.n_shards)
        journal: TrialJournal | None = None
        if self.journal_path is not None:
            journal = self._open_journal(plan, resume=resume)
            if journal.state.n_shards != plan.n_shards:
                # The journal's shard structure wins: resuming with a
                # different --jobs must not reshuffle shard boundaries.
                plan = plan_campaign(self.config, journal.state.n_shards)

        done: dict[int, list[tuple[int, TrialRecord]]] = (
            dict(journal.state.completed) if journal is not None else {}
        )
        failures: dict[int, ShardFailure] = {}
        segments: _ShardSegments | None = None
        try:
            pending = [s for s in plan.shards if s.index not in done]
            self.telemetry.emit(
                CampaignStarted(
                    total_trials=plan.total_trials,
                    n_shards=plan.n_shards,
                    jobs=self.jobs,
                    resumed_shards=len(done),
                )
            )
            for index, trials in sorted(done.items()):
                self.telemetry.record_outcomes(r for _, r in trials)
                self.telemetry.emit(
                    ShardFinished(
                        shard=index, n_trials=len(trials), elapsed=0.0, resumed=True
                    )
                )
            # A fully-warm artifact store retires the translation pre-warm:
            # nothing will be captured, so there is no first-capture latency
            # for the initializer to hide (see store_fully_warm).
            fully_warm = store_fully_warm(self.config, pending)
            if fully_warm:
                self.telemetry.record_artifact_stats(
                    {"translation_prewarm_skipped": 1}
                )
            if self.jobs == 1 and pending and not fully_warm:
                # Inline runs execute shards in this process: warm it the
                # same way a pool worker would be.
                warm_worker(self.config)
            if (
                self.jobs > 1
                and pending
                and self.config.artifacts
                and getattr(self.config, "golden_cache", True)
                and not self.config.trace
            ):
                segments = _ShardSegments(self.config)
            supervisor = ShardSupervisor(
                self.config,
                execute=execute_shard,
                jobs=self.jobs,
                detector=self.detector,
                retry=self.retry,
                shard_timeout=self.shard_timeout,
                chaos=self.chaos,
                telemetry=self.telemetry,
                journal=journal,
                warm=None if fully_warm else warm_worker,
                segments=segments,
            )
            failures = supervisor.run(pending, done)
            # Translation-cache/lock-step telemetry is per-process state;
            # this covers serial and inline (jobs=1) runs completely and the
            # coordinating process otherwise (see record_machine_stats).
            self.telemetry.record_machine_stats(
                {**CACHE.stats(), **lockstep.stats()}
            )
        finally:
            # Segment teardown first: /dev/shm must be clean on every exit
            # path, and the publication counters have to land before the
            # manifest snapshot below.
            if segments is not None:
                self.telemetry.record_artifact_stats(segments.stats)
                segments.close()
            # The manifest snapshot must survive any failure mode — it is
            # written first so a failing journal close cannot cost it, and
            # best-effort so an unwritable manifest cannot mask the real
            # exception unwinding through here.
            if self.journal_path is not None:
                try:
                    self.telemetry.write_manifest(
                        self.journal_path.with_name(
                            self.journal_path.name + ".manifest.json"
                        )
                    )
                except OSError:
                    pass
            if journal is not None:
                journal.close()
        result = self._merge(plan, done, failures)
        snap = self.telemetry.snapshot()
        self.telemetry.emit(
            CampaignFinished(
                total_trials=plan.total_trials,
                executed_trials=self.telemetry.executed_trials,
                elapsed=snap.elapsed,
                trials_per_sec=snap.trials_per_sec,
                quarantined=len(failures),
            )
        )
        return result

    def _open_journal(self, plan: CampaignPlan, *, resume: bool) -> TrialJournal:
        existing = read_state(self.journal_path)
        if existing is not None and not resume:
            raise JournalError(
                f"{self.journal_path}: journal exists; pass resume=True "
                "(--resume) to continue it or remove the file"
            )
        if resume and existing is not None:
            return TrialJournal.resume(self.journal_path, digest=plan.digest)
        return TrialJournal.create(
            self.journal_path,
            digest=plan.digest,
            n_shards=plan.n_shards,
            total_trials=plan.total_trials,
        )

    def _merge(
        self,
        plan: CampaignPlan,
        done: dict[int, list[tuple[int, TrialRecord]]],
        failures: dict[int, ShardFailure],
    ) -> CampaignResult:
        by_trial = merge_records(done)
        if failures:
            expected = plan.total_trials - sum(
                plan.shards[i].n_trials for i in failures
            )
            if len(by_trial) != expected:
                raise EngineError(
                    f"degraded merge inconsistent: {len(by_trial)} trials for "
                    f"{expected} expected outside quarantined shards"
                )
            records = tuple(record for _, record in sorted(by_trial.items()))
            return DegradedCampaignResult(
                config=self.config,
                records=records,
                planned_trials=plan.total_trials,
                n_shards=plan.n_shards,
                failures=tuple(failures[i] for i in sorted(failures)),
            )
        if len(by_trial) != plan.total_trials:
            missing = sorted(set(range(plan.total_trials)) - set(by_trial))[:5]
            raise EngineError(
                f"merge incomplete: {len(by_trial)}/{plan.total_trials} trials "
                f"(first missing: {missing})"
            )
        records = tuple(by_trial[t] for t in range(plan.total_trials))
        return CampaignResult(config=self.config, records=records)
