"""Structured campaign telemetry: events, throughput, ETA, run manifest.

The engine narrates a run as a stream of typed events.  Consumers attach
callbacks (``telemetry.subscribe``) — a progress line on stderr, a test
capturing the sequence, a dashboard exporter — while the telemetry object
itself aggregates everything needed for observability: per-outcome counters,
trials/sec throughput, an ETA, and a machine-readable *run manifest* that can
be written next to the journal for post-hoc tooling.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.faults.outcomes import TrialRecord

__all__ = [
    "CampaignFinished",
    "CampaignStarted",
    "EngineTelemetry",
    "ProgressSnapshot",
    "ShardFailed",
    "ShardFinished",
    "ShardQuarantined",
    "ShardRetried",
    "ShardStarted",
    "WorkerCrashed",
    "stderr_progress",
]

MANIFEST_FORMAT = "xentry-manifest-v1"


@dataclass(frozen=True)
class CampaignStarted:
    """Emitted once before any shard runs."""

    total_trials: int
    n_shards: int
    jobs: int
    #: Shards already satisfied from the journal on a resumed run.
    resumed_shards: int = 0


@dataclass(frozen=True)
class ShardStarted:
    """A shard was handed to a worker."""

    shard: int
    n_trials: int


@dataclass(frozen=True)
class ShardFinished:
    """A shard's records are durable (journalled when a journal is attached)."""

    shard: int
    n_trials: int
    elapsed: float
    #: True when the shard was satisfied from the journal instead of re-run.
    resumed: bool = False


@dataclass(frozen=True)
class ShardFailed:
    """One shard attempt failed (exception, timeout, lost worker, journal)."""

    shard: int
    #: 0-based attempt number that failed.
    attempt: int
    #: ``"exception" | "timeout" | "worker_lost" | "journal"``.
    kind: str
    error: str


@dataclass(frozen=True)
class ShardRetried:
    """A failed shard was re-enqueued after its backoff delay."""

    shard: int
    #: 0-based attempt number about to run.
    attempt: int
    #: Seeded, deterministic backoff delay (seconds) before the attempt.
    delay: float
    #: Failure kind of the attempt being retried.
    kind: str


@dataclass(frozen=True)
class WorkerCrashed:
    """The process pool lost workers; every in-flight shard was re-enqueued."""

    #: Shards whose in-flight execution was lost with the pool.
    shards: tuple[int, ...]
    #: ``"broken_pool"`` (worker died) or ``"watchdog_timeout"`` (hang).
    kind: str


@dataclass(frozen=True)
class ShardQuarantined:
    """A shard exhausted its retry budget; the campaign completes degraded."""

    shard: int
    #: Total attempts consumed (retry budget + 1).
    attempts: int
    #: Failure kind of the final attempt.
    kind: str
    error: str


@dataclass(frozen=True)
class CampaignFinished:
    """Emitted after the merge; the run's headline numbers."""

    total_trials: int
    executed_trials: int
    elapsed: float
    trials_per_sec: float
    #: Shards that exhausted their retry budget (0 on a clean run).
    quarantined: int = 0


@dataclass(frozen=True)
class ProgressSnapshot:
    """Point-in-time view of a running campaign."""

    done_trials: int
    total_trials: int
    done_shards: int
    n_shards: int
    elapsed: float
    trials_per_sec: float
    eta_seconds: float | None

    def line(self) -> str:
        """Render the one-line human progress string."""
        eta = f", eta {self.eta_seconds:4.0f}s" if self.eta_seconds is not None else ""
        return (
            f"[engine] {self.done_trials}/{self.total_trials} trials "
            f"({self.done_shards}/{self.n_shards} shards, "
            f"{self.trials_per_sec:7.1f} trials/s{eta})"
        )


Event = (
    CampaignStarted
    | ShardStarted
    | ShardFinished
    | ShardFailed
    | ShardRetried
    | WorkerCrashed
    | ShardQuarantined
    | CampaignFinished
)


class EngineTelemetry:
    """Aggregates engine events into counters, throughput and a manifest.

    ``clock`` is injectable so tests can assert on throughput and ETA
    without real sleeps.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._callbacks: list[Callable[[Event], None]] = []
        self._start: float | None = None
        self.total_trials = 0
        self.n_shards = 0
        self.jobs = 1
        self.done_trials = 0
        self.executed_trials = 0
        self.done_shards = 0
        self.detected_by: Counter[str] = Counter()
        self.failure_class: Counter[str] = Counter()
        #: Fault-class mix of the trial stream ("register", "multibit",
        #: "burst", "memory") — the scenario layer's coverage denominators.
        self.fault_classes: Counter[str] = Counter()
        #: Recovery-campaign counters: settling action per detected trial
        #: ("reexecute", "microreboot", "quarantine_vm", "unrecoverable")
        #: and per-policy totals; empty on detection-only runs.
        self.recovery_actions: Counter[str] = Counter()
        self.recovery_policies: Counter[str] = Counter()
        self.recovered_trials = 0
        self.recovery_downtime = 0
        self.recovery_divergent = 0
        #: Class balance of journalled training samples (sample streams only).
        self.label_counts: Counter[str] = Counter()
        self.shard_log: list[ShardFinished] = []
        self.retries = 0
        self.worker_crashes = 0
        self.failed_attempts: list[ShardFailed] = []
        self.quarantined: list[ShardQuarantined] = []
        #: Simulated-machine execution telemetry (translation-cache hit rate,
        #: translated/interpreted instruction mix); see record_machine_stats.
        self.machine_stats: dict[str, int | float] = {}
        #: Golden artifact-cache counters (hits, misses, corrupt artifacts,
        #: bytes moved, capture-vs-load seconds); see record_artifact_stats.
        #: Unlike machine stats these are shipped per shard as worker-side
        #: deltas, so pool runs are covered completely.
        self.artifact_stats: dict[str, int | float] = {}

    # -- event plumbing ------------------------------------------------------

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked for every emitted event."""
        self._callbacks.append(callback)

    def emit(self, event: Event) -> None:
        """Fold ``event`` into the aggregates, then fan out to subscribers."""
        if isinstance(event, CampaignStarted):
            self._start = self._clock()
            self.total_trials = event.total_trials
            self.n_shards = event.n_shards
            self.jobs = event.jobs
        elif isinstance(event, ShardFinished):
            self.done_shards += 1
            self.done_trials += event.n_trials
            if not event.resumed:
                self.executed_trials += event.n_trials
            self.shard_log.append(event)
        elif isinstance(event, ShardFailed):
            self.failed_attempts.append(event)
        elif isinstance(event, ShardRetried):
            self.retries += 1
        elif isinstance(event, WorkerCrashed):
            self.worker_crashes += 1
        elif isinstance(event, ShardQuarantined):
            self.quarantined.append(event)
        for callback in self._callbacks:
            callback(event)

    def record_outcomes(self, records: Iterable) -> None:
        """Fold per-item outcome counters.

        Campaign trials feed the detection-technique and consequence
        counters; training samples — ``(features, label)`` pairs from a
        sample stream — feed the class-balance counter instead.
        """
        for record in records:
            if isinstance(record, TrialRecord):
                self.detected_by[record.detected_by.value] += 1
                self.failure_class[record.failure_class.value] += 1
                self.fault_classes[record.fault_class] += 1
                if record.recovery is not None:
                    rec = record.recovery
                    self.recovery_actions[rec.action] += 1
                    self.recovery_policies[rec.policy] += 1
                    if rec.recovered:
                        self.recovered_trials += 1
                    self.recovery_downtime += rec.downtime_instructions
                    if not rec.clean:
                        self.recovery_divergent += 1
            else:
                _features, label = record
                self.label_counts["incorrect" if label else "correct"] += 1

    def record_machine_stats(self, stats: dict[str, int | float]) -> None:
        """Attach simulated-machine execution counters to the run summary.

        Counters are summed across calls (hit rates and other non-count
        fields take the latest value), so the engine can fold in stats from
        several hypervisors.  With worker processes (``jobs > 1``) the
        counters cover the coordinating process only — the translation cache
        is per-process state.
        """
        for key, value in stats.items():
            if key.endswith("_rate") or key not in self.machine_stats:
                self.machine_stats[key] = value
            else:
                self.machine_stats[key] += value

    def record_artifact_stats(self, stats: dict[str, int | float]) -> None:
        """Fold one golden artifact-cache stats delta into the run totals.

        Every value is a summable counter (counts, bytes, seconds): workers
        snapshot :data:`repro.artifacts.runtime.STATS` around each shard and
        ship the difference, and the engine adds the parent-side segment
        publication counters, so per-shard deltas sum to exact run totals in
        both serial and pool modes.
        """
        for key, value in stats.items():
            if value:
                self.artifact_stats[key] = self.artifact_stats.get(key, 0) + value

    def golden_cache_summary(self) -> dict:
        """Artifact-cache rollup: raw counters plus the derived hit rate."""
        hits = self.artifact_stats.get("golden_hits", 0)
        misses = self.artifact_stats.get("golden_misses", 0)
        consulted = hits + misses
        return {
            **self.artifact_stats,
            "hit_rate": (hits / consulted) if consulted else None,
        }

    # -- derived views -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since :class:`CampaignStarted`."""
        if self._start is None:
            return 0.0
        return self._clock() - self._start

    def snapshot(self) -> ProgressSnapshot:
        """Current progress, throughput and ETA."""
        elapsed = self.elapsed
        # Throughput counts only trials actually executed this run, so a
        # resume that instantly satisfies 90% of the campaign from the
        # journal does not report a fantasy trials/sec.
        rate = self.executed_trials / elapsed if elapsed > 0 else 0.0
        remaining = self.total_trials - self.done_trials
        eta = remaining / rate if rate > 0 else None
        return ProgressSnapshot(
            done_trials=self.done_trials,
            total_trials=self.total_trials,
            done_shards=self.done_shards,
            n_shards=self.n_shards,
            elapsed=elapsed,
            trials_per_sec=rate,
            eta_seconds=eta,
        )

    def manifest(self) -> dict:
        """Machine-readable run summary (the observability artifact)."""
        snap = self.snapshot()
        return {
            "format": MANIFEST_FORMAT,
            "total_trials": self.total_trials,
            "done_trials": self.done_trials,
            "executed_trials": self.executed_trials,
            "n_shards": self.n_shards,
            "done_shards": self.done_shards,
            "jobs": self.jobs,
            "elapsed_seconds": snap.elapsed,
            "trials_per_sec": snap.trials_per_sec,
            "outcomes": {
                "detected_by": dict(self.detected_by),
                "failure_class": dict(self.failure_class),
                "fault_classes": dict(self.fault_classes),
                "labels": dict(self.label_counts),
            },
            "recovery": {
                "trials": sum(self.recovery_actions.values()),
                "recovered": self.recovered_trials,
                "divergent": self.recovery_divergent,
                "downtime_instructions": self.recovery_downtime,
                "actions": dict(self.recovery_actions),
                "policies": dict(self.recovery_policies),
            },
            "failures": {
                "retries": self.retries,
                "worker_crashes": self.worker_crashes,
                "failed_attempts": [
                    {"shard": e.shard, "attempt": e.attempt,
                     "kind": e.kind, "error": e.error}
                    for e in self.failed_attempts
                ],
                "quarantined": [
                    {"shard": e.shard, "attempts": e.attempts,
                     "kind": e.kind, "error": e.error}
                    for e in self.quarantined
                ],
            },
            "machine": dict(self.machine_stats),
            "golden_cache": self.golden_cache_summary(),
            "shards": [
                {
                    "shard": s.shard,
                    "n_trials": s.n_trials,
                    "elapsed_seconds": s.elapsed,
                    "resumed": s.resumed,
                }
                for s in self.shard_log
            ],
        }

    def write_manifest(self, path: str | Path) -> None:
        """Write :meth:`manifest` as JSON."""
        Path(path).write_text(json.dumps(self.manifest(), indent=1))


def stderr_progress(telemetry: EngineTelemetry, *, stream=None) -> Callable[[Event], None]:
    """Subscriber that keeps a single ``\\r``-rewritten progress line on stderr."""
    out = stream if stream is not None else sys.stderr

    def _callback(event: Event) -> None:
        if isinstance(event, (ShardStarted, ShardFinished)):
            out.write("\r" + telemetry.snapshot().line())
            out.flush()
        elif isinstance(event, ShardRetried):
            out.write(
                f"\n[engine] shard {event.shard} retry (attempt {event.attempt}, "
                f"{event.kind}, backoff {event.delay:.2f}s)\n"
            )
            out.flush()
        elif isinstance(event, WorkerCrashed):
            shards = ", ".join(map(str, event.shards))
            out.write(
                f"\n[engine] worker crash ({event.kind}): "
                f"re-enqueued shards {shards}\n"
            )
            out.flush()
        elif isinstance(event, ShardQuarantined):
            out.write(
                f"\n[engine] shard {event.shard} QUARANTINED after "
                f"{event.attempts} attempts: {event.error}\n"
            )
            out.flush()
        elif isinstance(event, CampaignFinished):
            note = (
                f", {event.quarantined} shards quarantined"
                if event.quarantined else ""
            )
            out.write(
                f"\r[engine] done: {event.executed_trials} trials executed "
                f"({event.total_trials} total) in {event.elapsed:.1f}s "
                f"({event.trials_per_sec:.1f} trials/s){note}\n"
            )
            out.flush()

    return _callback
