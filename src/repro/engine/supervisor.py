"""Shard supervision: retry, backoff, watchdog, pool recovery, quarantine.

Xentry's premise is that long-running system software must survive faults in
its substrate; this module applies the same discipline to the campaign
engine itself.  Where the original ``_run_pool`` aborted the whole campaign
on the first worker failure, the :class:`ShardSupervisor` detects, retries
and quarantines:

* **Retry with seeded backoff** — a failed shard attempt is re-enqueued
  after an exponential backoff whose jitter is drawn deterministically from
  ``(seed, shard, attempt)`` (:meth:`RetryPolicy.delay`), so a chaos test
  replays the exact same schedule.
* **Watchdog timeouts** (pool mode) — a shard exceeding its wall-clock
  budget is declared hung; the pool is killed and rebuilt, the hung shard is
  charged an attempt, and innocent in-flight shards are re-enqueued without
  one.
* **``BrokenProcessPool`` recovery** — a hard worker death (segfault, OOM
  kill, injected ``os._exit``) breaks every in-flight future; the supervisor
  rebuilds the pool and re-enqueues all of them.  Every re-enqueued shard is
  charged an attempt: the culprit is indistinguishable from the victims, and
  stepping each shard's attempt number forward is what guarantees progress
  under a deterministic chaos policy.
* **Quarantine** — a shard that exhausts its retry budget is recorded as
  failed (journal ``shard_failed`` marker, :class:`ShardQuarantined` event)
  and the campaign completes *degraded* instead of raising mid-run: the
  engine returns a :class:`DegradedCampaignResult` carrying every surviving
  record plus per-shard error reports.

The journal append runs under the same retry policy with its own attempt
counter; a journal that stays unwritable is fatal (:class:`JournalError`) —
durability is the journal's whole contract, so the engine dies loudly rather
than silently losing it.

**Determinism contract.**  Supervision never alters what a shard computes:
re-running a shard reproduces its records bit for bit, so a campaign that
succeeds after any number of retries is bit-identical to an undisturbed run,
and a degraded campaign's surviving records equal the corresponding slice of
the serial run.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.engine.chaos import ChaosPolicy, inject_journal_fault
from repro.engine.journal import TrialJournal
from repro.engine.planner import ShardPlan
from repro.engine.telemetry import (
    EngineTelemetry,
    ShardFailed,
    ShardFinished,
    ShardQuarantined,
    ShardRetried,
    ShardStarted,
    WorkerCrashed,
)
from repro.errors import CampaignConfigError, EngineError, JournalError
from repro.faults.campaign import CampaignConfig, CampaignResult
from repro.faults.injector import TransitionDetector
from repro.faults.outcomes import TrialRecord

__all__ = [
    "AttemptFailure",
    "DegradedCampaignResult",
    "RetryPolicy",
    "ShardFailure",
    "ShardSupervisor",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry budget and deterministic backoff schedule.

    ``max_retries`` bounds *retries*, so a shard runs at most
    ``max_retries + 1`` times.  The backoff before retry ``attempt`` is
    ``min(backoff_max, backoff_base * backoff_factor**(attempt-1))`` scaled
    by a seeded jitter into ``[(1-jitter)·d, d]`` — deterministic in
    ``(seed, shard, attempt)``, so supervised runs are replayable.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise CampaignConfigError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise CampaignConfigError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise CampaignConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise CampaignConfigError("jitter must be in [0, 1]")

    @property
    def max_attempts(self) -> int:
        """Total executions a shard may consume (first run + retries)."""
        return self.max_retries + 1

    def delay(self, shard: int, attempt: int) -> float:
        """Seconds to wait before running ``attempt`` (0-based) of ``shard``."""
        if attempt <= 0:
            return 0.0
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if base <= 0.0:
            return 0.0
        u = float(rng_mod.stream(self.seed, "backoff", shard, attempt).random())
        return base * (1.0 - self.jitter * u)


@dataclass(frozen=True)
class AttemptFailure:
    """One failed execution of a shard."""

    attempt: int
    #: ``"exception" | "timeout" | "worker_lost"``.
    kind: str
    error: str


@dataclass(frozen=True)
class ShardFailure:
    """Why a shard was quarantined: every failed attempt, in order."""

    shard: int
    attempts: tuple[AttemptFailure, ...]

    @property
    def last(self) -> AttemptFailure:
        """The attempt that exhausted the budget."""
        return self.attempts[-1]


@dataclass(frozen=True)
class DegradedCampaignResult(CampaignResult):
    """A campaign that completed with quarantined shards.

    ``records`` holds the surviving trials in serial order — each one
    bit-identical to the undisturbed run's record at the same position —
    while ``failures`` reports why the missing shards were given up on.
    """

    #: Trials an undisturbed run would have produced.
    planned_trials: int = 0
    n_shards: int = 0
    failures: tuple[ShardFailure, ...] = ()

    @property
    def degraded(self) -> bool:
        """Always True: records are incomplete."""
        return True

    @property
    def quarantined_shards(self) -> tuple[int, ...]:
        """Indices of the shards that exhausted their retry budget."""
        return tuple(f.shard for f in self.failures)

    @property
    def missing_trials(self) -> int:
        """Trials lost to quarantined shards."""
        return self.planned_trials - len(self.records)

    def summary(self) -> str:
        """One line an operator can act on: what is missing and why."""
        detail = "; ".join(
            f"shard {f.shard}: {f.last.kind} after {len(f.attempts)} attempts"
            for f in self.failures
        )
        return (
            f"{len(self.failures)}/{self.n_shards} shards quarantined "
            f"({self.missing_trials}/{self.planned_trials} trials missing): "
            f"{detail}"
        )


@dataclass
class _Run:
    """One scheduled execution of a shard (a specific attempt)."""

    shard: ShardPlan
    attempt: int
    #: Monotonic time before which this run must not be submitted (backoff).
    ready_at: float = 0.0
    #: Monotonic time the attempt actually started executing.
    started: float = 0.0


@dataclass
class _SupervisedState:
    """Mutable bookkeeping shared by the serial and pool loops."""

    attempt_log: dict[int, list[AttemptFailure]] = field(default_factory=dict)
    failures: dict[int, ShardFailure] = field(default_factory=dict)


class ShardSupervisor:
    """Runs pending shards to completion or quarantine.

    Parameters mirror :class:`~repro.engine.pool.CampaignEngine`; ``execute``
    is the module-level shard runner (pickled into pool workers), injected to
    keep this module free of a circular import on :mod:`repro.engine.pool`.
    ``shard_timeout`` is enforced by the pool-mode watchdog only: in serial
    mode the "worker" is this process, which cannot preempt itself.
    """

    def __init__(
        self,
        config: CampaignConfig,
        *,
        execute: Callable[..., list[tuple[int, TrialRecord]]],
        jobs: int = 1,
        detector: TransitionDetector | None = None,
        retry: RetryPolicy | None = None,
        shard_timeout: float | None = None,
        chaos: ChaosPolicy | None = None,
        telemetry: EngineTelemetry | None = None,
        journal: TrialJournal | None = None,
        warm: Callable | None = None,
        segments=None,
    ) -> None:
        if shard_timeout is not None and shard_timeout <= 0:
            raise CampaignConfigError("shard_timeout must be positive")
        self.config = config
        self.execute = execute
        self.jobs = jobs
        self.detector = detector
        self.retry = retry or RetryPolicy(seed=config.seed)
        self.shard_timeout = shard_timeout
        self.chaos = chaos
        self.telemetry = telemetry or EngineTelemetry()
        self.journal = journal
        #: Optional pool-worker initializer (e.g. pool.warm_worker), called
        #: once per worker process with the campaign config before any shard
        #: runs there.  Injected like ``execute`` to stay pickle-friendly
        #: and import-cycle-free.
        self.warm = warm
        #: Optional shared-memory golden-segment provider (the engine's
        #: ``_ShardSegments``): ``acquire(shard)`` publishes the shard's
        #: cached golden artifacts and returns the segment name (or ``None``),
        #: ``release(index)`` unlinks it once the shard reaches a terminal
        #: state (merged or quarantined).  Retried attempts reuse the live
        #: segment — ``acquire`` is idempotent per shard — so a crash-retry
        #: cycle never republishes or leaks.
        self.segments = segments
        self._state = _SupervisedState()

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        """A worker pool with the pre-warm initializer attached (if any)."""
        if self.warm is None:
            return ProcessPoolExecutor(max_workers=max_workers)
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=self.warm,
            initargs=(self.config,),
        )

    # -- public entry ---------------------------------------------------------

    def run(
        self,
        pending: list[ShardPlan],
        done: dict[int, list[tuple[int, TrialRecord]]],
    ) -> dict[int, ShardFailure]:
        """Execute ``pending``, folding results into ``done``.

        Returns the quarantined shards (empty on a clean run).  Raises only
        for faults supervision cannot absorb: an unwritable journal, or an
        interrupt from the caller's own telemetry.
        """
        if pending:
            if self.jobs == 1:
                self._run_serial(pending, done)
            else:
                self._run_pool(pending, done)
        return dict(self._state.failures)

    # -- serial loop ----------------------------------------------------------

    def _run_serial(self, pending, done) -> None:
        for shard in pending:
            self.telemetry.emit(
                ShardStarted(shard=shard.index, n_trials=shard.n_trials)
            )
            attempt = 0
            while True:
                t0 = time.monotonic()
                try:
                    trials = self._normalize(self.execute(
                        self.config, shard, self.detector,
                        chaos=self.chaos, attempt=attempt, allow_hard=False,
                    ))
                except Exception as exc:  # noqa: BLE001 — every worker fault funnels here
                    delay = self._attempt_failed(
                        shard, attempt, "exception",
                        f"{type(exc).__name__}: {exc}",
                    )
                    if delay is None:
                        break
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                self._finish(shard, trials, time.monotonic() - t0, done)
                break

    # -- pool loop ------------------------------------------------------------

    def _run_pool(self, pending, done) -> None:
        queue: list[_Run] = [_Run(shard=s, attempt=0) for s in pending]
        inflight: dict = {}
        pool = self._make_pool(min(self.jobs, len(pending)))
        ok = False
        try:
            while queue or inflight:
                pool = self._top_up(pool, queue, inflight)
                if not inflight:
                    # Everything is waiting out a backoff delay.
                    pause = min(r.ready_at for r in queue) - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                    continue
                finished = self._wait(queue, inflight)
                pool = self._drain(pool, finished, queue, inflight, done)
                pool = self._watchdog(pool, queue, inflight)
            ok = True
        finally:
            if ok:
                pool.shutdown(wait=True)
            else:
                self._kill_workers(pool)
                pool.shutdown(wait=False, cancel_futures=True)

    def _top_up(self, pool, queue, inflight):
        """Submit ready runs up to the worker count.

        Submission is throttled to ``jobs`` outstanding futures so a queued
        shard never burns watchdog budget waiting for a worker; ready runs
        are taken lowest-shard-first for a stable, reproducible order.
        """
        now = time.monotonic()
        ready = sorted(
            (r for r in queue if r.ready_at <= now), key=lambda r: r.shard.index
        )
        for run in ready:
            if len(inflight) >= self.jobs:
                break
            queue.remove(run)
            if run.attempt == 0:
                self.telemetry.emit(
                    ShardStarted(shard=run.shard.index, n_trials=run.shard.n_trials)
                )
            run.started = time.monotonic()
            kwargs: dict = {"chaos": self.chaos, "attempt": run.attempt}
            if self.segments is not None:
                kwargs["segment"] = self.segments.acquire(run.shard)
            try:
                future = pool.submit(
                    self.execute, self.config, run.shard, self.detector,
                    **kwargs,
                )
            except BrokenProcessPool:
                # The pool died between batches.  This run never started, so
                # it goes back unchanged; everything in flight is lost.
                queue.append(run)
                pool = self._recover_lost(pool, [], queue, inflight,
                                          kind="broken_pool")
                break
            inflight[future] = run
        return pool

    def _wait(self, queue, inflight):
        """Block until a future finishes, a deadline nears, or backoff ends."""
        deadlines = [r.ready_at for r in queue]
        if self.shard_timeout is not None:
            deadlines.extend(
                r.started + self.shard_timeout for r in inflight.values()
            )
        timeout = None
        if deadlines:
            timeout = max(0.01, min(deadlines) - time.monotonic())
        finished, _ = wait(
            set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        return finished

    def _drain(self, pool, finished, queue, inflight, done):
        """Process every finished future; journal all successes before
        letting any failure unwind (the lost-shard fix: a crash in one
        future must not discard its batch-mates' completed work)."""
        completed: list[tuple[_Run, list]] = []
        broken: list[_Run] = []
        for future in finished:
            run = inflight.pop(future)
            try:
                completed.append((run, self._normalize(future.result())))
            except BrokenProcessPool:
                broken.append(run)
            except Exception as exc:  # noqa: BLE001 — worker failure, retried
                self._requeue_failed(
                    run, "exception", f"{type(exc).__name__}: {exc}", queue
                )
        first_error: BaseException | None = None
        for run, trials in completed:
            try:
                self._finish(
                    run.shard, trials, time.monotonic() - run.started, done
                )
            except BaseException as exc:  # noqa: BLE001 — drain before unwinding
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        if broken:
            pool = self._recover_lost(
                pool, broken, queue, inflight, kind="broken_pool"
            )
        return pool

    def _watchdog(self, pool, queue, inflight):
        """Reclaim shards that blew their wall-clock budget."""
        if self.shard_timeout is None or not inflight:
            return pool
        now = time.monotonic()
        overdue = [
            future for future, run in inflight.items()
            if now - run.started >= self.shard_timeout
        ]
        if not overdue:
            return pool
        victims = [inflight.pop(f) for f in overdue]
        survivors = [inflight.pop(f) for f in list(inflight)]
        self.telemetry.emit(
            WorkerCrashed(
                shards=tuple(sorted(r.shard.index for r in victims)),
                kind="watchdog_timeout",
            )
        )
        self._kill_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        for run in victims:
            self._requeue_failed(
                run, "timeout",
                f"exceeded shard timeout of {self.shard_timeout:g}s", queue,
            )
        for run in survivors:
            # Innocent bystanders: their work died with the pool, but the
            # hang was not theirs — re-run the same attempt, no charge.
            queue.append(_Run(shard=run.shard, attempt=run.attempt))
        return self._make_pool(self.jobs)

    def _recover_lost(self, pool, lost, queue, inflight, *, kind):
        """Rebuild a broken pool and re-enqueue every in-flight shard.

        All of them — ``lost`` plus whatever is still mapped in ``inflight``
        — are charged an attempt: the worker that died cannot be told apart
        from its pool-mates, and advancing each shard's attempt number is
        what moves a deterministic chaos policy past the fault.
        """
        victims = list(lost) + [inflight.pop(f) for f in list(inflight)]
        if victims:
            self.telemetry.emit(
                WorkerCrashed(
                    shards=tuple(sorted(r.shard.index for r in victims)),
                    kind=kind,
                )
            )
        self._kill_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        for run in victims:
            self._requeue_failed(run, "worker_lost", "process pool broken", queue)
        return self._make_pool(self.jobs)

    @staticmethod
    def _kill_workers(pool) -> None:
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # already reaped
                pass

    # -- shared failure/finish plumbing ---------------------------------------

    def _normalize(self, result):
        """Unpack a shard result that carries an artifact-stats sidecar.

        ``execute_shard`` returns ``(trials, stats_delta)`` so worker-side
        golden-cache counters survive the process boundary; older executors
        (and the training-sample path) return a bare trial list.  Either way
        the caller gets just the trials.
        """
        if (
            isinstance(result, tuple)
            and len(result) == 2
            and isinstance(result[1], dict)
        ):
            trials, stats = result
            self.telemetry.record_artifact_stats(stats)
            return trials
        return result

    def _requeue_failed(self, run: _Run, kind: str, error: str, queue) -> None:
        delay = self._attempt_failed(run.shard, run.attempt, kind, error)
        if delay is not None:
            queue.append(
                _Run(
                    shard=run.shard,
                    attempt=run.attempt + 1,
                    ready_at=time.monotonic() + delay,
                )
            )

    def _attempt_failed(
        self, shard: ShardPlan, attempt: int, kind: str, error: str
    ) -> float | None:
        """Record a failed attempt.

        Returns the backoff delay before the next attempt, or ``None`` when
        the retry budget is exhausted and the shard was quarantined.
        """
        log = self._state.attempt_log.setdefault(shard.index, [])
        log.append(AttemptFailure(attempt=attempt, kind=kind, error=error))
        self.telemetry.emit(
            ShardFailed(shard=shard.index, attempt=attempt, kind=kind, error=error)
        )
        if attempt + 1 >= self.retry.max_attempts:
            self._quarantine(shard, log)
            return None
        next_attempt = attempt + 1
        delay = self.retry.delay(shard.index, next_attempt)
        self.telemetry.emit(
            ShardRetried(
                shard=shard.index, attempt=next_attempt, delay=delay, kind=kind
            )
        )
        return delay

    def _quarantine(self, shard: ShardPlan, log: list[AttemptFailure]) -> None:
        failure = ShardFailure(shard=shard.index, attempts=tuple(log))
        self._state.failures[shard.index] = failure
        if self.segments is not None:
            self.segments.release(shard.index)
        last = failure.last
        self.telemetry.emit(
            ShardQuarantined(
                shard=shard.index, attempts=len(log),
                kind=last.kind, error=last.error,
            )
        )
        if self.journal is not None:
            try:
                self.journal.append_failed(
                    shard.index, attempts=len(log), kind=last.kind, error=last.error
                )
            except OSError:
                # The marker is advisory — a resume re-runs any shard without
                # a completed recording — so its loss must not mask the
                # quarantine itself.
                pass

    def _finish(self, shard: ShardPlan, trials, elapsed: float, done) -> None:
        if self.journal is not None:
            self._journal_append(shard, trials)
        done[shard.index] = trials
        if self.segments is not None:
            self.segments.release(shard.index)
        self.telemetry.record_outcomes(r for _, r in trials)
        self.telemetry.emit(
            ShardFinished(shard=shard.index, n_trials=len(trials), elapsed=elapsed)
        )

    def _journal_append(self, shard: ShardPlan, trials) -> None:
        """Append under the retry policy; an unwritable journal is fatal.

        Shard computation failures degrade the campaign, but a journal that
        cannot be written breaks the durability contract resume depends on —
        better to die loudly (leaving at worst a torn tail that
        ``read_state`` reports as ``partial``) than continue un-journalled.
        """
        attempt = 0
        while True:
            try:
                fault = (
                    self.chaos.journal_fault(shard.index, attempt)
                    if self.chaos is not None else None
                )
                if fault is not None:
                    inject_journal_fault(self.journal, shard.index, trials, fault)
                self.journal.append_shard(shard.index, trials)
                return
            except OSError as exc:
                self.telemetry.emit(
                    ShardFailed(
                        shard=shard.index, attempt=attempt,
                        kind="journal", error=f"{type(exc).__name__}: {exc}",
                    )
                )
                if attempt + 1 >= self.retry.max_attempts:
                    raise JournalError(
                        f"journal append for shard {shard.index} failed "
                        f"after {attempt + 1} attempts: {exc}"
                    ) from exc
                attempt += 1
                delay = self.retry.delay(shard.index, attempt)
                self.telemetry.emit(
                    ShardRetried(
                        shard=shard.index, attempt=attempt,
                        delay=delay, kind="journal",
                    )
                )
                if delay > 0:
                    time.sleep(delay)


def merge_records(
    done: dict[int, list[tuple[int, TrialRecord]]],
) -> dict[int, TrialRecord]:
    """Fold per-shard ``(trial, record)`` lists into one index-keyed map,
    rejecting duplicates (two shards claiming one trial is always a bug)."""
    by_trial: dict[int, TrialRecord] = {}
    for trials in done.values():
        for t, record in trials:
            if t in by_trial:
                raise EngineError(f"trial {t} recorded by more than one shard")
            by_trial[t] = record
    return by_trial
