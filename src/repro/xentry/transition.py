"""VM transition detection: the classifier applied at every VM entry.

Wraps compiled tree rules (:class:`repro.ml.export.CompiledRules`) with the
bookkeeping the framework needs: per-classification comparison counts (the
traversal-cost term of the Fig. 7 overhead model) and detection statistics.
The detector is intentionally dumb at this layer — all intelligence lives in
the trained rules; evaluation is "a set of simple integer comparisons"
(Section III.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotFittedError
from repro.ml.dataset import INCORRECT
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.export import CompiledRules, compile_tree

__all__ = ["VMTransitionDetector"]


@dataclass
class VMTransitionDetector:
    """Tree-rule classifier with traversal accounting."""

    rules: CompiledRules
    classifications: int = 0
    positives: int = 0
    total_comparisons: int = 0
    _depths: list[int] = field(default_factory=list, repr=False)

    @classmethod
    def from_classifier(cls, classifier: DecisionTreeClassifier) -> "VMTransitionDetector":
        """Compile a fitted tree into a deployable detector."""
        if classifier.root is None:
            raise NotFittedError("train the classifier before deploying it")
        return cls(rules=compile_tree(classifier))

    def flags_incorrect(self, features: tuple[int, ...]) -> bool:
        """Classify one feature vector; True = incorrect control flow."""
        label, comparisons = self.rules.classify(features)
        self.classifications += 1
        self.total_comparisons += comparisons
        self._depths.append(comparisons)
        flagged = label == INCORRECT
        if flagged:
            self.positives += 1
        return flagged

    # -- cost accounting (feeds the overhead model) ---------------------------

    @property
    def mean_comparisons(self) -> float:
        """Average integer comparisons per VM entry."""
        if not self.classifications:
            return 0.0
        return self.total_comparisons / self.classifications

    @property
    def worst_case_comparisons(self) -> int:
        """Tree depth: the upper bound on per-entry comparisons."""
        return self.rules.max_depth

    def reset_stats(self) -> None:
        self.classifications = 0
        self.positives = 0
        self.total_comparisons = 0
        self._depths.clear()
