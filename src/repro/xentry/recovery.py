"""Recovery cost model with false positives (Section VI / Fig. 11).

The paper assumes a light-weight recovery scheme: critical hypervisor data
(VCPU and domain structures) and the VM exit reason are copied at *every* VM
exit (measured at ~1,900 ns on a Xeon E5506 @ 2.13 GHz); on a positive
detection — correct or false — the copies are restored and the hypervisor
execution re-executes, "essentially doubling the original execution time".
With the classifier's 0.7% false-positive rate, the estimated overhead is
2.7% on average, 6.3% for postmark and ~1.6% for mcf/bzip2, with a max-min
spread below 0.03% across 100 repetitions per application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import rng as rng_mod
from repro.errors import CampaignConfigError
from repro.workloads.base import VirtMode, WorkloadProfile

__all__ = ["RecoveryCostModel", "RecoveryOverheadStudy", "estimate_recovery_overhead"]

#: The paper's measured critical-state copy time (Xeon E5506, 2.13 GHz).
PAPER_COPY_NS = 1_900.0
#: The classifier false-positive rate measured in Section III.
PAPER_FALSE_POSITIVE_RATE = 0.007


@dataclass(frozen=True)
class RecoveryCostModel:
    """Cost parameters of the copy-at-exit / re-execute-on-detect scheme."""

    copy_ns: float = PAPER_COPY_NS
    false_positive_rate: float = PAPER_FALSE_POSITIVE_RATE
    #: Mean original handler-execution time; restored-and-re-executed work on
    #: a false positive costs one restore (≈ copy) plus one re-execution.
    handler_ns: float = 250.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.false_positive_rate <= 1.0:
            raise CampaignConfigError("false_positive_rate must be in [0, 1]")
        if self.copy_ns < 0 or self.handler_ns < 0:
            raise CampaignConfigError("costs must be non-negative")

    def per_second_overhead_ns(self, rate: float, false_positives: float) -> float:
        """Added nanoseconds per second of execution.

        ``rate``: activations per second; ``false_positives``: number of
        positive detections among them this second.
        """
        return rate * self.copy_ns + false_positives * (self.copy_ns + self.handler_ns)


@dataclass(frozen=True)
class RecoveryOverheadStudy:
    """Per-application recovery overheads over repeated runs."""

    benchmark: str
    overheads: np.ndarray  # fraction of runtime, one entry per repetition

    @property
    def mean(self) -> float:
        return float(self.overheads.mean())

    @property
    def max(self) -> float:
        return float(self.overheads.max())

    @property
    def min(self) -> float:
        return float(self.overheads.min())

    @property
    def spread(self) -> float:
        """Max - min across repetitions (paper: < 0.03%)."""
        return self.max - self.min


def estimate_recovery_overhead(
    profile: WorkloadProfile,
    *,
    mode: VirtMode = VirtMode.PV,
    model: RecoveryCostModel | None = None,
    repetitions: int = 100,
    run_seconds: int = 60,
    seed: int = 0,
) -> RecoveryOverheadStudy:
    """Reproduce the Fig. 11 methodology for one application.

    A hypervisor-activation trace is collected once per application (we use
    the profile's rate distribution); false-positive activations are then
    drawn randomly per repetition — "This is repeated by 100 times for each
    application" — and the added copy/re-execution time is normalized by the
    run duration.
    """
    model = model or RecoveryCostModel()
    trace_rng = rng_mod.stream(seed, "recovery-trace", profile.name, mode.value)
    # One fixed trace per application (the paper collects the trace once).
    per_second = profile.rate(mode).sample(trace_rng, run_seconds)
    total_activations = per_second.sum()
    fp_rng = rng_mod.stream(seed, "recovery-fp", profile.name, mode.value)
    overheads = np.empty(repetitions, dtype=np.float64)
    for i in range(repetitions):
        # Randomly select hypervisor executions as false positives.
        false_positives = fp_rng.binomial(
            int(total_activations), model.false_positive_rate
        )
        added_ns = (
            total_activations * model.copy_ns
            + false_positives * (model.copy_ns + model.handler_ns)
        )
        overheads[i] = added_ns / (run_seconds * 1e9)
    return RecoveryOverheadStudy(benchmark=profile.name, overheads=overheads)
