"""Xentry — the paper's contribution: hypervisor-level soft error detection.

Two techniques (Section III): **VM transition detection** — a trained tree
classifier over performance-counter features applied at every VM entry — and
**runtime detection** — fatal-hardware-exception parsing plus planted software
assertions.  Plus the Section VI recovery-cost model and the interception-shim
cost accounting used by the overhead studies.
"""

from repro.xentry.features import FEATURE_NAMES, FeatureVector
from repro.xentry.framework import ProtectedOutcome, ProtectionVerdict, Xentry
from repro.xentry.interception import DetectionCostModel, ShimInterceptor
from repro.xentry.recovery import (
    PAPER_COPY_NS,
    PAPER_FALSE_POSITIVE_RATE,
    RecoveryCostModel,
    RecoveryOverheadStudy,
    estimate_recovery_overhead,
)
from repro.xentry.recovery_exec import RecoveryManager, RecoveryOutcome
from repro.xentry.recovery_policy import (
    LADDER_POLICY,
    MICROREBOOT_POLICY,
    POLICIES,
    REEXECUTE_POLICY,
    RecoveryAction,
    RecoveryExecutor,
    RecoveryPolicy,
    policy_from_name,
)
from repro.xentry.runtime import DetectionEvent, RuntimeDetector
from repro.xentry.training import (
    TrainedModel,
    TrainingConfig,
    collect_dataset,
    execute_training_shard,
    train_and_evaluate,
    training_digest,
)
from repro.xentry.transition import VMTransitionDetector

__all__ = [
    "DetectionCostModel",
    "DetectionEvent",
    "FEATURE_NAMES",
    "FeatureVector",
    "LADDER_POLICY",
    "MICROREBOOT_POLICY",
    "PAPER_COPY_NS",
    "PAPER_FALSE_POSITIVE_RATE",
    "POLICIES",
    "ProtectedOutcome",
    "ProtectionVerdict",
    "REEXECUTE_POLICY",
    "RecoveryAction",
    "RecoveryCostModel",
    "RecoveryExecutor",
    "RecoveryManager",
    "RecoveryOutcome",
    "RecoveryOverheadStudy",
    "RecoveryPolicy",
    "RuntimeDetector",
    "ShimInterceptor",
    "TrainedModel",
    "TrainingConfig",
    "VMTransitionDetector",
    "Xentry",
    "collect_dataset",
    "estimate_recovery_overhead",
    "execute_training_shard",
    "policy_from_name",
    "train_and_evaluate",
    "training_digest",
]
