"""Training-set collection and classifier construction (Section III.B).

The paper builds its VM-transition model from simulator traces: "We conduct
about 23,400 fault injections and fault-free runs to collect training
samples ... In total, the training data set contains 12,024 samples (10,280
samples are labeled as correct, and 1,744 are labeled as incorrect)", then a
separate ~17,700-injection pass yields the 6,596-sample test set.  Random
tree reaches 98.6% accuracy vs 96.1% for the plain decision tree.

This module reproduces that pipeline on the simulated platform:

* **correct samples** come from fault-free activation streams (state evolves
  between activations, so per-VMER feature distributions have realistic
  variance) *and* from injected runs whose fault was masked;
* **incorrect samples** come from injected runs that reached VM entry with a
  divergent execution (the population transition detection must catch).
  Injected runs that die on a hardware exception or assertion never reach VM
  entry and therefore contribute no transition sample — exactly as on the
  real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rng as rng_mod
from repro.errors import CampaignConfigError, SimulationLimitExceeded
from repro.faults.model import FaultModel
from repro.faults.propagation import capture_golden, compute_divergence
from repro.hypervisor.xen import XenHypervisor
from repro.machine.exceptions import AssertionViolation, HardwareException
from repro.ml.dataset import CORRECT, Dataset, INCORRECT
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import ConfusionMatrix, evaluate
from repro.ml.random_tree import RandomTreeClassifier
from repro.workloads.base import VirtMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.suite import BENCHMARK_NAMES, get_profile

__all__ = ["TrainingConfig", "TrainedModel", "collect_dataset", "train_and_evaluate"]


@dataclass(frozen=True)
class TrainingConfig:
    """Sample-collection parameters.

    Defaults are scaled down from the paper's 23,400/17,700 injections so the
    pipeline runs in seconds; scale ``fault_free_runs``/``injection_runs`` up
    to approach the paper's sample counts.
    """

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    mode: VirtMode = VirtMode.PV
    fault_free_runs: int = 600
    injection_runs: int = 1_200
    seed: int = 0
    n_domains: int = 3
    fault_model: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if self.fault_free_runs < 1 or self.injection_runs < 1:
            raise CampaignConfigError("run counts must be positive")


def collect_dataset(
    config: TrainingConfig,
    *,
    hypervisor: XenHypervisor | None = None,
    stream: str = "train",
) -> Dataset:
    """Collect one labeled dataset (pass a different ``stream`` for test)."""
    hv = hypervisor or XenHypervisor(n_domains=config.n_domains, seed=config.seed)
    samples: list[tuple[int, ...]] = []
    labels: list[int] = []
    per_bench_free = max(1, config.fault_free_runs // len(config.benchmarks))
    per_bench_inj = max(1, config.injection_runs // len(config.benchmarks))
    for benchmark in config.benchmarks:
        generator = WorkloadGenerator(
            get_profile(benchmark), config.mode,
            seed=rng_mod.derive_seed(config.seed, stream, benchmark),
            n_domains=config.n_domains,
        )
        # Fault-free stream: evolving state, label CORRECT.
        hv.reset()
        for activation in generator.activations(per_bench_free, stream=f"{stream}.free"):
            result = hv.execute(activation)
            samples.append(result.features)
            labels.append(CORRECT)
        # Injection stream: golden/faulty pairs.
        fault_rng = rng_mod.stream(config.seed, stream, "faults", benchmark)
        hv.reset()
        injected = 0
        for activation in generator.activations(per_bench_inj, stream=f"{stream}.inj"):
            if injected >= per_bench_inj:
                break
            golden = capture_golden(hv, activation)
            hv.restore(golden.checkpoint)
            fault = config.fault_model.sample(fault_rng, golden.result.instructions)
            hv.cpu.schedule_register_flip(
                fault.dynamic_index, fault.register, fault.bit
            )
            injected += 1
            try:
                faulty = hv.execute(activation)
            except (HardwareException, AssertionViolation, SimulationLimitExceeded):
                # Never reached VM entry: no transition sample to learn from.
                hv.restore(golden.checkpoint)
                continue
            divergence = compute_divergence(hv, activation, golden, faulty)
            if divergence.path_changed:
                # Incorrect control flow: the class VM transition detection
                # is designed to recognize (Section III.B).
                samples.append(faulty.features)
                labels.append(INCORRECT)
            elif not divergence.any:
                # Fully masked fault: indistinguishable from correct — a
                # legitimate correct sample.
                samples.append(faulty.features)
                labels.append(CORRECT)
            # Data-only divergence is excluded: by construction it leaves the
            # control-flow features untouched, so it carries no signal and
            # would only poison the classes (these faults are the paper's
            # undetected Table II population, not training material).
            # Leave the golden state in place so the stream keeps evolving
            # from uncorrupted state.
            hv.restore(golden.checkpoint)
            hv.execute(activation)
    return Dataset.from_samples(samples, labels)


@dataclass(frozen=True)
class TrainedModel:
    """A trained classifier with its held-out evaluation."""

    name: str
    classifier: DecisionTreeClassifier
    train_set: Dataset
    test_set: Dataset
    confusion: ConfusionMatrix

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    @property
    def false_positive_rate(self) -> float:
        return self.confusion.false_positive_rate

    def report(self) -> str:
        return "\n".join(
            [
                f"[{self.name}]",
                f"  train: {self.train_set.describe()}",
                f"  test:  {self.test_set.describe()}",
                self.confusion.report(self.name),
            ]
        )


def train_and_evaluate(
    train_set: Dataset,
    test_set: Dataset,
    *,
    algorithm: str = "random_tree",
    seed: int = 0,
    max_depth: int = 32,
    min_samples_leaf: int = 1,
    incorrect_oversample: int = 3,
) -> TrainedModel:
    """Fit one tree algorithm and evaluate it on the held-out set.

    ``incorrect_oversample`` weights the minority (incorrect) class during
    induction; the default lands near the paper's 0.7% false-positive
    operating point.
    """
    if algorithm == "random_tree":
        classifier: DecisionTreeClassifier = RandomTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf, seed=seed
        )
    elif algorithm == "decision_tree":
        classifier = DecisionTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
    else:
        raise CampaignConfigError(
            f"unknown algorithm {algorithm!r} (random_tree or decision_tree)"
        )
    classifier.fit(train_set.oversampled(INCORRECT, incorrect_oversample))
    confusion = evaluate(test_set.y, classifier.predict(test_set.X))
    return TrainedModel(
        name=algorithm,
        classifier=classifier,
        train_set=train_set,
        test_set=test_set,
        confusion=confusion,
    )
