"""Training-set collection and classifier construction (Section III.B).

The paper builds its VM-transition model from simulator traces: "We conduct
about 23,400 fault injections and fault-free runs to collect training
samples ... In total, the training data set contains 12,024 samples (10,280
samples are labeled as correct, and 1,744 are labeled as incorrect)", then a
separate ~17,700-injection pass yields the 6,596-sample test set.  Random
tree reaches 98.6% accuracy vs 96.1% for the plain decision tree.

This module reproduces that pipeline on the simulated platform:

* **correct samples** come from fault-free activation streams (state evolves
  between activations, so per-VMER feature distributions have realistic
  variance) *and* from injected runs whose fault was masked;
* **incorrect samples** come from injected runs that reached VM entry with a
  divergent execution (the population transition detection must catch).
  Injected runs that die on a hardware exception or assertion never reach VM
  entry and therefore contribute no transition sample — exactly as on the
  real system.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path

from repro import rng as rng_mod
from repro.engine.chaos import ChaosPolicy, ChaosTripwire
from repro.engine.journal import SampleJournal
from repro.engine.planner import TrainingShard, payload_digest, plan_training_shards
from repro.engine.supervisor import RetryPolicy, ShardSupervisor
from repro.engine.telemetry import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ShardFinished,
)
from repro.errors import (
    CampaignConfigError,
    EngineError,
    JournalError,
    SimulationLimitExceeded,
)
from repro.faults.model import FaultModel
from repro.faults.propagation import capture_golden, compute_divergence
from repro.hypervisor.xen import XenHypervisor
from repro.machine.exceptions import AssertionViolation, HardwareException
from repro.ml.dataset import CORRECT, Dataset, INCORRECT
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.export import CompiledRules, compile_tree
from repro.ml.metrics import ConfusionMatrix, evaluate
from repro.ml.random_tree import RandomTreeClassifier
from repro.workloads.base import VirtMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.suite import BENCHMARK_NAMES, get_profile

__all__ = [
    "TrainingConfig",
    "TrainedModel",
    "collect_dataset",
    "execute_training_shard",
    "train_and_evaluate",
    "training_digest",
]

TRAINING_PLAN_FORMAT = "xentry-training-v1"


@dataclass(frozen=True)
class TrainingConfig:
    """Sample-collection parameters.

    Defaults are scaled down from the paper's 23,400/17,700 injections so the
    pipeline runs in seconds; scale ``fault_free_runs``/``injection_runs`` up
    to approach the paper's sample counts.
    """

    benchmarks: tuple[str, ...] = BENCHMARK_NAMES
    mode: VirtMode = VirtMode.PV
    fault_free_runs: int = 600
    injection_runs: int = 1_200
    seed: int = 0
    n_domains: int = 3
    fault_model: FaultModel = field(default_factory=FaultModel)

    def __post_init__(self) -> None:
        if self.fault_free_runs < 1 or self.injection_runs < 1:
            raise CampaignConfigError("run counts must be positive")


def training_digest(config: TrainingConfig, stream: str = "train") -> str:
    """Stable fingerprint of everything that shapes a collection's samples.

    The sample journal stores it so a resume against a different collection
    (different seed, benchmarks, stream, ...) is rejected instead of silently
    merging unrelated samples.
    """
    payload = {
        "format": TRAINING_PLAN_FORMAT,
        "stream": stream,
        "benchmarks": list(config.benchmarks),
        "mode": config.mode.value,
        "fault_free_runs": config.fault_free_runs,
        "injection_runs": config.injection_runs,
        "seed": config.seed,
        "n_domains": config.n_domains,
        "fault_registers": list(config.fault_model.registers),
        "fault_bits": list(config.fault_model.bits),
    }
    return payload_digest(payload)


Sample = tuple[tuple[int, ...], int]


def _collect_free_part(
    hv: XenHypervisor,
    generator: WorkloadGenerator,
    shard: TrainingShard,
    stream: str,
    tripwire: ChaosTripwire | None,
) -> list[Sample]:
    """Fault-free stream: evolving state, every transition labeled CORRECT."""
    items: list[Sample] = []
    for activation in generator.activations(shard.n_runs, stream=f"{stream}.free"):
        result = hv.execute(activation)
        items.append((result.features, CORRECT))
        if tripwire is not None:
            tripwire.step()
    return items


def _collect_inj_part(
    hv: XenHypervisor,
    config: TrainingConfig,
    generator: WorkloadGenerator,
    shard: TrainingShard,
    stream: str,
    tripwire: ChaosTripwire | None,
) -> list[Sample]:
    """Injection stream: golden/faulty pairs, at most one sample per run."""
    fault_rng = rng_mod.stream(config.seed, stream, "faults", shard.benchmark)
    items: list[Sample] = []
    for activation in generator.activations(shard.n_runs, stream=f"{stream}.inj"):
        golden = capture_golden(hv, activation)
        hv.restore(golden.checkpoint)
        fault = config.fault_model.sample(fault_rng, golden.result.instructions)
        hv.cpu.schedule_register_flip(
            fault.dynamic_index, fault.register, fault.bit
        )
        try:
            faulty = hv.execute(activation)
        except (HardwareException, AssertionViolation, SimulationLimitExceeded):
            # Never reached VM entry: no transition sample to learn from.
            faulty = None
        if faulty is not None:
            divergence = compute_divergence(hv, activation, golden, faulty)
            if divergence.path_changed:
                # Incorrect control flow: the class VM transition detection
                # is designed to recognize (Section III.B).
                items.append((faulty.features, INCORRECT))
            elif not divergence.any:
                # Fully masked fault: indistinguishable from correct — a
                # legitimate correct sample.
                items.append((faulty.features, CORRECT))
            # Data-only divergence is excluded: by construction it leaves
            # the control-flow features untouched, so it carries no signal
            # and would only poison the classes (these faults are the
            # paper's undetected Table II population, not training material).
        # However the injection ended — killed by an exception, diverged, or
        # masked — advance the stream from uncorrupted state: restore the
        # golden checkpoint and re-execute the activation fault-free, so the
        # next golden capture sees an evolved (never corrupted, never
        # stalled) state stream.
        hv.restore(golden.checkpoint)
        hv.execute(activation)
        if tripwire is not None:
            tripwire.step()
    return items


def execute_training_shard(
    config: TrainingConfig,
    shard: TrainingShard,
    detector=None,
    *,
    chaos: ChaosPolicy | None = None,
    attempt: int = 0,
    allow_hard: bool = True,
    stream: str = "train",
    hypervisor: XenHypervisor | None = None,
) -> list[tuple[int, Sample]]:
    """Run one collection shard and return ``(global run index, sample)``.

    Module-level so a process pool can pickle it; workers rebuild their own
    hypervisor from the config.  Every shard starts from post-boot state
    (``hv.reset()``) and draws from RNG streams named by ``(seed, stream,
    benchmark, part)``, so shards execute in any process, in any order, and
    still produce exactly the samples the serial collection would have
    produced at those positions.  ``detector`` is the supervisor protocol
    slot — collection deploys no detector, the argument is ignored.
    """
    tripwire = None
    if chaos is not None:
        plan = chaos.plan(shard.index, attempt, allow_hard=allow_hard)
        if not plan.quiet:
            tripwire = ChaosTripwire(plan)
            tripwire.step()  # faults positioned "before the first run"
    hv = hypervisor or XenHypervisor(n_domains=config.n_domains, seed=config.seed)
    generator = WorkloadGenerator(
        get_profile(shard.benchmark), config.mode,
        seed=rng_mod.derive_seed(config.seed, stream, shard.benchmark),
        n_domains=config.n_domains,
    )
    hv.reset()
    if shard.part == "free":
        items = _collect_free_part(hv, generator, shard, stream, tripwire)
    else:
        items = _collect_inj_part(hv, config, generator, shard, stream, tripwire)
    return [(shard.run_start + k, sample) for k, sample in enumerate(items)]


def collect_dataset(
    config: TrainingConfig,
    *,
    hypervisor: XenHypervisor | None = None,
    stream: str = "train",
    jobs: int = 1,
    journal_path: str | Path | None = None,
    resume: bool = False,
    telemetry: EngineTelemetry | None = None,
    retry: RetryPolicy | None = None,
    shard_timeout: float | None = None,
    chaos: ChaosPolicy | None = None,
) -> Dataset:
    """Collect one labeled dataset (pass a different ``stream`` for test).

    Collection runs on the campaign engine: the run is cut into one shard
    per ``(benchmark, part)`` pair (:func:`plan_training_shards`), executed
    by a :class:`ShardSupervisor` — inline when ``jobs=1``, over a process
    pool otherwise — with the engine's retry/backoff, watchdog and telemetry
    semantics.  With ``journal_path`` every finished shard is durably
    journalled (:class:`SampleJournal`) and ``resume=True`` finishes a
    killed collection, re-running only the missing shards.  The merged
    dataset is bit-identical to a serial collection of the same seed,
    whatever the job count, supervision, or resume history.

    ``hypervisor`` is honored on the inline path only; pool workers rebuild
    their own (bit-identical: every shard starts from post-boot state).
    Unlike campaigns, a collection with quarantined shards raises
    :class:`EngineError` instead of returning degraded data — a silently
    truncated training set skews the class balance it exists to provide.
    """
    if jobs < 1:
        raise EngineError("jobs must be positive")
    if resume and journal_path is None:
        raise EngineError("resume requires a journal_path")
    shards = plan_training_shards(
        config.benchmarks, config.fault_free_runs, config.injection_runs
    )
    digest = training_digest(config, stream)
    total_runs = sum(s.n_runs for s in shards)
    telemetry = telemetry or EngineTelemetry()
    journal: SampleJournal | None = None
    if journal_path is not None:
        journal = _open_sample_journal(
            journal_path, digest=digest, n_shards=len(shards),
            total_runs=total_runs, resume=resume,
        )
    done: dict[int, list[tuple[int, Sample]]] = (
        dict(journal.state.completed) if journal is not None else {}
    )
    failures = {}
    try:
        pending = [s for s in shards if s.index not in done]
        telemetry.emit(
            CampaignStarted(
                total_trials=total_runs,
                n_shards=len(shards),
                jobs=jobs,
                resumed_shards=len(done),
            )
        )
        for index, items in sorted(done.items()):
            telemetry.record_outcomes(sample for _, sample in items)
            telemetry.emit(
                ShardFinished(
                    shard=index, n_trials=len(items), elapsed=0.0, resumed=True
                )
            )
        execute = functools.partial(execute_training_shard, stream=stream)
        if jobs == 1 and hypervisor is not None:
            execute = functools.partial(execute, hypervisor=hypervisor)
        supervisor = ShardSupervisor(
            config,
            execute=execute,
            jobs=jobs,
            detector=None,
            retry=retry or RetryPolicy(seed=config.seed),
            shard_timeout=shard_timeout,
            chaos=chaos,
            telemetry=telemetry,
            journal=journal,
        )
        failures = supervisor.run(pending, done)
    finally:
        # Manifest first (observability must survive failures), best-effort
        # so an unwritable manifest cannot mask the exception unwinding here.
        if journal_path is not None:
            try:
                telemetry.write_manifest(
                    Path(journal_path).with_name(
                        Path(journal_path).name + ".manifest.json"
                    )
                )
            except OSError:
                pass
        if journal is not None:
            journal.close()
    if failures:
        detail = "; ".join(
            f"shard {i} ({shards[i].benchmark}/{shards[i].part}): "
            f"{f.last.kind} after {len(f.attempts)} attempts"
            for i, f in sorted(failures.items())
        )
        raise EngineError(
            f"training collection lost {len(failures)}/{len(shards)} shards "
            f"to quarantine — a truncated dataset would skew the class "
            f"balance, refusing to return it ({detail})"
        )
    samples: list[tuple[int, ...]] = []
    labels: list[int] = []
    for index in sorted(done):
        for _, (features, label) in sorted(done[index]):
            samples.append(features)
            labels.append(label)
    snap = telemetry.snapshot()
    telemetry.emit(
        CampaignFinished(
            total_trials=total_runs,
            executed_trials=telemetry.executed_trials,
            elapsed=snap.elapsed,
            trials_per_sec=snap.trials_per_sec,
        )
    )
    return Dataset.from_samples(samples, labels)


def _open_sample_journal(
    path: str | Path, *, digest: str, n_shards: int, total_runs: int, resume: bool
) -> SampleJournal:
    existing = SampleJournal.read(path)
    if existing is not None and not resume:
        raise JournalError(
            f"{path}: journal exists; pass resume=True (--resume) to "
            "continue it or remove the file"
        )
    if resume and existing is not None:
        return SampleJournal.resume(path, digest=digest)
    return SampleJournal.create(
        path, digest=digest, n_shards=n_shards, total_trials=total_runs
    )


@dataclass(frozen=True)
class TrainedModel:
    """A trained classifier with its held-out evaluation.

    ``rules`` is the classifier lowered to a flat comparison table
    (:func:`repro.ml.export.compile_tree`) — the deployable artifact, and
    the one evaluation runs through (vectorized batch traversal).
    """

    name: str
    classifier: DecisionTreeClassifier
    train_set: Dataset
    test_set: Dataset
    confusion: ConfusionMatrix
    rules: CompiledRules | None = None

    @property
    def accuracy(self) -> float:
        return self.confusion.accuracy

    @property
    def false_positive_rate(self) -> float:
        return self.confusion.false_positive_rate

    def report(self) -> str:
        return "\n".join(
            [
                f"[{self.name}]",
                f"  train: {self.train_set.describe()}",
                f"  test:  {self.test_set.describe()}",
                self.confusion.report(self.name),
            ]
        )


def train_and_evaluate(
    train_set: Dataset,
    test_set: Dataset,
    *,
    algorithm: str = "random_tree",
    seed: int = 0,
    max_depth: int = 32,
    min_samples_leaf: int = 1,
    incorrect_oversample: int = 3,
) -> TrainedModel:
    """Fit one tree algorithm and evaluate it on the held-out set.

    ``incorrect_oversample`` weights the minority (incorrect) class during
    induction; the default lands near the paper's 0.7% false-positive
    operating point.
    """
    if algorithm == "random_tree":
        classifier: DecisionTreeClassifier = RandomTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf, seed=seed
        )
    elif algorithm == "decision_tree":
        classifier = DecisionTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
    else:
        raise CampaignConfigError(
            f"unknown algorithm {algorithm!r} (random_tree or decision_tree)"
        )
    classifier.fit(train_set.oversampled(INCORRECT, incorrect_oversample))
    # Evaluate through the compiled batch path — the deployable artifact is
    # what gets scored, and the batch traversal is bit-identical to the
    # per-row tree walk (property-tested), just vectorized.
    rules = compile_tree(classifier)
    confusion = evaluate(test_set.y, rules.predict_batch(test_set.X))
    return TrainedModel(
        name=algorithm,
        classifier=classifier,
        train_set=train_set,
        test_set=test_set,
        confusion=confusion,
        rules=rules,
    )
