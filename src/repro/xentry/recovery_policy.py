"""Recovery policies: the bounded escalation ladder behind ``--recover``.

The paper *assumes* a recovery scheme and prices it (Section VI); ReHype
(PAPERS.md) shows what a real one looks like: micro-reboot the hypervisor on
failure while preserving VM state, and report survival.  This module turns
detection into measured survival — a :class:`RecoveryPolicy` escalates from
the paper's per-activation restore-and-re-execute to whole-machine recovery:

* ``REEXECUTE`` — the Section VI scheme: restore the per-VM-exit critical
  copy (every layout slot), drop the transient, re-initiate the hypervisor
  execution.  Cheap, but blind to corruption outside the critical copy.
* ``MICROREBOOT`` — ReHype-style: restore the nearest golden-prefix
  :class:`~repro.hypervisor.xen.MachineCheckpoint` rung *before* the fault
  fired (rungs past the injection are untrusted) and replay the activation's
  suffix.  Whole-machine state rolls back, guest-visible state stays live in
  the checkpoint, and the replay is bit-identical to the golden run.
* ``QUARANTINE_VM`` — squash the poisoned activation: roll back to the
  pre-activation state, skip the activation, and quarantine the domain.  The
  machine survives; the activation's effects are sacrificed.
* ``UNRECOVERABLE`` — every rung's budget is exhausted; the trial is
  declared lost (the machine is still left at a sane pre-activation state).

Determinism contract: recovery decisions are pure in ``(seed, trial,
attempt)`` — the only randomness is the optional *hazard* model (a second
soft error striking during recovery), drawn from a dedicated
``(seed, "recovery", benchmark, mode, group, trial, attempt)`` stream, so
campaigns stay bit-reproducible across reruns, shard layouts, and the
twin-batch fast path.

Divergence measurement: after every attempt the post-recovery hypervisor
heap is diffed word-by-word against the golden post-activation image
(:meth:`~repro.machine.memory.Memory.diff_region`) and the guest-visible
output words against the golden outputs; an attempt only counts as
*recovered* when both diffs are empty.  Records carry short state digests so
zero-divergence claims are checkable offline.
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter
from dataclasses import dataclass

from repro import rng as rng_mod
from repro.errors import CampaignConfigError, SimulationLimitExceeded
from repro.faults.outcomes import FaultSpec, RecoveryRecord
from repro.machine.exceptions import AssertionViolation, HardwareException

__all__ = [
    "RecoveryAction",
    "RecoveryPolicy",
    "RecoveryExecutor",
    "LADDER_POLICY",
    "MICROREBOOT_POLICY",
    "REEXECUTE_POLICY",
    "POLICIES",
    "policy_from_name",
]


class RecoveryAction(enum.Enum):
    """One rung of the escalation ladder."""

    REEXECUTE = "reexecute"
    MICROREBOOT = "microreboot"
    QUARANTINE_VM = "quarantine_vm"
    UNRECOVERABLE = "unrecoverable"


@dataclass(frozen=True)
class RecoveryPolicy:
    """A bounded escalation ladder: ``(action, retry budget)`` rungs in order.

    Each rung's budget bounds how many attempts that action gets before the
    policy escalates to the next rung; a policy that exhausts every rung
    declares the trial ``UNRECOVERABLE``.
    """

    name: str
    rungs: tuple[tuple[RecoveryAction, int], ...]

    def __post_init__(self) -> None:
        if not self.rungs:
            raise CampaignConfigError(f"policy {self.name!r} needs at least one rung")
        for action, budget in self.rungs:
            if action is RecoveryAction.UNRECOVERABLE:
                raise CampaignConfigError("UNRECOVERABLE is an outcome, not a rung")
            if budget < 1:
                raise CampaignConfigError(
                    f"policy {self.name!r}: rung {action.value} budget must be >= 1"
                )

    def escalation(self) -> tuple[RecoveryAction, ...]:
        """The flattened attempt sequence (each rung repeated by its budget)."""
        return tuple(
            action for action, budget in self.rungs for _ in range(budget)
        )


#: The paper's Section VI scheme alone: restore the critical copy and
#: re-execute, twice, then give up.
REEXECUTE_POLICY = RecoveryPolicy(
    "reexecute", ((RecoveryAction.REEXECUTE, 2),)
)

#: ReHype-style whole-machine recovery alone.
MICROREBOOT_POLICY = RecoveryPolicy(
    "microreboot", ((RecoveryAction.MICROREBOOT, 2),)
)

#: The full ladder: cheap re-execution first, micro-reboot when the critical
#: copy was not enough, quarantine as the terminal fallback.
LADDER_POLICY = RecoveryPolicy(
    "ladder",
    (
        (RecoveryAction.REEXECUTE, 1),
        (RecoveryAction.MICROREBOOT, 2),
        (RecoveryAction.QUARANTINE_VM, 1),
    ),
)

POLICIES: dict[str, RecoveryPolicy] = {
    p.name: p for p in (REEXECUTE_POLICY, MICROREBOOT_POLICY, LADDER_POLICY)
}


def policy_from_name(name: str) -> RecoveryPolicy:
    """Resolve a policy by CLI name."""
    try:
        return POLICIES[name]
    except KeyError:
        raise CampaignConfigError(
            f"unknown recovery policy {name!r} (have: {', '.join(sorted(POLICIES))})"
        ) from None


def _digest(heap_image: bytes, outputs: dict[int, int]) -> str:
    """Short, stable digest of one post-activation state (heap + outputs)."""
    h = hashlib.blake2b(heap_image, digest_size=8)
    for addr in sorted(outputs):
        h.update(addr.to_bytes(8, "little"))
        h.update((outputs[addr] & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "little"))
    return h.hexdigest()


@dataclass(frozen=True)
class _Attempt:
    """One ladder rung's execution outcome (before the golden-state check)."""

    completed: bool          # the recovery execution reached VM entry
    retired: int             # instructions retired inside this attempt
    detail: str


class RecoveryExecutor:
    """Runs one policy's ladder against the detected trials of a campaign.

    Lifecycle (driven by :func:`repro.faults.campaign.run_benchmark_groups`):
    ``arm`` once per benchmark with the aged pre-run critical snapshot, then
    ``begin_group`` per golden group, then :meth:`recover` for every detected
    trial record.  Every attempt restores machine state itself, so recovery
    never perturbs the following trial — campaigns with recovery on remain
    bit-identical between the twin-batch and per-trial execution paths.
    """

    def __init__(
        self,
        hv,
        policy: RecoveryPolicy,
        *,
        seed: int = 0,
        benchmark: str = "",
        mode: str = "",
        fault_model=None,
        hazard_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= hazard_rate < 1.0:
            raise CampaignConfigError("hazard_rate must be in [0, 1)")
        self.hv = hv
        self.policy = policy
        self.seed = seed
        self.benchmark = benchmark
        self.mode = mode
        self.fault_model = fault_model
        self.hazard_rate = hazard_rate
        # The per-VM-exit redundant copy of the Section VI scheme covers
        # every layout slot (domain/VCPU structures + hypervisor control).
        self._critical_slots = tuple(hv.layout.all_slots.values())
        self._critical: dict[int, int] | None = None
        self._group: int = -1
        self._activation = None
        self._golden = None
        self._golden_digest = ""
        self.quarantined_domains: set[int] = set()
        self.stats: Counter = Counter()

    # -- lifecycle -------------------------------------------------------------

    def snapshot_critical(self) -> dict[int, int]:
        """Copy every critical word (call with the pre-run state live)."""
        memory = self.hv.memory
        snapshot: dict[int, int] = {}
        for slot in self._critical_slots:
            for w in range(slot.words):
                addr = slot.word_address(w)
                snapshot[addr] = memory.read_u64(addr)
        return snapshot

    def arm(self, critical: dict[int, int] | None = None) -> None:
        """Install the per-VM-exit critical copy (defaults to a fresh one)."""
        self._critical = critical if critical is not None else self.snapshot_critical()

    def begin_group(self, group: int, activation, golden) -> None:
        """Bind one golden group's artifacts (activation, golden run, rung ladder)."""
        self._group = group
        self._activation = activation
        self._golden = golden
        self._golden_digest = _digest(golden.heap_image, golden.outputs)

    # -- the ladder ------------------------------------------------------------

    def recover(self, record, index: int) -> RecoveryRecord:
        """Run the escalation ladder for one detected trial.

        ``index`` is the trial's position within its golden group — together
        with the group it identifies the trial for the hazard RNG stream.
        """
        if self._golden is None or self._critical is None:
            raise CampaignConfigError("executor not armed (arm + begin_group first)")
        golden = self._golden
        attempts = 0
        downtime = 0
        recovered = False
        action_taken = RecoveryAction.UNRECOVERABLE
        detail = ""
        measurement: tuple[int, int, str] | None = None
        for action in self.policy.escalation():
            attempts += 1
            hazard = self._hazard_fault(index, attempts)
            if action is RecoveryAction.QUARANTINE_VM:
                attempt = self._quarantine()
                measurement = self._measure()
                action_taken = action
                detail = attempt.detail
                break
            if action is RecoveryAction.REEXECUTE:
                attempt = self._reexecute(hazard)
            else:
                attempt = self._microreboot(record.fault, hazard)
            downtime += attempt.retired
            if not attempt.completed:
                detail = attempt.detail
                continue
            measurement = self._measure()
            divergent_words, outputs_divergent, _ = measurement
            if divergent_words == 0 and outputs_divergent == 0:
                recovered = True
                action_taken = action
                detail = attempt.detail
                break
            detail = f"{attempt.detail}; {divergent_words} heap words still divergent"
        else:
            # Ladder exhausted: leave a sane pre-activation machine behind.
            self.hv.restore(golden.checkpoint)
            self.hv.cpu.clear_injection()
            measurement = self._measure()
        if measurement is None:  # no attempt completed; machine reset above
            measurement = self._measure()
        divergent_words, outputs_divergent, digest = measurement
        self.stats["trials"] += 1
        self.stats[f"action:{action_taken.value}"] += 1
        if recovered:
            self.stats["recovered"] += 1
        self.stats["attempts"] += attempts
        self.stats["downtime_instructions"] += downtime
        return RecoveryRecord(
            policy=self.policy.name,
            action=action_taken.value,
            recovered=recovered,
            attempts=attempts,
            downtime_instructions=downtime,
            divergent_words=divergent_words,
            outputs_divergent=outputs_divergent,
            state_digest=digest,
            golden_digest=self._golden_digest,
            detail=detail,
        )

    # -- rungs -----------------------------------------------------------------

    def _restore_critical(self) -> None:
        memory = self.hv.memory
        for addr, value in self._critical.items():
            memory.write_u64(addr, value)

    def _reexecute(self, hazard: FaultSpec | None) -> _Attempt:
        """Section VI: restore the critical copy and re-initiate the handler."""
        hv = self.hv
        self._restore_critical()
        hv.cpu.clear_injection()
        if hazard is not None:
            hv.cpu.schedule_register_flip(hazard.dynamic_index, hazard.register, hazard.bit)
        try:
            result = hv.execute(self._activation)
        except HardwareException as exc:
            return _Attempt(False, hv.cpu.tracer.count, f"re-execution died: {exc.vector.name}")
        except AssertionViolation as exc:
            return _Attempt(
                False, hv.cpu.tracer.count, f"re-execution assertion {exc.assertion_id}"
            )
        except SimulationLimitExceeded:
            return _Attempt(False, hv.cpu.tracer.count, "re-execution hung (watchdog NMI)")
        return _Attempt(True, result.instructions, "re-executed from critical copy")

    def _microreboot(self, fault, hazard: FaultSpec | None) -> _Attempt:
        """ReHype: roll the whole machine back to the nearest golden-prefix
        rung *before* the fault fired and replay the activation's suffix."""
        hv = self.hv
        golden = self._golden
        rung = None
        for candidate in golden.ladder:  # ascending by index
            if candidate.index > fault.dynamic_index:
                break
            rung = candidate
        base = 0
        try:
            if rung is not None:
                hv.restore_machine(rung)
                hv.cpu.clear_injection()
                base = rung.index
                if hazard is not None and hazard.dynamic_index >= rung.index:
                    hv.cpu.schedule_register_flip(
                        hazard.dynamic_index, hazard.register, hazard.bit
                    )
                result = hv.resume_execution(self._activation)
            else:
                # No ladder: whole-activation replay from the pre-run state.
                hv.restore(golden.checkpoint)
                hv.cpu.clear_injection()
                if hazard is not None:
                    hv.cpu.schedule_register_flip(
                        hazard.dynamic_index, hazard.register, hazard.bit
                    )
                result = hv.execute(self._activation)
        except HardwareException as exc:
            return _Attempt(
                False, hv.cpu.tracer.count - base, f"micro-reboot died: {exc.vector.name}"
            )
        except AssertionViolation as exc:
            return _Attempt(
                False,
                hv.cpu.tracer.count - base,
                f"micro-reboot assertion {exc.assertion_id}",
            )
        except SimulationLimitExceeded:
            return _Attempt(
                False, hv.cpu.tracer.count - base, "micro-reboot hung (watchdog NMI)"
            )
        return _Attempt(
            True,
            result.instructions - base,
            f"micro-rebooted from rung @{base}",
        )

    def _quarantine(self) -> _Attempt:
        """Squash the activation: pre-activation rollback + domain quarantine."""
        hv = self.hv
        hv.restore(self._golden.checkpoint)
        hv.cpu.clear_injection()
        domain_id = self._activation.domain_id
        self.quarantined_domains.add(domain_id)
        return _Attempt(
            True, 0, f"domain {domain_id} quarantined; activation squashed"
        )

    # -- measurement -----------------------------------------------------------

    def _measure(self) -> tuple[int, int, str]:
        """Diff the live post-recovery state against the golden image."""
        hv = self.hv
        golden = self._golden
        heap = hv.memory.region("hypervisor_heap")
        divergent_words = len(hv.memory.diff_region(heap, golden.heap_image))
        outputs_now = hv.read_outputs(self._activation)
        outputs_divergent = sum(
            1 for addr, value in golden.outputs.items() if outputs_now[addr] != value
        )
        digest = _digest(hv.memory.snapshot_region(heap), outputs_now)
        return divergent_words, outputs_divergent, digest

    # -- hazard model ----------------------------------------------------------

    def _hazard_fault(self, index: int, attempt: int) -> FaultSpec | None:
        """A second soft error striking *during* recovery, pure in
        ``(seed, trial, attempt)`` — the knob tests use to exercise the
        ladder's escalation deterministically.  Off by default."""
        if self.hazard_rate <= 0.0 or self.fault_model is None:
            return None
        rng = rng_mod.stream(
            self.seed, "recovery", self.benchmark, self.mode,
            self._group, index, attempt,
        )
        if float(rng.random()) >= self.hazard_rate:
            return None
        return self.fault_model.sample(rng, self._golden.result.instructions)
