"""Runtime detection: fatal hardware exceptions and software assertions.

Section III.A: runtime detection "utilizes fatal hardware exceptions to
monitor fatal system corruptions, and utilizes software assertions to monitor
data corruptions".  Exceptions must be *parsed* first — "some exceptions are
legal in correct executions" — which is what
:func:`repro.machine.exceptions.classify_exception` implements; this module
wraps that parsing into detection events and keeps running statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.outcomes import DetectionTechnique
from repro.machine.exceptions import (
    AssertionViolation,
    HardwareException,
    classify_exception,
)

__all__ = ["DetectionEvent", "RuntimeDetector"]


@dataclass(frozen=True)
class DetectionEvent:
    """One positive detection raised by any Xentry technique."""

    technique: DetectionTechnique
    vmer: int
    detail: str
    #: Dynamic instruction count at detection (since VM exit); latency from
    #: activation is only known in campaigns where the injection is visible.
    at_instruction: int = 0


@dataclass
class RuntimeDetector:
    """Parses architectural events into detections, with statistics."""

    events: list[DetectionEvent] = field(default_factory=list)
    exceptions_seen: int = 0
    exceptions_benign: int = 0
    assertions_failed: int = 0

    def on_hardware_exception(
        self, exc: HardwareException, *, vmer: int, at_instruction: int = 0
    ) -> DetectionEvent | None:
        """Parse a hardware exception; fatal ones become detections."""
        self.exceptions_seen += 1
        verdict = classify_exception(exc)
        if not verdict.fatal:
            self.exceptions_benign += 1
            return None
        event = DetectionEvent(
            technique=DetectionTechnique.HW_EXCEPTION,
            vmer=vmer,
            detail=f"{exc.vector.name}: {verdict.reason}",
            at_instruction=at_instruction,
        )
        self.events.append(event)
        return event

    def on_assertion_violation(
        self, violation: AssertionViolation, *, vmer: int, at_instruction: int = 0
    ) -> DetectionEvent:
        """A failed assertion is always a detection: error-free executions
        never trigger the planted predicates."""
        self.assertions_failed += 1
        event = DetectionEvent(
            technique=DetectionTechnique.SW_ASSERTION,
            vmer=vmer,
            detail=f"assertion {violation.assertion_id!r} "
                   f"(observed {violation.observed:#x})",
            at_instruction=at_instruction,
        )
        self.events.append(event)
        return event

    @property
    def detections(self) -> int:
        return len(self.events)
