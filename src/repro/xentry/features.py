"""Feature collection for VM transition detection (Table I).

Five features characterize one hypervisor execution: the VM exit reason and
four performance-counter deltas collected between VM exit and VM entry —
retired instructions, retired branches, memory loads and memory stores.
"Note that these selected features do not explicitly represent control flow,
but they implicitly capture the patterns of control flow from instruction
patterns and memory access patterns."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.xen import ActivationResult
from repro.machine.perfcounters import CounterSample
from repro.ml.dataset import FEATURE_NAMES

__all__ = ["FEATURE_NAMES", "FeatureVector"]


@dataclass(frozen=True)
class FeatureVector:
    """One (VMER, RT, BR, RM, WM) sample."""

    vmer: int
    instructions: int
    branches: int
    loads: int
    stores: int

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.vmer, self.instructions, self.branches, self.loads, self.stores)

    @classmethod
    def from_sample(cls, vmer: int, sample: CounterSample) -> "FeatureVector":
        """Build from a raw counter collection window."""
        return cls(
            vmer=vmer,
            instructions=sample.instructions,
            branches=sample.branches,
            loads=sample.loads,
            stores=sample.stores,
        )

    @classmethod
    def from_result(cls, result: ActivationResult) -> "FeatureVector":
        """Build from a finished activation."""
        return cls(*result.features)

    def __str__(self) -> str:
        return (
            f"VMER={self.vmer} RT={self.instructions} BR={self.branches} "
            f"RM={self.loads} WM={self.stores}"
        )
