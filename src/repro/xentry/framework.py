"""The Xentry framework: both detection techniques wired around the hypervisor.

This is the deployment-facing facade of Fig. 4: Xentry "intercepts all VM
exits to prepare for data collection by instructing performance counters, and
then allows original hypervisor execution to continue.  It enables VM
transition detection at every VM entry."  Runtime detection (fatal-exception
parsing + assertion monitoring) is always on while the system runs.

:meth:`Xentry.protect` executes one activation under full protection and
reports what happened — the API a recovery layer (e.g. ReHype-style
re-initialization) would consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SimulationLimitExceeded
from repro.faults.outcomes import DetectionTechnique
from repro.hypervisor.xen import Activation, ActivationResult, XenHypervisor
from repro.machine.exceptions import AssertionViolation, HardwareException
from repro.xentry.features import FeatureVector
from repro.xentry.runtime import DetectionEvent, RuntimeDetector
from repro.xentry.transition import VMTransitionDetector

__all__ = ["ProtectionVerdict", "ProtectedOutcome", "Xentry"]


class ProtectionVerdict(enum.Enum):
    """What Xentry concluded about one activation."""

    CLEAN = "clean"                  # VM entry permitted
    DETECTED = "detected"            # a technique flagged the execution
    HUNG = "hung"                    # watchdog budget exhausted


@dataclass(frozen=True)
class ProtectedOutcome:
    """Result of executing one activation under Xentry protection."""

    verdict: ProtectionVerdict
    detection: DetectionEvent | None
    result: ActivationResult | None     # None when execution died early
    features: FeatureVector | None

    @property
    def vm_entry_permitted(self) -> bool:
        """True when the guest may resume (no detection before VM entry)."""
        return self.verdict is ProtectionVerdict.CLEAN


class Xentry:
    """The sentry: intercepts every VM transition of one hypervisor.

    ``transition_detector`` is optional — without it Xentry degrades to
    runtime detection only, the configuration measured separately in Fig. 7.
    """

    def __init__(
        self,
        hypervisor: XenHypervisor,
        *,
        transition_detector: VMTransitionDetector | None = None,
    ) -> None:
        self.hv = hypervisor
        self.runtime = RuntimeDetector()
        self.transition = transition_detector
        self.activations_protected = 0
        self.detections: list[DetectionEvent] = []

    def protect(self, activation: Activation) -> ProtectedOutcome:
        """Execute ``activation`` with both detection techniques armed."""
        self.activations_protected += 1
        try:
            result = self.hv.execute(activation)
        except HardwareException as exc:
            event = self.runtime.on_hardware_exception(
                exc, vmer=activation.vmer, at_instruction=self.hv.cpu.tracer.count
            )
            if event is None:
                # Benign exception: on real hardware the handler services it
                # and execution continues; our simulation conservatively ends
                # the activation, so report it clean but without features.
                return ProtectedOutcome(ProtectionVerdict.CLEAN, None, None, None)
            self.detections.append(event)
            return ProtectedOutcome(ProtectionVerdict.DETECTED, event, None, None)
        except AssertionViolation as violation:
            event = self.runtime.on_assertion_violation(
                violation, vmer=activation.vmer,
                at_instruction=self.hv.cpu.tracer.count,
            )
            self.detections.append(event)
            return ProtectedOutcome(ProtectionVerdict.DETECTED, event, None, None)
        except SimulationLimitExceeded:
            return ProtectedOutcome(ProtectionVerdict.HUNG, None, None, None)

        features = FeatureVector.from_result(result)
        if self.transition is not None and self.transition.flags_incorrect(
            features.as_tuple()
        ):
            event = DetectionEvent(
                technique=DetectionTechnique.VM_TRANSITION,
                vmer=activation.vmer,
                detail=f"transition classifier flagged [{features}]",
                at_instruction=result.instructions,
            )
            self.detections.append(event)
            return ProtectedOutcome(ProtectionVerdict.DETECTED, event, result, features)
        return ProtectedOutcome(ProtectionVerdict.CLEAN, None, result, features)

    # -- statistics -------------------------------------------------------------

    def detection_counts(self) -> dict[DetectionTechnique, int]:
        counts = {t: 0 for t in DetectionTechnique if t is not DetectionTechnique.UNDETECTED}
        for event in self.detections:
            counts[event.technique] += 1
        return counts
