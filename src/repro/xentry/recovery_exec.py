"""A working implementation of the Section VI recovery scheme.

The paper *assumes* a light-weight recovery mechanism and estimates its cost:
"the recovery techniques will preserve the critical hypervisor data (e.g.
VCPU and domain information) and the VM exit reason by making a redundant
copy at every VM exit.  If there is a positive detection (correct or false),
these critical data and the VM exit reason will be restored and the
hypervisor execution is re-initiated."

:class:`RecoveryManager` implements exactly that on the simulated platform:

* at every VM exit it snapshots the critical state (all domain/VCPU
  structures plus the hypervisor control slots — the data the paper measured
  at ~1,900 ns to copy);
* on any positive detection it restores the snapshot and re-executes the
  activation once;
* a *false* positive therefore converges to the original fault-free result
  (re-execution is deterministic), and a *true* positive whose fault was
  transient (one bit flip, not re-injected) produces the correct execution —
  the fault never reaches the guest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationLimitExceeded
from repro.hypervisor.xen import Activation, ActivationResult
from repro.machine.exceptions import AssertionViolation, HardwareException
from repro.xentry.framework import ProtectionVerdict, Xentry

__all__ = ["RecoveryOutcome", "RecoveryManager"]


@dataclass(frozen=True)
class RecoveryOutcome:
    """What happened to one activation under protect-and-recover."""

    detected: bool
    recovered: bool
    #: Result of the execution the guest actually observes (the re-executed
    #: one when recovery ran); None when even re-execution failed.
    result: ActivationResult | None
    detail: str = ""
    #: Re-executions spent (0 for a clean activation; every attempt counts,
    #: including ones that themselves died with an exception).
    attempts: int = 0


@dataclass
class RecoveryManager:
    """Copy-at-exit / restore-and-re-execute recovery around Xentry."""

    xentry: Xentry
    max_reexecutions: int = 1
    exits_protected: int = 0
    recoveries: int = 0
    unrecoverable: int = 0
    _critical_slots: tuple = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        layout = self.xentry.hv.layout
        # "Critical hypervisor data (e.g. VCPU and domain information) and
        # the VM exit reason" — plus bookkeeping, so that re-execution is
        # bit-identical to a fault-free first attempt.  (Scratch buffers are
        # cheap; what matters for correctness is that nothing the handler
        # reads can differ between the attempts.)
        self._critical_slots = tuple(layout.all_slots.values())

    # -- the copy the paper prices at ~1,900 ns --------------------------------

    def snapshot_critical(self) -> dict[int, int]:
        """Copy every critical word (the per-VM-exit redundant copy)."""
        memory = self.xentry.hv.memory
        snapshot: dict[int, int] = {}
        for slot in self._critical_slots:
            for w in range(slot.words):
                addr = slot.word_address(w)
                snapshot[addr] = memory.read_u64(addr)
        return snapshot

    def restore_critical(self, snapshot: dict[int, int]) -> None:
        memory = self.xentry.hv.memory
        for addr, value in snapshot.items():
            memory.write_u64(addr, value)

    # -- protect + recover ------------------------------------------------------

    def protect(self, activation: Activation) -> RecoveryOutcome:
        """Execute one activation; on any positive detection, restore the
        critical copy and re-execute."""
        self.exits_protected += 1
        snapshot = self.snapshot_critical()
        outcome = self.xentry.protect(activation)
        if outcome.verdict is ProtectionVerdict.CLEAN:
            return RecoveryOutcome(
                detected=False, recovered=False, result=outcome.result
            )
        # Positive detection (runtime or transition, correct or false):
        # restore and re-initiate the hypervisor execution.
        detail = outcome.detection.detail if outcome.detection else "hang"
        attempts = 0
        for _attempt in range(self.max_reexecutions):
            self.restore_critical(snapshot)
            # The transient fault is not re-injected (soft errors do not
            # repeat); a still-armed injection would model a permanent fault.
            self.xentry.hv.cpu.clear_injection()
            attempts += 1
            try:
                result = self.xentry.hv.execute(activation)
            except (HardwareException, AssertionViolation, SimulationLimitExceeded):
                continue  # corrupted beyond this scheme's reach (e.g. a
                # persistent fault the injector re-arms every execution)
            self.recoveries += 1
            return RecoveryOutcome(
                detected=True, recovered=True, result=result,
                detail=f"recovered after: {detail}", attempts=attempts,
            )
        # Every re-execution died too.  Leave the machine in a sane state —
        # critical slots restored, nothing armed — so the caller can keep
        # using the hypervisor (quarantine, next activation, ...) instead of
        # inheriting whatever the last failed attempt corrupted.
        self.restore_critical(snapshot)
        self.xentry.hv.cpu.clear_injection()
        self.unrecoverable += 1
        return RecoveryOutcome(
            detected=True, recovered=False, result=None,
            detail=f"re-execution failed after: {detail}", attempts=attempts,
        )
