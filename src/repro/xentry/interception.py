"""VM-exit interception shim and its cost accounting.

Section IV: Xentry "functions as an interface between the hypervisor and
other domains ... It intercepts all VM exits to prepare for data collection by
instructing performance counters, and then allows original hypervisor
execution to continue" — conceptually a *shim*.

Two things live here:

* :class:`ShimInterceptor` — a :class:`~repro.hypervisor.xen.TransitionInterceptor`
  that plugs into ``XenHypervisor.execute`` and counts/timestamps every
  interception (what the shim observes in deployment);
* :class:`DetectionCostModel` — the nanosecond cost of one interception
  (program counters at exit, read them at entry, walk the compiled rules),
  which is the per-activation term of the Fig. 7 overhead study.  Constants
  reflect MSR-access latencies on the paper's Xeon E5506-class hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypervisor.xen import Activation, ActivationResult, XenHypervisor
from repro.xentry.features import FeatureVector

__all__ = ["DetectionCostModel", "ShimInterceptor"]


@dataclass(frozen=True)
class DetectionCostModel:
    """Per-activation detection cost in nanoseconds.

    * arming four performance counters at VM exit costs four WRMSRs;
    * collecting at VM entry costs four RDMSRs plus the disable write;
    * the transition classifier walks ``depth`` integer comparisons;
    * runtime detection adds a handful of inlined assertion predicates.
    """

    wrmsr_ns: float = 28.0
    rdmsr_ns: float = 18.0
    comparison_ns: float = 1.2
    assertion_ns: float = 2.0

    @property
    def counter_arm_ns(self) -> float:
        """Programming 4 event-select MSRs at VM exit."""
        return 4 * self.wrmsr_ns

    @property
    def counter_collect_ns(self) -> float:
        """Reading 4 counters and disabling them at VM entry."""
        return 4 * self.rdmsr_ns + self.wrmsr_ns

    def transition_ns(self, tree_comparisons: float) -> float:
        """Full VM-transition detection cost for one activation."""
        return self.counter_arm_ns + self.counter_collect_ns + tree_comparisons * self.comparison_ns

    def runtime_ns(self, assertion_checks: float) -> float:
        """Runtime-detection (assertions only) cost for one activation."""
        return assertion_checks * self.assertion_ns

    def per_activation_ns(
        self,
        *,
        tree_comparisons: float,
        assertion_checks: float,
        transition_enabled: bool = True,
    ) -> float:
        cost = self.runtime_ns(assertion_checks)
        if transition_enabled:
            cost += self.transition_ns(tree_comparisons)
        return cost


@dataclass
class ShimInterceptor:
    """Counts interceptions and accumulates modeled detection time.

    Plug into ``XenHypervisor.execute(activation, interceptor=shim)``; after a
    run, ``modeled_ns`` is the total detection time the shim would have added
    on real hardware.
    """

    cost_model: DetectionCostModel = field(default_factory=DetectionCostModel)
    transition_enabled: bool = True
    tree_comparisons: float = 8.0  # refined by the deployed detector's stats
    vm_exits: int = 0
    vm_entries: int = 0
    modeled_ns: float = 0.0
    last_features: FeatureVector | None = None

    def on_vm_exit(self, hypervisor: XenHypervisor, activation: Activation) -> None:
        self.vm_exits += 1
        if self.transition_enabled:
            self.modeled_ns += self.cost_model.counter_arm_ns

    def on_vm_entry(
        self,
        hypervisor: XenHypervisor,
        activation: Activation,
        result: ActivationResult,
    ) -> None:
        self.vm_entries += 1
        self.last_features = FeatureVector.from_result(result)
        if self.transition_enabled:
            self.modeled_ns += (
                self.cost_model.counter_collect_ns
                + self.tree_comparisons * self.cost_model.comparison_ns
            )
