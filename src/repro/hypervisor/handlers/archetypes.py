"""Handler archetypes: parameterized emitters for hypervisor entry points.

Xen's ~70 entry points fall into a dozen behavioural families (acknowledge an
interrupt, update a descriptor table, copy a batch from the guest, set an
event channel pending, switch VCPU context, deliver time, emulate a privileged
instruction, ...).  Each family is one *archetype emitter* here; the registry
instantiates it per exit reason with distinct parameters (loop scales, flavor
constants, output slots) so every VMER has its own characteristic dynamic
footprint — the property the VM-transition classifier learns.

Archetypes deliberately reproduce the paper's fault surfaces:

* ``rep movs`` bulk copies with a validated count register (Fig. 5a),
* the event-channel ``test``/``je``/``vcpu_mark_events_pending`` path
  (Fig. 5b),
* Listing 1-style bounded-value assertions on trap numbers,
* Listing 2-style state-invariant assertions on the idle path,
* straight-line ``rdtsc`` time delivery (the Table II "time values" bucket),
* push/pop context save/restore through the stack (the "stack values" bucket).

Register conventions (see :mod:`repro.hypervisor.image`): args in
``rdi, rsi, rdx, r8, r9``; ``rbp`` = globals base; ``r12`` = current domain
block; ``r13`` = current VCPU block; handlers end in ``vmentry``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hypervisor.image import ImageBuilder
from repro.hypervisor.vmexit import ExitReason

__all__ = ["Archetype", "OutputRef", "HandlerParams", "emit_handler", "ASSERTION_IDS"]

# Globals word indices (control state; see image.py's conventions).
G_CURRENT_DOM = 0
G_TIME_CALIB = 1
# Stats word indices (bookkeeping counters in the SCRATCH stats slot, which
# sits immediately after the globals slot; offsets are rbp-relative).
S_IRQ_ACKS = 0
S_SOFTIRQ_DISPATCH = 1
S_HYPERCALLS = 2
S_SCHED_SWITCHES = 3
S_EXCEPTIONS = 4
S_DEBUG_FLAGS = 5

#: Assertion identifiers planted by the archetypes (runtime detection).
ASSERTION_IDS: tuple[str, ...] = (
    "irq_vector_bound",       # Listing 1 flavor: vector within table bounds
    "trapno_bound",           # Listing 1 flavor: trap number within range
    "table_index_bound",      # descriptor index inside the table
    "evtchn_port_bound",      # event-channel port within bitmap range
    "irq_desc_valid",         # IRQ descriptor cookie within the wired range
    "vcpu_idle_invariant",    # Listing 2: VCPU must be idle before idling CPU
    "sched_pick_valid",       # scheduler picked a plausible cookie
    "mem_op_count_bound",     # batched memory-op count within limits
    "stack_redundancy",       # Section VI hardening: duplicated stack copies
    "time_variation",         # Section VI hardening: adjacent-rdtsc variation
)


class Archetype(enum.Enum):
    """Behavioural families of hypervisor entry points."""

    IRQ_ACK = "irq_ack"
    EXCEPTION_FIXUP = "exception_fixup"
    SOFTIRQ_DRAIN = "softirq_drain"
    TABLE_UPDATE = "table_update"
    MEMORY_OP = "memory_op"
    BULK_COPY = "bulk_copy"
    EVENT_OP = "event_op"
    SCHED_OP = "sched_op"
    TIME_OP = "time_op"
    INFO_QUERY = "info_query"
    EMULATE_CPUID = "emulate_cpuid"
    IO_EMULATE = "io_emulate"


class OutputRef(enum.Enum):
    """Guest-visible output locations a handler may write.

    Resolved to concrete addresses per (domain, vcpu) by the outcome layer;
    see :meth:`repro.hypervisor.xen.XenHypervisor.output_addresses`.
    """

    VCPU_REG0 = "vcpu_reg0"        # rax slot of the guest VCPU frame
    VCPU_REG1 = "vcpu_reg1"
    VCPU_REG2 = "vcpu_reg2"
    VCPU_REG3 = "vcpu_reg3"
    VCPU_PENDING = "vcpu_pending"
    VCPU_TRAPNO = "vcpu_trapno"
    VCPU_TIME = "vcpu_time"
    WALLCLOCK = "wallclock"
    EVTCHN_PENDING = "evtchn_pending"
    GRANT_FRAMES = "grant_frames"


@dataclass(frozen=True)
class HandlerParams:
    """Per-reason instantiation parameters for an archetype."""

    archetype: Archetype
    #: Scales internal loop lengths; distinct per reason for footprint variety.
    scale: int = 1
    #: Flavor constant mixed into computations so two same-archetype handlers
    #: produce different data (and slightly different branch mixes).
    flavor: int = 0
    #: Guest-visible outputs this handler writes.
    outputs: tuple[OutputRef, ...] = ()
    #: Whether software assertions are compiled in (Xentry runtime detection).
    with_assertions: bool = True
    #: Section VI hardening: duplicate context values through the stack and
    #: verify the copies on restore ("the values can be duplicated when they
    #: are pushed on to the stack, and verified when they are popped").
    stack_redundancy: bool = False
    #: Section VI hardening: check the variation between adjacent rdtsc reads
    #: when delivering time ("two adjacent rdtsc may have a small variation
    #: in their output values.  Checking this variation may help detect
    #: errors").
    time_variation_check: bool = False


def emit_handler(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Emit the handler for ``reason`` according to ``p``."""
    _EMITTERS[p.archetype](b, reason, p)


# ---------------------------------------------------------------------------
# helpers


def _prologue(b: ImageBuilder, label: str) -> None:
    """Label + frame save.  Saved registers travel through the stack — the
    surface the Table II "stack values" faults corrupt."""
    a = b.asm
    a.label(label)
    a.push("rbp")
    a.push("r12")
    a.push("r13")


def _epilogue(b: ImageBuilder, p: HandlerParams | None = None) -> None:
    """Frame restore + the per-entry time update every VM entry performs.

    Xen refreshes the VCPU's system-time info on the way back to the guest
    (``update_vcpu_system_time``), which is why corrupted time values are the
    dominant undetected-fault class (Table II): the delivery is branch-free
    straight-line data flow.  The delivered value is quantized (>> 7) so that
    small legitimate path-length differences don't register as corruption —
    only flips in the value itself, or large detours, change it.

    With ``time_variation_check`` hardening (the Section VI proposal), a
    second rdtsc brackets the delivered value: the difference between two
    adjacent reads has a tight legal bound, so a corrupted first read trips
    the variation assertion before the value reaches the guest.
    """
    a = b.asm
    a.rdtsc()
    a.shl("rdx", 32)
    a.or_("rax", "rdx")
    if p is not None and p.time_variation_check:
        a.mov("rbx", "rax")                    # delivery copy (t1)
        a.rdtsc()
        a.shl("rdx", 32)
        a.or_("rax", "rdx")                    # t2
        a.sub("rax", "rbx")                    # variation = t2 - t1
        a.assert_range("rax", 0, 64, "time_variation")
        a.shr("rbx", 7)
        a.store("r13", b.off_vcpu_time, "rbx")
    else:
        a.shr("rax", 7)
        a.store("r13", b.off_vcpu_time, "rax")
    a.pop("r13")
    a.pop("r12")
    a.pop("rbp")
    a.vmentry()


def _bump_counter(b: ImageBuilder, word_index: int) -> None:
    """Load-inc-store a stats counter (typical bookkeeping traffic)."""
    a = b.asm
    off = b.layout.stats.address - b.layout.globals_.address + word_index * 8
    a.load("rax", "rbp", off)
    a.inc("rax")
    a.store("rbp", off, "rax")


def _unique(label: str, suffix: str) -> str:
    return f"{label}.{suffix}"


def _stats_off(b: ImageBuilder, word_index: int) -> int:
    """rbp-relative offset of a stats-counter word."""
    return b.layout.stats.address - b.layout.globals_.address + word_index * 8


def _sanitize32(b: ImageBuilder, label: str, reg: str, tag: str) -> None:
    """Range-validate a 32-bit guest-bound result before publishing it.

    Real hypervisors sanity-check emulation results (cpuid/MSR outputs are
    architecturally 32-bit); a corrupted high half diverts through the
    sanitize path — which is how flips in the upper bits of guest-bound data
    become *control-flow-visible* to the transition detector.
    """
    a = b.asm
    ok = _unique(label, f"san_{tag}")
    a.cmp(reg, 0xFFFF_FFFF)
    a.jcc("be", ok)
    a.store("rbp", _stats_off(b, S_DEBUG_FLAGS), reg)  # log the anomaly
    a.and_(reg, 0xFFFF_FFFF)
    a.label(ok)


# ---------------------------------------------------------------------------
# archetype emitters


def _emit_irq_ack(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Acknowledge an interrupt, raise a softirq, note delivery on the VCPU.

    do_irq and the ten APIC handlers.  ``rdi`` = vector/IRQ number.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    if p.with_assertions:
        a.assert_range("rdi", 0, b.layout.irq_descs.words - 1, "irq_vector_bound")
    # Look up the IRQ descriptor (held in r11 across the counter bump).
    a.mov("r11", "rdi")
    a.shl("r11", 3)
    a.add("r11", b.layout.irq_descs.address)
    a.load("rbx", "r11")                      # descriptor cookie
    if p.with_assertions:
        # Wired descriptors are 0x100 + irq; anything else is corruption.
        a.assert_range("rbx", 0x100, 0x100 + b.layout.irq_descs.words - 1,
                       "irq_desc_valid")
    _bump_counter(b, S_IRQ_ACKS)
    # Mask, service, unmask: store desc | flavor bit, small delay loop, restore.
    a.mov("rcx", "rbx")
    a.or_("rcx", 1 << (8 + p.flavor % 8))
    a.store("r11", 0, "rcx")
    a.mov("rdx", p.scale * 4)
    loop = _unique(L, "delay")
    a.label(loop)
    a.dec("rdx")
    a.cmp("rdx", 0)
    a.jcc("g", loop)
    if p.with_assertions:
        # The cookie survived the service window unchanged?  (Listing 1
        # style: re-check the bounded value right before writing it back.)
        a.assert_range("rbx", 0x100, 0x100 + b.layout.irq_descs.words - 1,
                       "irq_desc_valid")
    a.store("r11", 0, "rbx")                  # restore descriptor
    # Raise the matching softirq bit.
    a.mov("rcx", "rdi")
    a.and_("rcx", 63)
    a.mov("rdx", 1)
    a.shl("rdx", "rcx")
    a.load("r10", "rbp", b.layout.softirq_bits.address - b.layout.globals_.address)
    a.or_("r10", "rdx")
    a.store("rbp", b.layout.softirq_bits.address - b.layout.globals_.address, "r10")
    # Note the pending vector on the current VCPU for delivery at VM entry —
    # re-checking the bound first, exactly the Listing 1 pattern ("clean up
    # pending exceptions, and put them to VCPUs ... ASSERT(trap <= LAST)").
    if p.with_assertions:
        a.assert_range("rdi", 0, b.layout.irq_descs.words - 1, "trapno_bound")
    a.store("r13", b.off_vcpu_trapno, "rdi")
    _epilogue(b, p)


def _emit_exception_fixup(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Exception handler: parse the frame, search the fixup chain, deliver.

    ``rdi`` = fault key selector, ``rsi`` = guest trap number to deliver.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_EXCEPTIONS)
    if p.with_assertions:
        a.assert_range("rsi", 0, 255, "trapno_bound")
    # Derive the fixup key from the selector (flavor-dependent hashing).
    a.mov("rax", "rdi")
    a.imul("rax", 4)
    a.and_("rax", 63)
    a.add("rax", 0x40)
    a.mov("rdi", "rax")
    a.call("sub.list_walk")
    # Found an entry before the chain end?  Then take the fixup path.
    n_pairs = b.layout.fixup_table.words // 2
    a.cmp("rax", n_pairs)
    fixup = _unique(L, "fixup")
    deliver = _unique(L, "deliver")
    a.jcc("b", fixup)
    # No fixup: deliver the trap to the guest (Listing 1: re-check the trap
    # number right before putting it to the VCPU).
    a.label(deliver)
    if p.with_assertions:
        a.assert_range("rsi", 0, 255, "trapno_bound")
    a.store("r13", b.off_vcpu_trapno, "rsi")
    _epilogue(b, p)
    # Fixup: record which entry fired, then deliver anyway.
    a.label(fixup)
    a.shl("rax", 1 + p.flavor % 2)
    a.store("rbp", _stats_off(b, S_DEBUG_FLAGS), "rax")
    a.jmp(deliver)


def _emit_softirq_drain(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Drain pending softirq/tasklet bits, servicing each with a short loop."""
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_SOFTIRQ_DISPATCH)
    bits_off = b.layout.softirq_bits.address - b.layout.globals_.address
    outer = _unique(L, "outer")
    service = _unique(L, "service")
    done = _unique(L, "done")
    a.mov("r8", 0)                       # drained count (bounds the loop)
    a.label(outer)
    a.cmp("r8", 16)                      # budget per invocation, as Xen's
    a.jcc("ae", done)                    # softirq loop bails after a batch
    a.lea("rdi", "rbp", bits_off)
    a.call("sub.bitmap_scan")
    a.cmp("rax", 64)
    a.jcc("ae", done)                    # nothing pending
    # Clear the bit.
    a.mov("rcx", "rax")
    a.mov("rdx", 1)
    a.shl("rdx", "rcx")
    a.load("r10", "rbp", bits_off)
    a.xor("r10", "rdx")
    a.store("rbp", bits_off, "r10")
    # Service routine: flavor-scaled compute loop over the scratch area.
    a.mov("rcx", (p.scale % 6) + 2)
    a.label(service)
    a.mov("rbx", "rax")
    a.imul("rbx", 0x9E37 + p.flavor)
    a.and_("rbx", (b.layout.scratch.words - 1) * 8)
    a.add("rbx", b.layout.scratch.address)
    a.load("r11", "rbx")
    a.add("r11", "rcx")
    a.store("rbx", 0, "r11")
    a.dec("rcx")
    a.cmp("rcx", 0)
    a.jcc("g", service)
    a.inc("r8")
    a.jmp(outer)
    a.label(done)
    _epilogue(b, p)


def _emit_table_update(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Validate and install guest-supplied descriptor entries.

    ``rdi`` = entry count, ``rsi`` = base selector.  set_trap_table, set_gdt,
    update_descriptor and friends.
    """
    a = b.asm
    L = reason.handler_label
    table = b.layout.trap_table
    req = b.layout.guest_request
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    # Validate the count: oversized batches are rejected outright (-EINVAL in
    # Xen), so the error path is only reachable through a corrupted count.
    ok = _unique(L, "count_ok")
    loop = _unique(L, "loop")
    skip = _unique(L, "skip")
    done = _unique(L, "done")
    a.cmp("rdi", table.words)
    a.jcc("be", ok)
    a.store("rbp", _stats_off(b, S_DEBUG_FLAGS), "rdi")  # log the bad request
    a.jmp(done)
    a.label(ok)
    a.mov("rcx", 0)
    a.label(loop)
    a.cmp("rcx", "rdi")
    a.jcc("ae", done)
    if p.with_assertions:
        a.assert_range("rcx", 0, table.words - 1, "table_index_bound")
    # Load the candidate entry from the request buffer.
    a.mov("rax", "rcx")
    a.shl("rax", 3)
    a.mov("rbx", "rax")
    a.add("rax", req.address)
    a.load("r10", "rax")
    # Entries failing the privilege check (flavor-dependent bit) are skipped.
    a.test("r10", 1 << (p.flavor % 4))
    a.jcc("ne", skip)
    a.add("rbx", table.address)
    a.xor("r10", "rsi")
    # Installed entries are 32-bit guest words xor a 3-bit selector: a high
    # half can only come from a corrupted register.  Validate before install.
    san = _unique(L, "entry_san")
    a.cmp("r10", 0xFFFF_FFFF)
    a.jcc("be", san)
    a.store("rbp", _stats_off(b, S_DEBUG_FLAGS), "r10")
    a.and_("r10", 0xFFFF_FFFF)
    a.label(san)
    a.store("rbx", 0, "r10")
    a.label(skip)
    a.inc("rcx")
    a.jmp(loop)
    a.label(done)
    _epilogue(b, p)


def _emit_memory_op(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Batched memory-management operation (mmu_update family).

    ``rdi`` = op count, ``rsi`` = op type selector.
    """
    a = b.asm
    L = reason.handler_label
    scratch = b.layout.scratch
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    if p.with_assertions:
        a.assert_range("rdi", 0, 63, "mem_op_count_bound")
    a.mov("rcx", 0)
    loop = _unique(L, "loop")
    pte = _unique(L, "pte")
    flushed = _unique(L, "flushed")
    done = _unique(L, "done")
    a.label(loop)
    a.cmp("rcx", "rdi")
    a.jcc("ae", done)
    # Two op kinds: PTE write vs TLB flush accounting (selected per entry).
    a.mov("rax", "rcx")
    a.add("rax", "rsi")
    a.test("rax", 1)
    a.jcc("ne", pte)
    _bump_counter(b, S_DEBUG_FLAGS)          # flush bookkeeping
    a.jmp(flushed)
    a.label(pte)
    # Synthesize a PTE: frame = (i * flavor_prime) masked, plus flag bits.
    a.mov("rbx", "rcx")
    a.imul("rbx", 0x1003 + 2 * p.flavor)
    a.and_("rbx", 0xFFFF)
    a.or_("rbx", 0x67)                        # present/rw/accessed bits
    a.mov("r10", "rcx")
    a.and_("r10", scratch.words - 1)
    a.shl("r10", 3)
    a.add("r10", scratch.address)
    a.store("r10", 0, "rbx")
    a.label(flushed)
    a.inc("rcx")
    a.jmp(loop)
    a.label(done)
    _epilogue(b, p)


def _emit_bulk_copy(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Copy a batch from the guest and process it entry by entry.

    ``rdi`` = word count.  grant_table_op / console_io / multicall family.
    The copy itself is the Fig. 5a ``rep movs`` with a counter register.
    """
    a = b.asm
    L = reason.handler_label
    dst = b.layout.console_ring if p.flavor % 2 else b.layout.scratch
    grant = b.layout.grant_table
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    a.mov("rcx", "rdi")
    a.mov("r8", "rdi")                        # keep the count for processing
    a.mov("rdi", dst.address)
    a.call("sub.copy_from_guest")
    loop = _unique(L, "loop")
    done = _unique(L, "done")
    rejected = _unique(L, "rejected")
    # A rejected copy (corrupted count) skips processing entirely.
    a.cmp("rax", 0)
    a.jcc("ne", rejected)
    # Process entries: fold each into the grant table (guest-visible for the
    # grant family via the per-domain grant_frames window).
    a.mov("rbx", 0)
    a.mov("rcx", 0)
    a.label(loop)
    a.cmp("rcx", "r8")
    a.jcc("ae", done)
    a.mov("rax", "rcx")
    a.shl("rax", 3)
    a.add("rax", dst.address)
    a.load("rbx", "rax")
    a.imul("rbx", 3 + p.flavor % 5)
    # Guest words are 32-bit; the folded entry must fit 36 bits — a larger
    # value is a corrupted register, diverted through the sanitize path.
    san = _unique(L, "san")
    a.cmp("rbx", (1 << 36) - 1)
    a.jcc("be", san)
    a.store("rbp", _stats_off(b, S_DEBUG_FLAGS), "rbx")
    a.and_("rbx", (1 << 36) - 1)
    a.label(san)
    # Processed entries land in the *current domain's* grant window — grant
    # entries are guest-owned mappings, so corruption here is guest-visible
    # application data, not hypervisor control state.
    a.mov("r10", "rcx")
    a.and_("r10", 15)                     # grant_frames is 16 words
    a.shl("r10", 3)
    a.add("r10", "r12")
    a.add("r10", b.off_grant)
    a.store("r10", 0, "rbx")
    a.inc("rcx")
    a.jmp(loop)
    a.label(done)
    # Account the batch in the global grant table (hypervisor bookkeeping).
    a.load("rax", "rbp", _stats_off(b, S_HYPERCALLS))
    a.and_("rax", grant.words - 1)
    a.shl("rax", 3)
    a.add("rax", grant.address)
    a.store("rax", 0, "r8")
    a.label(rejected)
    _epilogue(b, p)


def _emit_event_op(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Event-channel operation: send on one or more ports (Fig. 5b path).

    ``rdi`` = first port, ``rsi`` = extra port count.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    if p.with_assertions:
        a.assert_range("rdi", 0, 255, "evtchn_port_bound")
    a.mov("r8", "rdi")                        # current port
    a.mov("r9", "rsi")
    a.and_("r9", 7)                           # at most 8 sends
    a.inc("r9")
    loop = _unique(L, "loop")
    done = _unique(L, "done")
    a.label(loop)
    a.cmp("r9", 0)
    a.jcc("e", done)
    a.mov("rdi", "r8")
    a.and_("rdi", 255)
    a.call("sub.evtchn_set_pending")
    a.add("r8", 1 + p.flavor % 3)
    a.dec("r9")
    a.jmp(loop)
    a.label(done)
    _epilogue(b, p)


def _emit_sched_op(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Scheduling operation: save context, pick a VCPU, maybe idle the CPU.

    ``rdi`` = sub-op (0 = yield, 1 = block -> idle path).  Context travels
    through push/pop pairs into the VCPU save area — the Table II "stack
    values" fault surface.  The idle path carries the Listing 2 invariant.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_SCHED_SWITCHES)
    # Save a slice of guest context through the stack into the save area.
    a.load("rax", "r13", 0)            # guest rax
    a.load("rbx", "r13", 8)            # guest rbx
    a.load("rcx", "r13", 16)           # guest rcx
    if p.stack_redundancy:
        # Section VI hardening: push duplicated copies, verify on pop.
        for reg in ("rax", "rbx", "rcx"):
            a.push(reg)
            a.push(reg)
        for off in (16, 8, 0):
            a.pop("r10")
            a.pop("r11")
            a.assert_eq_reg("r10", "r11", "stack_redundancy")
            a.store("r13", b.off_vcpu_stack_save + off, "r10")
    else:
        a.push("rax")
        a.push("rbx")
        a.push("rcx")
        for off in (16, 8, 0):
            a.pop("r10")
            a.store("r13", b.off_vcpu_stack_save + off, "r10")
    # Pick the next VCPU.
    a.call("sub.sched_pick")
    if p.with_assertions:
        a.assert_range("rax", 0, 63, "sched_pick_valid")
    a.store("rbp", G_CURRENT_DOM * 8, "rax")
    # Idle path: blocking marks the VCPU idle, then idles the physical CPU —
    # but only after verifying the invariant (Listing 2).
    a.cmp("rdi", 1)
    not_idle = _unique(L, "not_idle")
    a.jcc("ne", not_idle)
    a.mov("r11", 0)                    # VCPU_MODE_IDLE
    a.store("r13", b.off_vcpu_mode, "r11")
    a.load("r11", "r13", b.off_vcpu_mode)
    if p.with_assertions:
        a.assert_eq("r11", 0, "vcpu_idle_invariant")
    _bump_counter(b, S_DEBUG_FLAGS)    # "cpu entered idle" bookkeeping
    a.mov("r11", 1)                    # model the wakeup that follows
    a.store("r13", b.off_vcpu_mode, "r11")
    a.label(not_idle)
    # Restore the saved context slice back into the VCPU frame.
    a.load("r10", "r13", b.off_vcpu_stack_save + 0)
    a.store("r13", 0, "r10")
    a.load("r10", "r13", b.off_vcpu_stack_save + 8)
    a.store("r13", 8, "r10")
    a.load("r10", "r13", b.off_vcpu_stack_save + 16)
    a.store("r13", 16, "r10")
    _epilogue(b, p)


def _emit_time_op(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Deliver system time to the guest (set_timer_op / time VCPUOPs).

    Branch-free delivery: rdtsc -> scale -> store into the VCPU time slot and
    the domain wallclock.  Corrupted time data changes no feature, which is
    exactly why 53% of the paper's undetected faults are time values.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    a.call("sub.get_time")
    a.add("rax", p.flavor)                       # per-source epsilon
    a.store("r13", b.off_vcpu_time, "rax")
    a.mov("rbx", "rax")
    a.shr("rbx", 30)
    a.store("r12", b.off_wallclock, "rbx")       # wc_sec
    a.mov("rcx", "rax")
    a.and_("rcx", (1 << 30) - 1)
    a.store("r12", b.off_wallclock + 8, "rcx")   # wc_nsec
    a.store("r13", b.off_vcpu_time + 8, "rdi")   # requested deadline
    # Insert the deadline into the timer heap (sift-up style walk).
    heap = b.layout.timer_heap
    a.mov("rcx", 0)
    loop = _unique(L, "heap_loop")
    done = _unique(L, "heap_done")
    a.label(loop)
    a.cmp("rcx", heap.words - 1)
    a.jcc("ae", done)
    a.mov("r10", "rcx")
    a.shl("r10", 3)
    a.add("r10", heap.address)
    a.load("r11", "r10")
    a.cmp("r11", "rdi")
    a.jcc("a", done)                             # found the insertion point
    a.inc("rcx")
    a.jmp(loop)
    a.label(done)
    a.store("r10", 0, "rdi")
    _epilogue(b, p)


def _emit_info_query(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Read-mostly query (xen_version / get_debugreg / sysctl family).

    ``rdi`` = query selector.  A compare chain dispatches to per-query loads;
    the result lands in the guest's rax slot (guest-visible app data).
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    q1 = _unique(L, "q1")
    q2 = _unique(L, "q2")
    q_default = _unique(L, "q_default")
    out = _unique(L, "out")
    a.mov("rax", "rdi")
    a.and_("rax", 3)
    a.cmp("rax", 0)
    a.jcc("e", q1)
    a.cmp("rax", 1)
    a.jcc("e", q2)
    a.jmp(q_default)
    a.label(q1)                                  # version-style constant
    a.mov("rbx", 0x0004_0001 + p.flavor)
    a.jmp(out)
    a.label(q2)                                  # table-backed value
    a.mov("rbx", "rdi")
    a.shr("rbx", 2)
    a.and_("rbx", b.layout.trap_table.words - 1)
    a.shl("rbx", 3)
    a.add("rbx", b.layout.trap_table.address)
    a.load("rbx", "rbx")
    a.jmp(out)
    a.label(q_default)                           # computed fallback
    a.mov("rbx", "rdi")
    a.imul("rbx", 0x101 + p.flavor)
    a.and_("rbx", 0xFFFF)
    a.label(out)
    _sanitize32(b, L, "rbx", "result")
    a.store("r13", 0, "rbx")                     # guest rax slot
    _epilogue(b, p)


def _emit_emulate_cpuid(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Trap-and-emulate cpuid: the Section II.A long-latency example.

    Reads the requested leaf from the guest's rax slot, runs the real cpuid,
    and writes eax..edx back into the VCPU frame.  A fault anywhere along
    this path corrupts values the guest will consume much later.
    """
    a = b.asm
    L = reason.handler_label
    _prologue(b, L)
    _bump_counter(b, S_EXCEPTIONS if p.flavor % 2 else S_HYPERCALLS)
    a.load("rax", "r13", 0)                      # requested leaf from guest rax
    a.and_("rax", 0xF)                           # canonicalize the leaf
    a.cpuid()
    _sanitize32(b, L, "rax", "eax")
    a.store("r13", 0, "rax")                     # eax
    a.store("r13", 8, "rbx")                     # ebx
    a.store("r13", 16, "rcx")                    # ecx
    _sanitize32(b, L, "rdx", "edx")
    a.store("r13", 24, "rdx")                    # edx
    # Advance the guest instruction pointer past the emulated instruction.
    a.load("r10", "r13", 15 * 8)                 # guest rip lives in slot 15
    a.add("r10", 2)                              # cpuid is two bytes
    a.store("r13", 15 * 8, "r10")
    _epilogue(b, p)


def _emit_io_emulate(b: ImageBuilder, reason: ExitReason, p: HandlerParams) -> None:
    """Emulate an I/O access (HVM io/msr/cr exits).

    ``rdi`` = port/msr selector, ``rsi`` = write value (writes when rdx=1).
    """
    a = b.asm
    L = reason.handler_label
    dev = b.layout.scratch
    _prologue(b, L)
    _bump_counter(b, S_HYPERCALLS)
    # Device register address = scratch[port % words].
    a.mov("rax", "rdi")
    a.and_("rax", dev.words - 1)
    a.shl("rax", 3)
    a.add("rax", dev.address)
    write = _unique(L, "write")
    done = _unique(L, "done")
    a.cmp("rdx", 1)
    a.jcc("e", write)
    # Read: fetch the device word, merge flavor ID bits, hand to the guest.
    a.load("rbx", "rax")
    a.or_("rbx", p.flavor << 24)
    _sanitize32(b, L, "rbx", "ioval")
    a.store("r13", 0, "rbx")                     # guest rax
    a.jmp(done)
    a.label(write)
    a.store("rax", 0, "rsi")
    a.label(done)
    # I/O completion raises a softirq for the device model.
    bits_off = b.layout.softirq_bits.address - b.layout.globals_.address
    a.load("r10", "rbp", bits_off)
    a.or_("r10", 1 << (p.flavor % 16))
    a.store("rbp", bits_off, "r10")
    _epilogue(b, p)


_EMITTERS = {
    Archetype.IRQ_ACK: _emit_irq_ack,
    Archetype.EXCEPTION_FIXUP: _emit_exception_fixup,
    Archetype.SOFTIRQ_DRAIN: _emit_softirq_drain,
    Archetype.TABLE_UPDATE: _emit_table_update,
    Archetype.MEMORY_OP: _emit_memory_op,
    Archetype.BULK_COPY: _emit_bulk_copy,
    Archetype.EVENT_OP: _emit_event_op,
    Archetype.SCHED_OP: _emit_sched_op,
    Archetype.TIME_OP: _emit_time_op,
    Archetype.INFO_QUERY: _emit_info_query,
    Archetype.EMULATE_CPUID: _emit_emulate_cpuid,
    Archetype.IO_EMULATE: _emit_io_emulate,
}
