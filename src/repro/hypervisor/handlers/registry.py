"""Per-exit-reason handler specifications.

Maps every :class:`~repro.hypervisor.vmexit.ExitReason` to an archetype
instantiation.  The assignments follow what the corresponding Xen entry point
actually does; the ``scale``/``flavor`` parameters make each reason's dynamic
footprint distinct even within a family.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineConfigError
from repro.hypervisor.handlers.archetypes import Archetype, HandlerParams, OutputRef
from repro.hypervisor.vmexit import (
    APIC_NAMES,
    EXCEPTION_NAMES,
    ExitReasonRegistry,
    REGISTRY,
)

__all__ = ["Hardening", "handler_params_for", "build_handler_table"]


@dataclass(frozen=True)
class Hardening:
    """Optional Section VI hardening switches, applied image-wide.

    The paper proposes both as future work for the undetected-fault classes
    of Table II: selective stack-value redundancy (for the 20% "stack
    values") and adjacent-rdtsc variation checks (for the 53% "time values").
    """

    stack_redundancy: bool = False
    time_variation_check: bool = False

_A = Archetype
_O = OutputRef

#: Hypercall name -> archetype family, mirroring the real Xen implementation.
_HYPERCALL_FAMILY: dict[str, Archetype] = {
    # Descriptor/trap-table maintenance.
    "set_trap_table": _A.TABLE_UPDATE,
    "set_gdt": _A.TABLE_UPDATE,
    "update_descriptor": _A.TABLE_UPDATE,
    "set_debugreg": _A.TABLE_UPDATE,
    "set_callbacks": _A.TABLE_UPDATE,
    "set_segment_base": _A.TABLE_UPDATE,
    "fpu_taskswitch": _A.TABLE_UPDATE,
    "vm_assist": _A.TABLE_UPDATE,
    # Memory management.
    "mmu_update": _A.MEMORY_OP,
    "memory_op": _A.MEMORY_OP,
    "update_va_mapping": _A.MEMORY_OP,
    "update_va_mapping_otherdomain": _A.MEMORY_OP,
    "mmuext_op": _A.MEMORY_OP,
    "physdev_op": _A.MEMORY_OP,
    "physdev_op_compat": _A.MEMORY_OP,
    # Batched copies.
    "grant_table_op": _A.BULK_COPY,
    "console_io": _A.BULK_COPY,
    "multicall": _A.BULK_COPY,
    "kexec_op": _A.BULK_COPY,
    "tmem_op": _A.BULK_COPY,
    "xenoprof_op": _A.BULK_COPY,
    "platform_op": _A.BULK_COPY,
    # Event channels and callbacks.
    "event_channel_op": _A.EVENT_OP,
    "event_channel_op_compat": _A.EVENT_OP,
    "callback_op": _A.EVENT_OP,
    "nmi_op": _A.EVENT_OP,
    # Scheduling and context.
    "sched_op": _A.SCHED_OP,
    "sched_op_compat": _A.SCHED_OP,
    "stack_switch": _A.SCHED_OP,
    "iret": _A.SCHED_OP,
    "vcpu_op": _A.SCHED_OP,
    # Time.
    "set_timer_op": _A.TIME_OP,
    # Queries and control-plane calls.
    "xen_version": _A.INFO_QUERY,
    "get_debugreg": _A.INFO_QUERY,
    "xsm_op": _A.INFO_QUERY,
    "sysctl": _A.INFO_QUERY,
    "domctl": _A.INFO_QUERY,
    # HVM control from PV tools.
    "hvm_op": _A.IO_EMULATE,
}

_FAMILY_OUTPUTS: dict[Archetype, tuple[OutputRef, ...]] = {
    _A.IRQ_ACK: (_O.VCPU_TRAPNO,),
    _A.EXCEPTION_FIXUP: (_O.VCPU_TRAPNO,),
    _A.SOFTIRQ_DRAIN: (),
    _A.TABLE_UPDATE: (),
    _A.MEMORY_OP: (),
    _A.BULK_COPY: (_O.GRANT_FRAMES,),
    _A.EVENT_OP: (_O.EVTCHN_PENDING, _O.VCPU_PENDING),
    _A.SCHED_OP: (_O.VCPU_REG0, _O.VCPU_REG1, _O.VCPU_REG2),
    _A.TIME_OP: (_O.VCPU_TIME, _O.WALLCLOCK),
    _A.INFO_QUERY: (_O.VCPU_REG0,),
    _A.EMULATE_CPUID: (_O.VCPU_REG0, _O.VCPU_REG1, _O.VCPU_REG2, _O.VCPU_REG3),
    _A.IO_EMULATE: (_O.VCPU_REG0,),
}

#: HVM exit reason -> archetype.
_HVM_FAMILY: dict[str, Archetype] = {
    "hvm_cpuid": _A.EMULATE_CPUID,
    "hvm_io_instruction": _A.IO_EMULATE,
    "hvm_ept_violation": _A.MEMORY_OP,
    "hvm_msr_read": _A.IO_EMULATE,
    "hvm_msr_write": _A.IO_EMULATE,
    "hvm_hlt": _A.SCHED_OP,
    "hvm_interrupt_window": _A.EVENT_OP,
    "hvm_external_interrupt": _A.IRQ_ACK,
    "hvm_pause": _A.SCHED_OP,
    "hvm_cr_access": _A.IO_EMULATE,
}


def handler_params_for(
    name: str, vmer: int, hardening: Hardening | None = None
) -> HandlerParams:
    """Archetype parameters for the exit reason ``name``/``vmer``.

    ``flavor`` derives from the VMER so same-family handlers still differ;
    ``scale`` varies loop lengths across the family.
    """
    if name == "do_irq":
        archetype = _A.IRQ_ACK
    elif name in APIC_NAMES:
        archetype = _A.IRQ_ACK
    elif name in ("do_softirq", "do_tasklet"):
        archetype = _A.SOFTIRQ_DRAIN
    elif name in EXCEPTION_NAMES:
        # general_protection additionally hosts cpuid trap-and-emulate in PV
        # Xen (the Section II.A example); invalid_op hosts forced emulation.
        if name in ("general_protection", "invalid_op"):
            archetype = _A.EMULATE_CPUID
        else:
            archetype = _A.EXCEPTION_FIXUP
    elif name in _HYPERCALL_FAMILY:
        archetype = _HYPERCALL_FAMILY[name]
    elif name in _HVM_FAMILY:
        archetype = _HVM_FAMILY[name]
    else:
        raise MachineConfigError(f"no handler family for exit reason {name!r}")
    outputs = _FAMILY_OUTPUTS[archetype]
    # Every VM entry refreshes the VCPU's system time (the epilogue's
    # update_vcpu_system_time analogue), so the time slot is a guest-visible
    # output of every handler.
    if OutputRef.VCPU_TIME not in outputs:
        outputs = outputs + (OutputRef.VCPU_TIME,)
    hardening = hardening or Hardening()
    return HandlerParams(
        archetype=archetype,
        scale=1 + vmer % 5,
        flavor=vmer,
        outputs=outputs,
        stack_redundancy=hardening.stack_redundancy,
        time_variation_check=hardening.time_variation_check,
    )


def build_handler_table(
    registry: ExitReasonRegistry = REGISTRY,
    hardening: Hardening | None = None,
) -> dict[int, HandlerParams]:
    """HandlerParams for every exit reason in ``registry``, keyed by VMER."""
    return {
        r.vmer: handler_params_for(r.name, r.vmer, hardening) for r in registry
    }
