"""Event-channel control plane: Xen's port allocation and binding.

The handlers operate on the per-domain pending/mask bitmaps in simulated
memory (the Fig. 5b ``evtchn_set_pending`` path); this module supplies the
management layer above them — the part of Xen's ``common/event_channel.c``
that allocates ports, binds them (interdomain pairs, VIRQs, physical IRQs),
masks/unmasks, and routes a send on one domain's port to the peer's pending
bitmap by issuing the corresponding ``event_channel_op`` activation.

State lives in two places, as in Xen: the *routing* (what a port is bound
to) is hypervisor bookkeeping held here; the *signalling* state (pending and
mask bits) lives in guest-visible shared memory and is only ever mutated by
executed handler code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CampaignConfigError
from repro.hypervisor.vmexit import REGISTRY
from repro.hypervisor.xen import Activation, ActivationResult, XenHypervisor

__all__ = ["ChannelState", "Channel", "EventChannelManager"]

#: Ports per domain (the bitmaps cover 4 words = 256 bits).
MAX_PORTS = 256


class ChannelState(enum.Enum):
    """Lifecycle of one event-channel port (Xen's ECS_* states)."""

    FREE = "free"
    UNBOUND = "unbound"            # allocated, awaiting a peer
    INTERDOMAIN = "interdomain"    # connected to a remote (domain, port)
    VIRQ = "virq"                  # bound to a virtual IRQ
    PIRQ = "pirq"                  # bound to a physical IRQ


@dataclass
class Channel:
    """Routing state of one port."""

    domain_id: int
    port: int
    state: ChannelState = ChannelState.FREE
    remote_domain: int | None = None
    remote_port: int | None = None
    virq: int | None = None
    pirq: int | None = None
    notifications: int = 0


class EventChannelManager:
    """Port allocation, binding and routed notification for one platform."""

    def __init__(self, hypervisor: XenHypervisor) -> None:
        self.hv = hypervisor
        self._channels: dict[tuple[int, int], Channel] = {}
        self._virq_bindings: dict[tuple[int, int], int] = {}  # (dom, virq) -> port
        self._pirq_bindings: dict[int, tuple[int, int]] = {}  # pirq -> (dom, port)
        self._seq = 1_000_000  # activation sequence space for notifications
        self._send_vmer = REGISTRY.by_name("event_channel_op").vmer

    # -- allocation -----------------------------------------------------------

    def _channel(self, domain_id: int, port: int) -> Channel:
        key = (domain_id, port)
        if key not in self._channels:
            self._channels[key] = Channel(domain_id, port)
        return self._channels[key]

    def alloc_unbound(self, domain_id: int) -> Channel:
        """Allocate the lowest free port of ``domain_id`` (EVTCHNOP_alloc_unbound)."""
        self._check_domain(domain_id)
        for port in range(MAX_PORTS):
            channel = self._channel(domain_id, port)
            if channel.state is ChannelState.FREE:
                channel.state = ChannelState.UNBOUND
                return channel
        raise CampaignConfigError(f"domain {domain_id} has no free ports")

    def _check_domain(self, domain_id: int) -> None:
        if not 0 <= domain_id < self.hv.n_domains:
            raise CampaignConfigError(f"no domain {domain_id}")

    # -- binding ---------------------------------------------------------------

    def bind_interdomain(self, local: Channel, remote_domain: int) -> Channel:
        """Connect an unbound local port to a fresh port of ``remote_domain``
        (EVTCHNOP_bind_interdomain): sends on either side signal the peer."""
        if local.state is not ChannelState.UNBOUND:
            raise CampaignConfigError(
                f"port {local.port} of domain {local.domain_id} is {local.state.value}"
            )
        remote = self.alloc_unbound(remote_domain)
        local.state = remote.state = ChannelState.INTERDOMAIN
        local.remote_domain, local.remote_port = remote.domain_id, remote.port
        remote.remote_domain, remote.remote_port = local.domain_id, local.port
        return remote

    def bind_virq(self, domain_id: int, virq: int) -> Channel:
        """Bind a virtual IRQ (timer, console, ...) to a fresh port."""
        if (domain_id, virq) in self._virq_bindings:
            raise CampaignConfigError(
                f"virq {virq} already bound in domain {domain_id}"
            )
        channel = self.alloc_unbound(domain_id)
        channel.state = ChannelState.VIRQ
        channel.virq = virq
        self._virq_bindings[(domain_id, virq)] = channel.port
        return channel

    def bind_pirq(self, domain_id: int, pirq: int) -> Channel:
        """Route a physical IRQ line to a guest port (the driver-domain path)."""
        if pirq in self._pirq_bindings:
            raise CampaignConfigError(f"pirq {pirq} already routed")
        channel = self.alloc_unbound(domain_id)
        channel.state = ChannelState.PIRQ
        channel.pirq = pirq
        self._pirq_bindings[pirq] = (domain_id, channel.port)
        return channel

    def close(self, channel: Channel) -> None:
        """Tear a port down (EVTCHNOP_close); interdomain peers unbind."""
        if channel.state is ChannelState.INTERDOMAIN and channel.remote_domain is not None:
            peer = self._channel(channel.remote_domain, channel.remote_port)
            peer.state = ChannelState.UNBOUND
            peer.remote_domain = peer.remote_port = None
        if channel.state is ChannelState.VIRQ and channel.virq is not None:
            self._virq_bindings.pop((channel.domain_id, channel.virq), None)
        if channel.state is ChannelState.PIRQ and channel.pirq is not None:
            self._pirq_bindings.pop(channel.pirq, None)
        channel.state = ChannelState.FREE
        channel.remote_domain = channel.remote_port = None
        channel.virq = channel.pirq = None

    # -- signalling (through executed handler code) ---------------------------------

    def _deliver(self, domain_id: int, port: int) -> ActivationResult:
        """Run the real event_channel_op handler against the target port."""
        self._seq += 1
        activation = Activation(
            vmer=self._send_vmer,
            args=(port, 0),
            domain_id=domain_id,
            seq=self._seq,
        )
        return self.hv.execute(activation)

    def notify(self, channel: Channel) -> ActivationResult:
        """Send on a channel (EVTCHNOP_send): the *peer's* port goes pending."""
        if channel.state is ChannelState.INTERDOMAIN:
            target_domain = channel.remote_domain
            target_port = channel.remote_port
        elif channel.state in (ChannelState.VIRQ, ChannelState.PIRQ):
            target_domain, target_port = channel.domain_id, channel.port
        else:
            raise CampaignConfigError(
                f"cannot notify a {channel.state.value} channel"
            )
        channel.notifications += 1
        return self._deliver(target_domain, target_port)  # type: ignore[arg-type]

    def raise_virq(self, domain_id: int, virq: int) -> ActivationResult:
        """Hypervisor-side VIRQ delivery (e.g. the timer tick)."""
        try:
            port = self._virq_bindings[(domain_id, virq)]
        except KeyError:
            raise CampaignConfigError(
                f"virq {virq} not bound in domain {domain_id}"
            ) from None
        return self._deliver(domain_id, port)

    def raise_pirq(self, pirq: int) -> ActivationResult:
        """Physical-interrupt delivery into whichever guest owns the line."""
        try:
            domain_id, port = self._pirq_bindings[pirq]
        except KeyError:
            raise CampaignConfigError(f"pirq {pirq} not routed") from None
        return self._deliver(domain_id, port)

    # -- inspection -----------------------------------------------------------------

    def is_pending(self, channel: Channel) -> bool:
        """Read the guest-visible pending bit for this channel's port."""
        return self.hv.domain(channel.domain_id).is_port_pending(channel.port)

    def channels_of(self, domain_id: int) -> tuple[Channel, ...]:
        return tuple(
            c for (d, _), c in self._channels.items()
            if d == domain_id and c.state is not ChannelState.FREE
        )
