"""Grant-table control plane: page sharing between domains.

Xen's grant tables let one domain grant another access to its pages — the
mechanism every paravirtual I/O path (netfront/netback, blkfront/blkback)
rides on, and the reason ``grant_table_op`` is hot in the paper's I/O-bound
workloads.  This module supplies the management layer: grant issuance,
map/unmap with reference counting, and page transfer, with the shared data
itself living in the granting domain's guest-visible ``grant_frames`` window
(so corrupted transfers are observable guest state).

As with :mod:`repro.hypervisor.events`, bulk data movement goes through
*executed handler code* (a ``grant_table_op`` activation), not Python-side
bookkeeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CampaignConfigError
from repro.hypervisor.vmexit import REGISTRY
from repro.hypervisor.xen import Activation, ActivationResult, XenHypervisor

__all__ = ["GrantFlags", "GrantEntry", "GrantTableManager"]


class GrantFlags(enum.Flag):
    """Access modes of a grant (Xen's GTF_* permissions)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    TRANSFER = enum.auto()


@dataclass
class GrantEntry:
    """One issued grant: (granter, ref) -> grantee access to a frame."""

    granter: int
    ref: int
    grantee: int
    frame: int
    flags: GrantFlags
    mappings: int = 0
    transferred: bool = False

    @property
    def busy(self) -> bool:
        return self.mappings > 0


@dataclass
class GrantTableManager:
    """Grant issuance, mapping and transfer for one platform."""

    hv: XenHypervisor
    _entries: dict[tuple[int, int], GrantEntry] = field(default_factory=dict)
    _next_ref: dict[int, int] = field(default_factory=dict)
    _seq: int = 2_000_000

    def __post_init__(self) -> None:
        self._vmer = REGISTRY.by_name("grant_table_op").vmer

    # -- issuance -------------------------------------------------------------

    def grant_access(
        self, granter: int, grantee: int, frame: int, flags: GrantFlags
    ) -> GrantEntry:
        """Issue a grant reference allowing ``grantee`` to map ``frame``."""
        self._check_domain(granter)
        self._check_domain(grantee)
        if granter == grantee:
            raise CampaignConfigError("a domain cannot grant to itself")
        if flags is GrantFlags.NONE:
            raise CampaignConfigError("a grant needs at least one access flag")
        ref = self._next_ref.get(granter, 0)
        self._next_ref[granter] = ref + 1
        entry = GrantEntry(granter, ref, grantee, frame, flags)
        self._entries[(granter, ref)] = entry
        return entry

    def entry(self, granter: int, ref: int) -> GrantEntry:
        try:
            return self._entries[(granter, ref)]
        except KeyError:
            raise CampaignConfigError(f"no grant ({granter}, {ref})") from None

    def _check_domain(self, domain_id: int) -> None:
        if not 0 <= domain_id < self.hv.n_domains:
            raise CampaignConfigError(f"no domain {domain_id}")

    # -- map / unmap ----------------------------------------------------------------

    def map_grant(self, grantee: int, granter: int, ref: int) -> GrantEntry:
        """Map a granted frame into the grantee (GNTTABOP_map_grant_ref)."""
        entry = self.entry(granter, ref)
        if entry.grantee != grantee:
            raise CampaignConfigError(
                f"grant ({granter}, {ref}) was issued to domain {entry.grantee}"
            )
        if entry.transferred:
            raise CampaignConfigError("grant was already transferred")
        entry.mappings += 1
        return entry

    def unmap_grant(self, grantee: int, granter: int, ref: int) -> None:
        entry = self.entry(granter, ref)
        if entry.mappings == 0:
            raise CampaignConfigError(f"grant ({granter}, {ref}) is not mapped")
        if entry.grantee != grantee:
            raise CampaignConfigError("only the grantee may unmap")
        entry.mappings -= 1

    def end_access(self, granter: int, ref: int) -> None:
        """Revoke a grant (gnttab_end_foreign_access): refuses while mapped."""
        entry = self.entry(granter, ref)
        if entry.busy:
            raise CampaignConfigError(
                f"grant ({granter}, {ref}) still has {entry.mappings} mapping(s)"
            )
        del self._entries[(granter, ref)]

    # -- data movement (through executed handler code) --------------------------------

    def copy_through(self, entry: GrantEntry, words: int) -> ActivationResult:
        """Move a payload across the grant (GNTTABOP_copy).

        Executes the real ``grant_table_op`` handler in the *granter's*
        context; the processed payload lands in the granter's guest-visible
        grant window, where the grantee (or a fault-injection golden-run
        diff) can observe it.
        """
        if not entry.flags & (GrantFlags.READ | GrantFlags.WRITE):
            raise CampaignConfigError("grant does not permit data access")
        if not 1 <= words <= 24:
            raise CampaignConfigError("copy size must be within the legal batch range")
        self._seq += 1
        activation = Activation(
            vmer=self._vmer,
            args=(words, entry.ref & 7),
            domain_id=entry.granter,
            seq=self._seq,
        )
        return self.hv.execute(activation)

    def transfer(self, entry: GrantEntry) -> None:
        """Hand the frame over entirely (GNTTABOP_transfer)."""
        if not entry.flags & GrantFlags.TRANSFER:
            raise CampaignConfigError("grant does not permit transfer")
        if entry.busy:
            raise CampaignConfigError("cannot transfer a mapped frame")
        entry.transferred = True

    # -- inspection --------------------------------------------------------------------

    def grants_of(self, granter: int) -> tuple[GrantEntry, ...]:
        return tuple(
            e for (d, _), e in self._entries.items() if d == granter
        )

    def window_words(self, domain_id: int) -> list[int]:
        """Current contents of a domain's guest-visible grant window."""
        dom = self.hv.layout.domains[domain_id]
        return [
            self.hv.memory.read_u64(dom.grant_frames.word_address(i))
            for i in range(dom.grant_frames.words)
        ]
