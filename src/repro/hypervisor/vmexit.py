"""VM-exit reason taxonomy.

Section IV of the paper enumerates five groups of hypervisor entry points in
Xen 4.1.2, all of which Xentry intercepts:

1. common interrupts (``do_irq``),
2. ten APIC interrupt handlers,
3. software interrupt and tasklet (``do_softirq`` / ``do_tasklet``),
4. nineteen exception handlers,
5. thirty-eight hypercalls.

Hardware-assisted (HVM) guests additionally exit through VMCS-coded reasons
(cpuid, I/O instructions, EPT violations, ...).  Every reason gets a stable
integer id — the VMER feature of Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MachineConfigError

__all__ = [
    "ExitCategory",
    "ExitReason",
    "HYPERCALL_NAMES",
    "EXCEPTION_NAMES",
    "APIC_NAMES",
    "HVM_EXIT_NAMES",
    "ExitReasonRegistry",
    "REGISTRY",
]


class ExitCategory(enum.Enum):
    """The five PV entry-point groups of Section IV, plus HVM VMCS exits."""

    COMMON_IRQ = "common_irq"
    APIC = "apic"
    SOFTIRQ = "softirq"
    EXCEPTION = "exception"
    HYPERCALL = "hypercall"
    HVM = "hvm"


#: The 38 hypercalls of Xen 4.1.2 (unstable ABI numbering order).
HYPERCALL_NAMES: tuple[str, ...] = (
    "set_trap_table", "mmu_update", "set_gdt", "stack_switch",
    "set_callbacks", "fpu_taskswitch", "sched_op_compat", "platform_op",
    "set_debugreg", "get_debugreg", "update_descriptor", "memory_op",
    "multicall", "update_va_mapping", "set_timer_op", "event_channel_op_compat",
    "xen_version", "console_io", "physdev_op_compat", "grant_table_op",
    "vm_assist", "update_va_mapping_otherdomain", "iret", "vcpu_op",
    "set_segment_base", "mmuext_op", "xsm_op", "nmi_op",
    "sched_op", "callback_op", "xenoprof_op", "event_channel_op",
    "physdev_op", "hvm_op", "sysctl", "domctl",
    "kexec_op", "tmem_op",
)
assert len(HYPERCALL_NAMES) == 38

#: The 19 exception handlers wired in Xen's trap table.
EXCEPTION_NAMES: tuple[str, ...] = (
    "divide_error", "debug", "nmi", "int3", "overflow", "bounds",
    "invalid_op", "device_not_available", "double_fault",
    "coprocessor_segment_overrun", "invalid_tss", "segment_not_present",
    "stack_segment", "general_protection", "page_fault",
    "spurious_interrupt_bug", "coprocessor_error", "alignment_check",
    "simd_coprocessor_error",
)
assert len(EXCEPTION_NAMES) == 19

#: The ten APIC interrupt handlers (category 2 of Section IV).
APIC_NAMES: tuple[str, ...] = (
    "apic_timer", "error_interrupt", "spurious_interrupt", "thermal_interrupt",
    "pmu_apic", "call_function", "event_check", "invalidate_tlb",
    "irq_move_cleanup", "cmci",
)
assert len(APIC_NAMES) == 10

#: VMCS-coded exit reasons used by hardware-assisted guests.
HVM_EXIT_NAMES: tuple[str, ...] = (
    "hvm_cpuid", "hvm_io_instruction", "hvm_ept_violation", "hvm_msr_read",
    "hvm_msr_write", "hvm_hlt", "hvm_interrupt_window", "hvm_external_interrupt",
    "hvm_pause", "hvm_cr_access",
)


@dataclass(frozen=True)
class ExitReason:
    """One interceptable hypervisor entry point.

    ``vmer`` is the integer fed to the classifier as the VMER feature;
    ``handler_label`` names the entry label inside the hypervisor image;
    ``arg_ranges`` bounds the legal values of each handler argument, which the
    workload generator respects so fault-free runs never self-fault.
    """

    vmer: int
    name: str
    category: ExitCategory
    arg_ranges: tuple[tuple[int, int], ...] = ()

    @property
    def handler_label(self) -> str:
        return f"handler.{self.name}"


class ExitReasonRegistry:
    """Immutable id <-> reason mapping for every exit reason."""

    def __init__(self) -> None:
        reasons: list[ExitReason] = []

        def add(name: str, category: ExitCategory,
                arg_ranges: tuple[tuple[int, int], ...] = ()) -> None:
            reasons.append(ExitReason(len(reasons), name, category, arg_ranges))

        # Group 1: one do_irq interface; the IRQ number is an argument.
        add("do_irq", ExitCategory.COMMON_IRQ, ((0, 31),))
        # Group 2: APIC handlers.
        for name in APIC_NAMES:
            add(name, ExitCategory.APIC, ((0, 15),))
        # Group 3: softirq and tasklet.
        add("do_softirq", ExitCategory.SOFTIRQ, ((0, 63),))
        add("do_tasklet", ExitCategory.SOFTIRQ, ((0, 15),))
        # Group 4: exceptions.
        for name in EXCEPTION_NAMES:
            add(name, ExitCategory.EXCEPTION, ((0, 15), (0, 255)))
        # Group 5: hypercalls.  First arg is a batch count / port with a
        # characteristic operating range; second a small selector.  Real
        # guests issue requests in these bands — oversized counts are
        # rejected by the handlers (as Xen returns -EINVAL), so values
        # outside the band only arise from faults.
        for name in HYPERCALL_NAMES:
            add(name, ExitCategory.HYPERCALL, ((2, 24), (0, 7)))
        # HVM VMCS exits.
        for name in HVM_EXIT_NAMES:
            add(name, ExitCategory.HVM, ((0, 31),))

        self._reasons = tuple(reasons)
        self._by_name = {r.name: r for r in reasons}

    def __len__(self) -> int:
        return len(self._reasons)

    def __iter__(self):
        return iter(self._reasons)

    def by_vmer(self, vmer: int) -> ExitReason:
        if not 0 <= vmer < len(self._reasons):
            raise MachineConfigError(f"unknown VMER {vmer}")
        return self._reasons[vmer]

    def by_name(self, name: str) -> ExitReason:
        try:
            return self._by_name[name]
        except KeyError:
            raise MachineConfigError(f"unknown exit reason {name!r}") from None

    def in_category(self, category: ExitCategory) -> tuple[ExitReason, ...]:
        return tuple(r for r in self._reasons if r.category is category)

    @property
    def pv_reasons(self) -> tuple[ExitReason, ...]:
        """Entry points reachable from a para-virtualized guest."""
        return tuple(r for r in self._reasons if r.category is not ExitCategory.HVM)

    @property
    def hvm_reasons(self) -> tuple[ExitReason, ...]:
        """Exit reasons reachable from a hardware-assisted guest.

        HVM guests exit via VMCS reasons and hypercalls (vmcall), and the
        host still services interrupts while they run.
        """
        return tuple(
            r
            for r in self._reasons
            if r.category
            in (ExitCategory.HVM, ExitCategory.HYPERCALL, ExitCategory.COMMON_IRQ,
                ExitCategory.APIC, ExitCategory.SOFTIRQ)
        )


#: Singleton registry used across the package.
REGISTRY = ExitReasonRegistry()
