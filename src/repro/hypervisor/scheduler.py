"""The credit scheduler: Xen's default VCPU scheduling policy.

A faithful model of the algorithm Xen 4.1 ships (sched_credit.c): each VCPU
holds *credits* replenished in proportion to its weight every accounting
epoch and debited while it runs; VCPUs with positive credits (``UNDER``)
always run before those that have exhausted them (``OVER``); idle physical
CPUs *steal* runnable work from their peers before idling.

This is the substrate behind the paper's sched_op handlers and the engine
the SMP platform uses to decide which guest's activations each core
services.  The Listing 2 invariant ("verify VCPU is idle before idle its
physical cpu") is this scheduler's contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CampaignConfigError

__all__ = ["Priority", "SchedVcpu", "CreditScheduler"]

#: Credits debited from a running VCPU per accounting tick (Xen's value).
CREDITS_PER_TICK = 100
#: Credits granted per weight unit per accounting epoch.
EPOCH_CREDITS = 300


class Priority(enum.IntEnum):
    """Run-queue priority bands (sched_credit's UNDER/OVER/IDLE)."""

    UNDER = 0   # has credits remaining
    OVER = 1    # exhausted its credits this epoch
    IDLE = 2    # nothing to run


@dataclass
class SchedVcpu:
    """Scheduler-side state of one VCPU."""

    domain_id: int
    vcpu_id: int
    weight: int = 256
    credits: int = 0
    runnable: bool = True
    running_on: int | None = None
    total_ticks: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise CampaignConfigError("VCPU weight must be positive")

    @property
    def key(self) -> tuple[int, int]:
        return (self.domain_id, self.vcpu_id)

    @property
    def priority(self) -> Priority:
        if not self.runnable:
            return Priority.IDLE
        return Priority.UNDER if self.credits > 0 else Priority.OVER


class CreditScheduler:
    """Weighted proportional-share scheduling over N physical CPUs."""

    def __init__(self, n_cpus: int = 1) -> None:
        if n_cpus < 1:
            raise CampaignConfigError("need at least one physical CPU")
        self.n_cpus = n_cpus
        self._vcpus: dict[tuple[int, int], SchedVcpu] = {}
        #: Per-CPU FIFO run queues of vcpu keys.
        self._runqueues: list[list[tuple[int, int]]] = [[] for _ in range(n_cpus)]
        self._current: list[tuple[int, int] | None] = [None] * n_cpus

    # -- registration ---------------------------------------------------------

    def add_vcpu(self, domain_id: int, vcpu_id: int = 0, *, weight: int = 256,
                 cpu: int | None = None) -> SchedVcpu:
        """Register a VCPU; it starts with one epoch of credits."""
        vcpu = SchedVcpu(domain_id, vcpu_id, weight=weight)
        if vcpu.key in self._vcpus:
            raise CampaignConfigError(f"vcpu {vcpu.key} already registered")
        vcpu.credits = self._epoch_share(vcpu)
        self._vcpus[vcpu.key] = vcpu
        home = cpu if cpu is not None else len(self._vcpus) % self.n_cpus
        self._runqueues[home % self.n_cpus].append(vcpu.key)
        return vcpu

    def vcpu(self, domain_id: int, vcpu_id: int = 0) -> SchedVcpu:
        try:
            return self._vcpus[(domain_id, vcpu_id)]
        except KeyError:
            raise CampaignConfigError(f"unknown vcpu ({domain_id}, {vcpu_id})") from None

    @property
    def vcpus(self) -> tuple[SchedVcpu, ...]:
        return tuple(self._vcpus.values())

    # -- credit accounting -----------------------------------------------------

    def _epoch_share(self, vcpu: SchedVcpu) -> int:
        total_weight = sum(v.weight for v in self._vcpus.values()) or vcpu.weight
        return max(
            CREDITS_PER_TICK,
            EPOCH_CREDITS * self.n_cpus * vcpu.weight // total_weight,
        )

    def replenish(self) -> None:
        """Start a new accounting epoch: hand out credits by weight."""
        for vcpu in self._vcpus.values():
            vcpu.credits = min(
                vcpu.credits + self._epoch_share(vcpu), 2 * self._epoch_share(vcpu)
            )

    # -- dispatch ------------------------------------------------------------------

    def _pop_best(self, cpu: int, *, steal: bool) -> tuple[int, int] | None:
        """Take the best-priority runnable VCPU from a queue (FIFO within a
        priority band), optionally stealing from peers."""
        queues = [cpu] + (
            [c for c in range(self.n_cpus) if c != cpu] if steal else []
        )
        for priority in (Priority.UNDER, Priority.OVER):
            for q in queues:
                for key in self._runqueues[q]:
                    vcpu = self._vcpus[key]
                    if vcpu.runnable and vcpu.running_on is None and vcpu.priority is priority:
                        self._runqueues[q].remove(key)
                        return key
        return None

    def schedule(self, cpu: int) -> SchedVcpu | None:
        """Pick the next VCPU for ``cpu`` (None -> the CPU idles).

        The previously-running VCPU is requeued on this CPU first.
        """
        if not 0 <= cpu < self.n_cpus:
            raise CampaignConfigError(f"no such cpu {cpu}")
        previous = self._current[cpu]
        if previous is not None:
            self._vcpus[previous].running_on = None
            self._runqueues[cpu].append(previous)
        key = self._pop_best(cpu, steal=True)
        self._current[cpu] = key
        if key is None:
            return None
        vcpu = self._vcpus[key]
        vcpu.running_on = cpu
        return vcpu

    def tick(self, cpu: int) -> None:
        """One accounting tick on ``cpu``: debit the running VCPU."""
        key = self._current[cpu]
        if key is None:
            return
        vcpu = self._vcpus[key]
        vcpu.credits -= CREDITS_PER_TICK
        vcpu.total_ticks += 1

    def block(self, domain_id: int, vcpu_id: int = 0) -> None:
        """The VCPU blocked (the sched_op 'idle' path precondition)."""
        self.vcpu(domain_id, vcpu_id).runnable = False

    def wake(self, domain_id: int, vcpu_id: int = 0) -> None:
        """An event arrived for a blocked VCPU (evtchn wakeup)."""
        self.vcpu(domain_id, vcpu_id).runnable = True

    # -- simulation convenience -------------------------------------------------------

    def run_epochs(self, n_ticks: int) -> dict[tuple[int, int], int]:
        """Round-robin the CPUs for ``n_ticks`` scheduling rounds and return
        accumulated ticks per VCPU — the fairness experiment."""
        for t in range(n_ticks):
            if t % (EPOCH_CREDITS // CREDITS_PER_TICK) == 0:
                self.replenish()
            for cpu in range(self.n_cpus):
                self.schedule(cpu)
                self.tick(cpu)
        return {v.key: v.total_ticks for v in self._vcpus.values()}
