"""Hypervisor data-structure layout in simulated physical memory.

Lays out the Xen-like structures the handlers operate on — domain structs,
VCPU register blocks, shared-info pages, event-channel bitmaps, scheduler run
queue, grant table, trap tables — at fixed addresses inside the hypervisor
heap.  Every word range is registered as a :class:`Slot` carrying an *owner*
(which domain, or the hypervisor globally) and a *value kind* (app data,
pointer, time, VCPU state, control state).

These tags are what turns a golden-run memory diff into the paper's outcome
taxonomy: a corrupted app-data slot of a guest VCPU is an APP SDC/crash, a
corrupted time value is the Table II "time values" bucket, corrupted global
scheduler state is an all-VM failure, and so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MemoryConfigError
from repro.machine.memory import Memory

__all__ = [
    "ValueKind",
    "GLOBAL_OWNER",
    "Slot",
    "DataAllocator",
    "HypervisorLayout",
    "DomainLayout",
    "VcpuLayout",
]

#: Owner id for hypervisor-global structures (not belonging to any domain).
GLOBAL_OWNER = -1

WORD = 8


class ValueKind(enum.Enum):
    """Semantic class of the values stored in a slot."""

    APP_DATA = "app_data"      # values a guest application consumes directly
    POINTER = "pointer"        # values dereferenced later (crash if corrupt)
    TIME = "time"              # time values delivered to guests (Table II)
    VCPU_STATE = "vcpu_state"  # per-VCPU control state (pending bits, mode)
    CONTROL = "control"        # hypervisor control state (sched, evtchn, ...)
    SCRATCH = "scratch"        # transient buffers, never guest-visible


@dataclass(frozen=True)
class Slot:
    """A named word range inside the hypervisor heap."""

    name: str
    address: int
    words: int
    owner: int          # domain id, or GLOBAL_OWNER
    kind: ValueKind

    @property
    def end(self) -> int:
        return self.address + self.words * WORD

    def word_address(self, index: int) -> int:
        """Address of the ``index``-th word of the slot."""
        if not 0 <= index < self.words:
            raise MemoryConfigError(
                f"word {index} outside slot {self.name!r} ({self.words} words)"
            )
        return self.address + index * WORD

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end


class DataAllocator:
    """Bump allocator carving :class:`Slot` ranges out of the heap region."""

    def __init__(self, base: int, size: int) -> None:
        self._base = base
        self._limit = base + size
        self._cursor = base
        self._slots: dict[str, Slot] = {}

    def alloc(self, name: str, words: int, owner: int, kind: ValueKind) -> Slot:
        if name in self._slots:
            raise MemoryConfigError(f"duplicate slot name {name!r}")
        if words <= 0:
            raise MemoryConfigError(f"slot {name!r} must have positive size")
        address = self._cursor
        if address + words * WORD > self._limit:
            raise MemoryConfigError(
                f"heap exhausted allocating {name!r} "
                f"({words} words at {address:#x}, limit {self._limit:#x})"
            )
        slot = Slot(name, address, words, owner, kind)
        self._slots[name] = slot
        self._cursor = slot.end
        return slot

    @property
    def slots(self) -> dict[str, Slot]:
        return dict(self._slots)

    @property
    def bytes_used(self) -> int:
        return self._cursor - self._base


@dataclass(frozen=True)
class VcpuLayout:
    """Per-VCPU structure addresses."""

    regs: Slot          # 16 architectural registers as seen by the guest
    mode: Slot          # running/idle/blocked
    pending: Slot       # event-pending flag (vcpu_mark_events_pending target)
    trapno: Slot        # pending trap/interrupt number for delivery
    time: Slot          # per-VCPU system-time snapshot delivered to the guest
    stack_save: Slot    # context-switch save area (the "stack values" path)


@dataclass(frozen=True)
class DomainLayout:
    """Per-domain structure addresses."""

    domain_id: int
    info: Slot              # id, state, flags, refcount ...
    evtchn_pending: Slot    # shared-info event-channel pending bitmap
    evtchn_mask: Slot       # shared-info event-channel mask bitmap
    wallclock: Slot         # shared-info wc_sec / wc_nsec / tsc_scale
    grant_frames: Slot      # per-domain grant mapping area
    vcpus: tuple[VcpuLayout, ...]


# Mode values stored in VcpuLayout.mode.
VCPU_MODE_IDLE = 0
VCPU_MODE_RUNNING = 1
VCPU_MODE_BLOCKED = 2


@dataclass
class HypervisorLayout:
    """Complete data layout: global structures plus per-domain blocks."""

    heap_base: int
    heap_size: int
    n_domains: int
    vcpus_per_domain: int
    globals_: Slot = field(init=False)
    stats: Slot = field(init=False)
    runqueue: Slot = field(init=False)
    timer_heap: Slot = field(init=False)
    grant_table: Slot = field(init=False)
    trap_table: Slot = field(init=False)
    fixup_table: Slot = field(init=False)
    irq_descs: Slot = field(init=False)
    softirq_bits: Slot = field(init=False)
    console_ring: Slot = field(init=False)
    guest_request: Slot = field(init=False)
    scratch: Slot = field(init=False)
    domains: tuple[DomainLayout, ...] = field(init=False)
    all_slots: dict[str, Slot] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise MemoryConfigError("need at least one domain (Dom0)")
        if self.vcpus_per_domain < 1:
            raise MemoryConfigError("need at least one VCPU per domain")
        alloc = DataAllocator(self.heap_base, self.heap_size)
        g = GLOBAL_OWNER
        # Global control state.  Bookkeeping counters live in a separate
        # SCRATCH slot right after it: statistics diverging between a golden
        # and a faulty run is not a failure, only control state is.
        self.globals_ = alloc.alloc("globals", 8, g, ValueKind.CONTROL)
        self.stats = alloc.alloc("stats", 8, g, ValueKind.SCRATCH)
        self.runqueue = alloc.alloc("runqueue", 16, g, ValueKind.CONTROL)
        self.timer_heap = alloc.alloc("timer_heap", 32, g, ValueKind.CONTROL)
        self.grant_table = alloc.alloc("grant_table", 128, g, ValueKind.CONTROL)
        self.trap_table = alloc.alloc("trap_table", 32, g, ValueKind.CONTROL)
        self.fixup_table = alloc.alloc("fixup_table", 32, g, ValueKind.CONTROL)
        self.irq_descs = alloc.alloc("irq_descs", 32, g, ValueKind.CONTROL)
        self.softirq_bits = alloc.alloc("softirq_bits", 2, g, ValueKind.CONTROL)
        self.console_ring = alloc.alloc("console_ring", 64, g, ValueKind.SCRATCH)
        self.guest_request = alloc.alloc("guest_request", 128, g, ValueKind.SCRATCH)
        self.scratch = alloc.alloc("scratch", 128, g, ValueKind.SCRATCH)
        # Per-domain blocks.  Domain 0 is the control domain: corrupting its
        # state takes the whole platform down (Section V.E "all VM failure").
        domains: list[DomainLayout] = []
        for d in range(self.n_domains):
            info = alloc.alloc(f"dom{d}.info", 8, d, ValueKind.CONTROL)
            pend = alloc.alloc(f"dom{d}.evtchn_pending", 4, d, ValueKind.VCPU_STATE)
            mask = alloc.alloc(f"dom{d}.evtchn_mask", 4, d, ValueKind.VCPU_STATE)
            wc = alloc.alloc(f"dom{d}.wallclock", 4, d, ValueKind.TIME)
            gf = alloc.alloc(f"dom{d}.grant_frames", 16, d, ValueKind.APP_DATA)
            vcpus: list[VcpuLayout] = []
            for v in range(self.vcpus_per_domain):
                prefix = f"dom{d}.vcpu{v}"
                vcpus.append(
                    VcpuLayout(
                        regs=alloc.alloc(f"{prefix}.regs", 16, d, ValueKind.APP_DATA),
                        mode=alloc.alloc(f"{prefix}.mode", 1, d, ValueKind.VCPU_STATE),
                        pending=alloc.alloc(f"{prefix}.pending", 1, d, ValueKind.VCPU_STATE),
                        trapno=alloc.alloc(f"{prefix}.trapno", 1, d, ValueKind.VCPU_STATE),
                        time=alloc.alloc(f"{prefix}.time", 2, d, ValueKind.TIME),
                        stack_save=alloc.alloc(f"{prefix}.stack_save", 8, d, ValueKind.POINTER),
                    )
                )
            domains.append(
                DomainLayout(
                    domain_id=d,
                    info=info,
                    evtchn_pending=pend,
                    evtchn_mask=mask,
                    wallclock=wc,
                    grant_frames=gf,
                    vcpus=tuple(vcpus),
                )
            )
        self.domains = tuple(domains)
        self.all_slots = alloc.slots

    # -- lookups -------------------------------------------------------------

    def slot_at(self, address: int) -> Slot | None:
        """Find the slot containing ``address`` (linear scan; diagnostics only)."""
        for slot in self.all_slots.values():
            if slot.contains(address):
                return slot
        return None

    def slot(self, name: str) -> Slot:
        try:
            return self.all_slots[name]
        except KeyError:
            raise MemoryConfigError(f"unknown slot {name!r}") from None

    # -- initialization ----------------------------------------------------------

    def initialize(self, memory: Memory) -> None:
        """Write sane initial values into the structures.

        Fault-free handler executions must find internally consistent state:
        domains marked live, VCPU modes valid, IRQ descriptors populated,
        fixup chains terminated.
        """
        for d, dom in enumerate(self.domains):
            memory.write_u64(dom.info.word_address(0), d)        # domain id
            memory.write_u64(dom.info.word_address(1), 1)        # state = live
            memory.write_u64(dom.info.word_address(2), 0)        # flags
            for vcpu in dom.vcpus:
                memory.write_u64(vcpu.mode.address, VCPU_MODE_RUNNING)
        # IRQ descriptors: word i = handler cookie for IRQ i (nonzero = wired).
        for i in range(self.irq_descs.words):
            memory.write_u64(self.irq_descs.word_address(i), 0x100 + i)
        # Fixup table: chain of (key, next_index) pairs terminated by ~0.
        n_pairs = self.fixup_table.words // 2
        for i in range(n_pairs):
            memory.write_u64(self.fixup_table.word_address(2 * i), 0x40 + 4 * i)
            nxt = i + 1 if i + 1 < n_pairs else (1 << 64) - 1
            memory.write_u64(self.fixup_table.word_address(2 * i + 1), nxt)
        # Run queue: vcpu cookies with descending credits in the upper half.
        half = self.runqueue.words // 2
        for i in range(half):
            memory.write_u64(self.runqueue.word_address(i), i)            # vcpu id
            memory.write_u64(self.runqueue.word_address(half + i), 64 - i)  # credits
