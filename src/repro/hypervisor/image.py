"""Hypervisor text image: one assembled program containing every handler.

All handlers are assembled into a single contiguous text region, the way a
real hypervisor's ``.text`` lays out — this matters for fault realism: a bit
flip in RIP can land inside a *different* handler's code, which is still a
valid-instruction fetch (incorrect control flow) rather than an immediate
fault.

:class:`ImageBuilder` couples the assembler with the data layout and emits the
shared subroutine library used by the handler archetypes:

========================  ====================================================
``sub.memcpy``            bulk word copy via ``rep movs`` (Fig. 5a surface)
``sub.copy_from_guest``   bounds-validated copy from the guest request buffer
``sub.evtchn_set_pending``the Fig. 5b event-channel path (test / je /
                          vcpu_mark_events_pending)
``sub.bitmap_scan``       find-first-set over a 64-bit word
``sub.list_walk``         walk a (key, next) chain in the fixup table
``sub.sched_pick``        arg-max over run-queue credits
``sub.get_time``          rdtsc -> scaled system time (Table II time values)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineConfigError
from repro.machine.assembler import Assembler
from repro.machine.isa import Program
from repro.machine.memory import Memory, PAGE_SIZE, Region
from repro.hypervisor.layout import HypervisorLayout

__all__ = ["MemoryMap", "ImageBuilder", "SUBROUTINES"]

SUBROUTINES: tuple[str, ...] = (
    "sub.memcpy",
    "sub.copy_from_guest",
    "sub.evtchn_set_pending",
    "sub.bitmap_scan",
    "sub.list_walk",
    "sub.sched_pick",
    "sub.get_time",
)


@dataclass(frozen=True)
class MemoryMap:
    """Standard physical memory map of the simulated platform."""

    text_base: int = 0x0100_0000
    text_size: int = 0x0004_0000       # 256 KiB of hypervisor text
    heap_base: int = 0x0200_0000
    heap_size: int = 0x4000            # 16 KiB hypervisor heap (sized to the
    # layout so runaway bulk copies fault at the region end within ~1k words,
    # as they would crossing a real xenheap allocation boundary)
    stack_base: int = 0x0300_0000
    stack_size: int = PAGE_SIZE * 4    # per-CPU stack
    #: Logical cores.  Each gets its own stack region separated by an
    #: unmapped guard gap, so a corrupted RSP that strays off one core's
    #: stack faults instead of silently scribbling on a neighbour's.
    n_cpus: int = 1
    stack_gap: int = PAGE_SIZE * 4

    def create_memory(self) -> Memory:
        mem = Memory()
        mem.map_region(
            Region("hypervisor_text", self.text_base, self.text_size,
                   writable=False, executable=True)
        )
        mem.map_region(Region("hypervisor_heap", self.heap_base, self.heap_size))
        for cpu in range(self.n_cpus):
            mem.map_region(
                Region(f"cpu_stack{cpu}", self.stack_base_for(cpu), self.stack_size)
            )
        return mem

    def stack_base_for(self, cpu: int) -> int:
        return self.stack_base + cpu * (self.stack_size + self.stack_gap)

    def stack_top_for(self, cpu: int) -> int:
        if not 0 <= cpu < self.n_cpus:
            raise MachineConfigError(f"no such cpu {cpu}")
        return self.stack_base_for(cpu) + self.stack_size

    @property
    def stack_top(self) -> int:
        """Stack top of CPU 0 (single-core convenience)."""
        return self.stack_top_for(0)


class ImageBuilder:
    """Assembler + layout + shared-subroutine emitter for handler authors."""

    def __init__(self, layout: HypervisorLayout, memory_map: MemoryMap) -> None:
        self.layout = layout
        self.memory_map = memory_map
        self.asm = Assembler(base=memory_map.text_base)
        # Per-domain block geometry: identical strides across domains let one
        # handler body serve whichever domain 'current' (r12/r13) points at.
        dom0 = layout.domains[0]
        self.dom_block_base = dom0.info.address
        if len(layout.domains) > 1:
            self.dom_stride = layout.domains[1].info.address - dom0.info.address
        else:
            self.dom_stride = 0
        self.off_pending = dom0.evtchn_pending.address - dom0.info.address
        self.off_mask = dom0.evtchn_mask.address - dom0.info.address
        self.off_wallclock = dom0.wallclock.address - dom0.info.address
        self.off_grant = dom0.grant_frames.address - dom0.info.address
        vcpu0 = dom0.vcpus[0]
        self.vcpu_block_base = vcpu0.regs.address
        self.off_vcpu_mode = vcpu0.mode.address - vcpu0.regs.address
        self.off_vcpu_pending = vcpu0.pending.address - vcpu0.regs.address
        self.off_vcpu_trapno = vcpu0.trapno.address - vcpu0.regs.address
        self.off_vcpu_time = vcpu0.time.address - vcpu0.regs.address
        self.off_vcpu_stack_save = vcpu0.stack_save.address - vcpu0.regs.address

    # -- conventions ------------------------------------------------------------
    #
    # Register environment at handler entry (established by the VM-exit path):
    #   rdi, rsi, rdx, r8, r9   handler arguments
    #   rbp                     hypervisor globals base
    #   r12                     current domain block base (dom.info)
    #   r13                     current VCPU block base (vcpu.regs)
    #   rsp                     top of the per-CPU stack
    # Handlers end in `vmentry`.

    def domain_base(self, domain_id: int) -> int:
        """Address of domain ``domain_id``'s block base (dom.info)."""
        if not 0 <= domain_id < len(self.layout.domains):
            raise MachineConfigError(f"no such domain {domain_id}")
        return self.layout.domains[domain_id].info.address

    def vcpu_base(self, domain_id: int, vcpu_id: int) -> int:
        dom = self.layout.domains[domain_id]
        if not 0 <= vcpu_id < len(dom.vcpus):
            raise MachineConfigError(f"no such vcpu {vcpu_id} in domain {domain_id}")
        return dom.vcpus[vcpu_id].regs.address

    # -- shared subroutine library ------------------------------------------------

    def emit_subroutines(self) -> None:
        """Emit the shared library; must be called exactly once per image."""
        self._emit_memcpy()
        self._emit_copy_from_guest()
        self._emit_evtchn_set_pending()
        self._emit_bitmap_scan()
        self._emit_list_walk()
        self._emit_sched_pick()
        self._emit_get_time()

    def _emit_memcpy(self) -> None:
        """rsi=src, rdi=dst, rcx=words.  Clobbers rcx/rsi/rdi."""
        a = self.asm
        a.label("sub.memcpy")
        a.rep_movs()
        a.ret()

    def _emit_copy_from_guest(self) -> None:
        """rdi=dst, rcx=words requested.  Copies from the guest request
        buffer after validating the count — oversized requests are rejected
        outright (rax = error marker, nothing copied), the way Xen fails a
        malformed hypercall with -EINVAL.  The validation branch is what a
        flipped count register subverts (Fig. 5a)."""
        a = self.asm
        buf = self.layout.guest_request
        a.label("sub.copy_from_guest")
        a.mov("rax", 0)
        a.cmp("rcx", buf.words)
        a.jcc("be", "sub.copy_from_guest.ok")
        a.mov("rax", 0xEA)       # -EINVAL marker; caller skips processing
        a.mov("rcx", 0)
        a.ret()
        a.label("sub.copy_from_guest.ok")
        a.mov("rsi", buf.address)
        a.rep_movs()
        a.ret()

    def _emit_evtchn_set_pending(self) -> None:
        """rdi=port, r12=domain base, r13=vcpu base.

        The Fig. 5b code path: test whether the port is already pending; only
        when it is not, mark the VCPU as having pending events.  An error in
        the tested value silently skips (or duplicates) the notification.
        """
        a = self.asm
        a.label("sub.evtchn_set_pending")
        # rax = &pending_bitmap[port / 64]  (bitmap is 4 words: ports 0..255)
        a.mov("rax", "rdi")
        a.shr("rax", 6)
        a.and_("rax", 3)
        a.shl("rax", 3)
        a.add("rax", "r12")
        a.add("rax", self.off_pending)
        # rbx = 1 << (port % 64)
        a.mov("rcx", "rdi")
        a.and_("rcx", 63)
        a.mov("rbx", 1)
        a.shl("rbx", "rcx")
        # Respect the channel mask: masked channels never mark the VCPU.
        a.mov("r10", "rax")
        a.add("r10", self.off_mask - self.off_pending)
        a.load("r11", "r10")
        a.test("r11", "rbx")
        a.jcc("ne", "sub.evtchn_set_pending.done")  # masked -> drop event
        # test eax, eax / je vcpu_mark_events_pending shape:
        a.load("r10", "rax")
        a.test("r10", "rbx")
        a.jcc("ne", "sub.evtchn_set_pending.done")  # already pending
        a.or_("r10", "rbx")
        a.store("rax", 0, "r10")
        # vcpu_mark_events_pending:
        a.mov("r11", 1)
        a.store("r13", self.off_vcpu_pending, "r11")
        a.label("sub.evtchn_set_pending.done")
        a.ret()

    def _emit_bitmap_scan(self) -> None:
        """rdi=word address.  Returns rax = index of first set bit, or 64."""
        a = self.asm
        a.label("sub.bitmap_scan")
        a.load("rbx", "rdi")
        a.mov("rax", 0)
        a.label("sub.bitmap_scan.loop")
        a.cmp("rax", 64)
        a.jcc("ae", "sub.bitmap_scan.out")
        a.test("rbx", 1)
        a.jcc("ne", "sub.bitmap_scan.out")
        a.shr("rbx", 1)
        a.inc("rax")
        a.jmp("sub.bitmap_scan.loop")
        a.label("sub.bitmap_scan.out")
        a.ret()

    def _emit_list_walk(self) -> None:
        """rdi=key.  Walks the fixup-table (key, next) chain.

        Returns rax = matched entry index, or the chain length when no entry
        matches.  The chain is bounded, so even corrupted keys terminate.
        """
        a = self.asm
        table = self.layout.fixup_table
        n_pairs = table.words // 2
        a.label("sub.list_walk")
        a.mov("rax", 0)            # current index
        a.label("sub.list_walk.loop")
        a.cmp("rax", n_pairs)
        a.jcc("ae", "sub.list_walk.out")
        # rbx = &table[2 * rax]
        a.mov("rbx", "rax")
        a.shl("rbx", 4)            # 2 words per entry = 16 bytes
        a.add("rbx", table.address)
        a.load("rcx", "rbx")       # entry key
        a.cmp("rcx", "rdi")
        a.jcc("e", "sub.list_walk.out")
        a.load("rax", "rbx", 8)    # follow next index
        a.cmp("rax", n_pairs)
        a.jcc("b", "sub.list_walk.loop")
        a.mov("rax", n_pairs)
        a.label("sub.list_walk.out")
        a.ret()

    def _emit_sched_pick(self) -> None:
        """Arg-max over run-queue credits.  Returns rax = chosen vcpu cookie."""
        a = self.asm
        rq = self.layout.runqueue
        half = rq.words // 2
        a.label("sub.sched_pick")
        a.mov("rax", 0)        # best index
        a.mov("rbx", 0)        # best credits
        a.mov("rcx", 0)        # loop index
        a.label("sub.sched_pick.loop")
        a.cmp("rcx", half)
        a.jcc("ae", "sub.sched_pick.out")
        a.mov("r10", "rcx")
        a.shl("r10", 3)
        a.add("r10", rq.address + half * 8)  # credits array
        a.load("r11", "r10")
        a.cmp("r11", "rbx")
        a.jcc("be", "sub.sched_pick.next")
        a.mov("rbx", "r11")
        a.mov("rax", "rcx")
        a.label("sub.sched_pick.next")
        a.inc("rcx")
        a.jmp("sub.sched_pick.loop")
        a.label("sub.sched_pick.out")
        # Translate run-queue index into the vcpu cookie stored there.
        a.shl("rax", 3)
        a.add("rax", rq.address)
        a.load("rax", "rax")
        a.ret()

    def _emit_get_time(self) -> None:
        """Returns rax = scaled system time.

        Pure data flow: rdtsc, merge, scale — deliberately branch-free, which
        is why corrupted time values leave the detection features untouched
        (the dominant Table II bucket).
        """
        a = self.asm
        a.label("sub.get_time")
        a.rdtsc()
        a.shl("rdx", 32)
        a.or_("rax", "rdx")
        a.imul("rax", 1_000)   # tsc -> ns at the modeled 1 GHz-per-tick scale
        a.shr("rax", 10)
        a.ret()

    # -- assembly ---------------------------------------------------------------

    def assemble(self) -> Program:
        program = self.asm.assemble()
        if program.size > self.memory_map.text_size:
            raise MachineConfigError(
                f"hypervisor text ({program.size} bytes) exceeds the text region "
                f"({self.memory_map.text_size} bytes)"
            )
        return program
