"""The Xen-like hypervisor substrate.

Everything the paper's Xentry framework sits on: exit-reason taxonomy, handler
programs in the toy ISA, domain/VCPU structures, and the activation execution
path (VM exit -> handler -> VM entry) with interceptor hooks at both
transitions.
"""

from repro.hypervisor.domain import DomainView, VcpuView
from repro.hypervisor.handlers.archetypes import (
    Archetype,
    ASSERTION_IDS,
    HandlerParams,
    OutputRef,
)
from repro.hypervisor.handlers.registry import (
    Hardening,
    build_handler_table,
    handler_params_for,
)
from repro.hypervisor.image import ImageBuilder, MemoryMap, SUBROUTINES
from repro.hypervisor.events import Channel, ChannelState, EventChannelManager
from repro.hypervisor.grants import GrantEntry, GrantFlags, GrantTableManager
from repro.hypervisor.scheduler import CreditScheduler, Priority, SchedVcpu
from repro.hypervisor.layout import (
    DomainLayout,
    GLOBAL_OWNER,
    HypervisorLayout,
    Slot,
    ValueKind,
    VcpuLayout,
)
from repro.hypervisor.vmexit import (
    APIC_NAMES,
    EXCEPTION_NAMES,
    ExitCategory,
    ExitReason,
    ExitReasonRegistry,
    HVM_EXIT_NAMES,
    HYPERCALL_NAMES,
    REGISTRY,
)
from repro.hypervisor.xen import (
    Activation,
    ActivationResult,
    MachineCheckpoint,
    TransitionInterceptor,
    XenHypervisor,
)

__all__ = [
    "APIC_NAMES",
    "ASSERTION_IDS",
    "Activation",
    "ActivationResult",
    "Archetype",
    "DomainLayout",
    "DomainView",
    "EXCEPTION_NAMES",
    "ExitCategory",
    "ExitReason",
    "ExitReasonRegistry",
    "GLOBAL_OWNER",
    "HVM_EXIT_NAMES",
    "HYPERCALL_NAMES",
    "HandlerParams",
    "Hardening",
    "HypervisorLayout",
    "ImageBuilder",
    "MachineCheckpoint",
    "MemoryMap",
    "OutputRef",
    "REGISTRY",
    "SUBROUTINES",
    "Slot",
    "TransitionInterceptor",
    "ValueKind",
    "VcpuLayout",
    "VcpuView",
    "XenHypervisor",
    "Channel",
    "ChannelState",
    "CreditScheduler",
    "EventChannelManager",
    "GrantEntry",
    "GrantFlags",
    "GrantTableManager",
    "Priority",
    "SchedVcpu",
    "build_handler_table",
    "handler_params_for",
]
