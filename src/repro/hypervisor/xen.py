"""The Xen-like hypervisor: image construction and activation execution.

:class:`XenHypervisor` wires the substrate together: it builds the text image
(every handler + the subroutine library), lays out and initializes the data
structures, and executes *activations* — single hypervisor executions between
a VM exit and the following VM entry, the unit of everything the paper
measures.

The execution path mirrors Fig. 4: an optional *interceptor* (Xentry) is
called at VM exit (to arm performance counters) and again at VM entry (to run
VM-transition detection) around the original handler execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Protocol

from repro import rng as rng_mod
from repro.errors import MachineConfigError
from repro.hypervisor.domain import DomainView, VcpuView
from repro.hypervisor.handlers.archetypes import OutputRef, emit_handler
from repro.hypervisor.handlers.registry import Hardening, build_handler_table
from repro.hypervisor.image import ImageBuilder, MemoryMap
from repro.hypervisor.layout import HypervisorLayout, Slot
from repro.hypervisor.vmexit import ExitReason, ExitReasonRegistry, REGISTRY
from repro.machine.cpu import CoreCheckpoint, CPUCore, ExecutionResult
from repro.machine.isa import Op, Program
from repro.machine.memory import MemoryCheckpoint
from repro.machine.perfcounters import CounterSample
from repro.machine.translator import CACHE

__all__ = [
    "Activation",
    "ActivationResult",
    "MachineCheckpoint",
    "TransitionInterceptor",
    "XenHypervisor",
]

_ARG_REGISTERS = ("rdi", "rsi", "rdx", "r8", "r9")


@lru_cache(maxsize=4096)
def _guest_request_payload(
    seed: int, vmer: int, args: tuple[int, ...], seq: int, n_words: int
) -> bytes:
    """Deterministic guest-request block for one activation identity.

    A campaign prepares the same activation many times (golden capture, every
    faulty replay, each follow-up execution), and the payload depends only on
    these five values — so the numpy stream construction and draw are cached
    rather than recomputed per :meth:`XenHypervisor.prepare`.
    """
    fill = rng_mod.stream(seed, "guest_request", vmer, args, seq)
    words = fill.integers(0, 1 << 32, size=n_words, dtype="int64")
    return words.astype("<u8").tobytes()


@dataclass(frozen=True)
class Activation:
    """One hypervisor activation: a VM exit with its cause and arguments.

    ``seq`` sequences the activation within its run so that time (TSC) and
    guest-supplied request data are deterministic — the property that makes
    golden/faulty run pairs comparable.
    """

    vmer: int
    args: tuple[int, ...] = ()
    domain_id: int = 1
    vcpu_id: int = 0
    seq: int = 0

    def __post_init__(self) -> None:
        if len(self.args) > len(_ARG_REGISTERS):
            raise MachineConfigError(
                f"at most {len(_ARG_REGISTERS)} handler args supported"
            )


@dataclass(frozen=True)
class ActivationResult:
    """Outcome of one fault-free-or-not activation that reached VM entry."""

    activation: Activation
    reason: ExitReason
    exit_op: Op
    instructions: int
    path_hash: int
    sample: CounterSample
    tsc_end: int

    @property
    def features(self) -> tuple[int, int, int, int, int]:
        """The Table I feature vector: (VMER, RT, BR, RM, WM)."""
        return (
            self.reason.vmer,
            self.sample.instructions,
            self.sample.branches,
            self.sample.loads,
            self.sample.stores,
        )


@dataclass(frozen=True)
class MachineCheckpoint:
    """Full machine state at a mid-activation instruction boundary.

    Pairs one core's :class:`CoreCheckpoint` with a copy-on-write
    :class:`MemoryCheckpoint`; restoring both and calling
    :meth:`XenHypervisor.resume_execution` continues the activation
    bit-identically to an uninterrupted run.  This is the rung type of the
    golden run's fast-forward ladder.
    """

    core: CoreCheckpoint
    memory: MemoryCheckpoint

    @property
    def index(self) -> int:
        """Dynamic instruction index (instructions retired before this point)."""
        return self.core.index


class TransitionInterceptor(Protocol):
    """Xentry's hooks around an activation (Fig. 4's shim position)."""

    def on_vm_exit(self, hypervisor: "XenHypervisor", activation: Activation) -> None:
        """Called after the VM exit, before the original handler runs."""

    def on_vm_entry(
        self,
        hypervisor: "XenHypervisor",
        activation: Activation,
        result: ActivationResult,
    ) -> None:
        """Called after the handler finished, before the guest resumes."""


class XenHypervisor:
    """A fully-wired simulated hypervisor platform."""

    def __init__(
        self,
        *,
        n_domains: int = 3,
        vcpus_per_domain: int = 1,
        memory_map: MemoryMap | None = None,
        registry: ExitReasonRegistry = REGISTRY,
        seed: int = 0,
        max_instructions: int = 10_000,
        hardening: Hardening | None = None,
        n_cores: int = 1,
        light_trace: bool = True,
        translate: bool = True,
    ) -> None:
        if n_cores < 1:
            raise MachineConfigError("need at least one core")
        self.memory_map = memory_map or MemoryMap(n_cpus=n_cores)
        if self.memory_map.n_cpus < n_cores:
            raise MachineConfigError(
                f"memory map provides {self.memory_map.n_cpus} stacks for {n_cores} cores"
            )
        self.registry = registry
        self.seed = seed
        self.max_instructions = max_instructions
        self.hardening = hardening
        self.layout = HypervisorLayout(
            heap_base=self.memory_map.heap_base,
            heap_size=self.memory_map.heap_size,
            n_domains=n_domains,
            vcpus_per_domain=vcpus_per_domain,
        )
        self.memory = self.memory_map.create_memory()
        builder = ImageBuilder(self.layout, self.memory_map)
        builder.emit_subroutines()
        self.handler_table = build_handler_table(registry, hardening)
        for reason in registry:
            emit_handler(builder, reason, self.handler_table[reason.vmer])
        self.builder = builder
        self.program: Program = builder.assemble()
        self.layout.initialize(self.memory)
        self.memory.write_u64(
            self.layout.globals_.word_address(1), 2_130_000  # kHz calibration
        )
        self._initial_state = self.memory.checkpoint()
        #: One logical core per physical CPU (Fig. 4: Xentry instances run
        #: per-CPU; counters are not shared between logical cores).
        self.cores: tuple[CPUCore, ...] = tuple(
            CPUCore(i, self.memory, light_trace=light_trace, translate=translate)
            for i in range(n_cores)
        )
        self.cpu = self.cores[0]
        self._tsc_base = 1_000_000
        #: Fast-forward accounting for the injection hot path (updated by the
        #: fault injector; reported by the machine-throughput benchmark).
        self.ff_stats = {"trials": 0, "fast_forwarded": 0, "instructions_skipped": 0}
        #: Lock-step twin-batch accounting (updated by the fault injector's
        #: batch scan; see repro.machine.lockstep).  ``dead_twins`` trials
        #: were synthesized without execution; ``peeled_twins`` ran per-trial,
        #: ``read_ff_instructions`` counting the extra golden-prefix
        #: instructions their read-point resume skipped past the injection.
        self.lockstep_stats = {
            "twin_batches": 0,
            "twins": 0,
            "dead_twins": 0,
            "peeled_twins": 0,
            "synthesized_instructions": 0,
            "read_ff_instructions": 0,
        }

    # -- views ----------------------------------------------------------------

    @property
    def n_domains(self) -> int:
        return len(self.layout.domains)

    def domain(self, domain_id: int) -> DomainView:
        return DomainView(self.memory, self.layout.domains[domain_id])

    def vcpu(self, domain_id: int, vcpu_id: int = 0) -> VcpuView:
        return self.domain(domain_id).vcpu(vcpu_id)

    def translation_stats(self) -> dict[str, int | float]:
        """Translation-cache telemetry across every core of this machine.

        Also folds the counters into :attr:`ff_stats` so the execution-mix
        numbers travel with the fast-forward accounting the benchmarks and
        campaign telemetry already report.  ``block_hit_rate`` is the share
        of block executions served by an already-compiled block (process-wide
        cache, so warm campaigns approach 1.0).
        """
        translated = sum(c.translated_instructions for c in self.cores)
        interpreted = sum(c.interpreted_instructions for c in self.cores)
        executions = sum(c.block_executions for c in self.cores)
        cache = CACHE.stats()
        compiled = cache["blocks_compiled"]
        stats: dict[str, int | float] = {
            "translated_instructions": translated,
            "interpreted_instructions": interpreted,
            "block_executions": executions,
            "blocks_compiled": compiled,
            "block_hit_rate": (
                (executions - compiled) / executions if executions > compiled else 0.0
            ),
            "program_hits": cache["program_hits"],
            "program_misses": cache["program_misses"],
        }
        self.ff_stats.update(stats)
        return stats

    # -- state management ----------------------------------------------------------

    def reset(self) -> None:
        """Restore the post-boot machine state (memory + all cores)."""
        self.memory.restore(self._initial_state)
        for core in self.cores:
            core.regs.reset()
            core.pmu.reset()
            core.tracer.reset()
            core.clear_injection()
            core.tsc = self._tsc_base

    def checkpoint(self) -> MemoryCheckpoint:
        """Capture current memory for a golden/faulty run pair (COW)."""
        return self.memory.checkpoint()

    def restore(self, snapshot: MemoryCheckpoint | dict[int, bytes]) -> None:
        self.memory.restore(snapshot)

    def capture_machine(self, *, core_id: int = 0) -> MachineCheckpoint:
        """Capture memory plus one core's state at an instruction boundary."""
        return MachineCheckpoint(
            core=self.cores[core_id].checkpoint_core(),
            memory=self.memory.checkpoint(),
        )

    def restore_machine(self, checkpoint: MachineCheckpoint, *, core_id: int = 0) -> None:
        """Restore a :meth:`capture_machine` snapshot, ready to resume."""
        self.memory.restore(checkpoint.memory)
        self.cores[core_id].restore_core(checkpoint.core)

    # -- activation execution ----------------------------------------------------------

    def prepare(self, activation: Activation, *, core_id: int = 0) -> None:
        """Set up registers, guest request data and guest VCPU frame.

        Deterministic in (seed, activation): preparing the same activation
        twice from the same memory state yields identical runs.
        """
        reason = self.registry.by_vmer(activation.vmer)
        if not 0 <= activation.domain_id < self.n_domains:
            raise MachineConfigError(f"no domain {activation.domain_id}")
        core = self.cores[core_id]
        regs = core.regs
        regs.reset()
        for reg, value in zip(_ARG_REGISTERS, activation.args):
            regs[reg] = value
        regs["rbp"] = self.layout.globals_.address
        regs["r12"] = self.builder.domain_base(activation.domain_id)
        regs["r13"] = self.builder.vcpu_base(activation.domain_id, activation.vcpu_id)
        regs["rsp"] = self.memory_map.stack_top_for(core_id)
        # Deterministic TSC: advances with the activation sequence number.
        core.tsc = self._tsc_base + activation.seq * 10_000
        # Guest-supplied request payload (DMA-style block write).
        req = self.layout.guest_request
        self.memory.write_block(
            req.address,
            _guest_request_payload(
                self.seed, activation.vmer, activation.args, activation.seq, req.words
            ),
        )
        # Guest VCPU frame: the registers the guest trapped with.
        vcpu = self.vcpu(activation.domain_id, activation.vcpu_id)
        vcpu.set_reg(0, activation.args[0] if activation.args else 0)   # guest rax
        vcpu.set_reg(15, 0x0000_7F00_0000_1000 + activation.seq * 16)   # guest rip
        _ = reason  # validated above

    def execute(
        self,
        activation: Activation,
        *,
        interceptor: TransitionInterceptor | None = None,
        max_instructions: int | None = None,
        core_id: int = 0,
    ) -> ActivationResult:
        """Run one activation from VM exit to VM entry on core ``core_id``.

        Simulated architectural events (:class:`HardwareException`,
        :class:`AssertionViolation`, :class:`SimulationLimitExceeded`)
        propagate to the caller — they are what the runtime detection layer
        consumes.
        """
        reason = self.registry.by_vmer(activation.vmer)
        core = self.cores[core_id]
        self.prepare(activation, core_id=core_id)
        if interceptor is not None:
            interceptor.on_vm_exit(self, activation)
        core.tracer.reset()
        core.pmu.arm()
        entry = self.program.address_of(reason.handler_label)
        exec_result: ExecutionResult = core.run(
            self.program,
            entry,
            max_instructions=max_instructions or self.max_instructions,
        )
        sample = core.pmu.collect()
        result = ActivationResult(
            activation=activation,
            reason=reason,
            exit_op=exec_result.exit_op,
            instructions=exec_result.instructions,
            path_hash=exec_result.path_hash,
            sample=sample,
            tsc_end=exec_result.tsc_end,
        )
        if interceptor is not None:
            interceptor.on_vm_entry(self, activation, result)
        return result

    def execute_with_ladder(
        self,
        activation: Activation,
        *,
        interval: int,
        interceptor: TransitionInterceptor | None = None,
        max_instructions: int | None = None,
        core_id: int = 0,
    ) -> tuple[ActivationResult, tuple[MachineCheckpoint, ...]]:
        """Run one activation like :meth:`execute`, capturing a ladder of
        machine checkpoints every ``interval`` dynamic instructions.

        The first rung sits at index 0 (post-:meth:`prepare`, pre-first
        instruction), so resuming from a rung skips activation preparation
        entirely.  The executed run is bit-identical to :meth:`execute` —
        checkpoints are captured at instruction boundaries between resume
        slices and never perturb architectural state.
        """
        if interval <= 0:
            raise MachineConfigError("ladder interval must be positive")
        reason = self.registry.by_vmer(activation.vmer)
        core = self.cores[core_id]
        self.prepare(activation, core_id=core_id)
        if interceptor is not None:
            interceptor.on_vm_exit(self, activation)
        core.tracer.reset()
        core.pmu.arm()
        entry = self.program.address_of(reason.handler_label)
        budget = max_instructions or self.max_instructions
        core.begin(entry)
        ladder: list[MachineCheckpoint] = []
        mark = 0
        while True:
            exec_result = core.resume(self.program, max_instructions=budget, stop_at=mark)
            if exec_result is not None:
                break
            ladder.append(self.capture_machine(core_id=core_id))
            mark += interval
        sample = core.pmu.collect()
        result = ActivationResult(
            activation=activation,
            reason=reason,
            exit_op=exec_result.exit_op,
            instructions=exec_result.instructions,
            path_hash=exec_result.path_hash,
            sample=sample,
            tsc_end=exec_result.tsc_end,
        )
        if interceptor is not None:
            interceptor.on_vm_entry(self, activation, result)
        return result, tuple(ladder)

    def resume_execution(
        self,
        activation: Activation,
        *,
        interceptor: TransitionInterceptor | None = None,
        max_instructions: int | None = None,
        core_id: int = 0,
    ) -> ActivationResult:
        """Finish an activation from a restored mid-run machine checkpoint.

        The fast-forward counterpart of :meth:`execute`: preparation, tracer
        reset and counter arming already happened before the checkpoint was
        captured (and were restored with it), so only the remaining suffix of
        the activation executes.  Simulated architectural events propagate
        exactly as from :meth:`execute`.
        """
        reason = self.registry.by_vmer(activation.vmer)
        core = self.cores[core_id]
        exec_result = core.resume(
            self.program,
            max_instructions=max_instructions or self.max_instructions,
        )
        assert exec_result is not None  # no stop_at: runs to a terminator
        sample = core.pmu.collect()
        result = ActivationResult(
            activation=activation,
            reason=reason,
            exit_op=exec_result.exit_op,
            instructions=exec_result.instructions,
            path_hash=exec_result.path_hash,
            sample=sample,
            tsc_end=exec_result.tsc_end,
        )
        if interceptor is not None:
            interceptor.on_vm_entry(self, activation, result)
        return result

    # -- guest-visible outputs ------------------------------------------------------

    def output_addresses(self, activation: Activation) -> list[tuple[int, Slot, OutputRef]]:
        """Resolve the guest-visible output words of ``activation``'s handler.

        Returns ``(address, slot, ref)`` triples; the outcome classifier
        compares these words between golden and faulty runs to decide whether
        an error propagated across VM entry (long-latency errors, Fig. 9).
        """
        params = self.handler_table[activation.vmer]
        dom = self.layout.domains[activation.domain_id]
        vcpu = dom.vcpus[activation.vcpu_id]
        out: list[tuple[int, Slot, OutputRef]] = []

        def add(slot: Slot, ref: OutputRef, words: range) -> None:
            for w in words:
                out.append((slot.word_address(w), slot, ref))

        for ref in params.outputs:
            if ref is OutputRef.VCPU_REG0:
                add(vcpu.regs, ref, range(0, 1))
            elif ref is OutputRef.VCPU_REG1:
                add(vcpu.regs, ref, range(1, 2))
            elif ref is OutputRef.VCPU_REG2:
                add(vcpu.regs, ref, range(2, 3))
            elif ref is OutputRef.VCPU_REG3:
                add(vcpu.regs, ref, range(3, 4))
            elif ref is OutputRef.VCPU_PENDING:
                add(vcpu.pending, ref, range(vcpu.pending.words))
            elif ref is OutputRef.VCPU_TRAPNO:
                add(vcpu.trapno, ref, range(vcpu.trapno.words))
            elif ref is OutputRef.VCPU_TIME:
                add(vcpu.time, ref, range(vcpu.time.words))
            elif ref is OutputRef.WALLCLOCK:
                add(dom.wallclock, ref, range(dom.wallclock.words))
            elif ref is OutputRef.EVTCHN_PENDING:
                add(dom.evtchn_pending, ref, range(dom.evtchn_pending.words))
            elif ref is OutputRef.GRANT_FRAMES:
                add(dom.grant_frames, ref, range(dom.grant_frames.words))
        return out

    def read_outputs(self, activation: Activation) -> dict[int, int]:
        """Current values of the activation's guest-visible output words."""
        return {
            addr: self.memory.read_u64(addr)
            for addr, _, _ in self.output_addresses(activation)
        }
