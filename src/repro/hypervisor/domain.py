"""Python-side views of domain and VCPU structures.

The structures themselves live in simulated memory (see
:mod:`repro.hypervisor.layout`); these views give tests, examples and the
guest-consumption model typed read/write access without raw address math.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.layout import DomainLayout, VcpuLayout
from repro.machine.memory import Memory
from repro.machine.registers import GPR_NAMES

__all__ = ["VcpuView", "DomainView"]

#: Guest register frame slot order (matches vcpu.regs word layout: the 16
#: GPRs in architectural order except slot 15 doubles as the guest RIP).
GUEST_REG_SLOTS: tuple[str, ...] = GPR_NAMES[:15] + ("rip",)


@dataclass(frozen=True)
class VcpuView:
    """Typed accessor for one VCPU's in-memory structure."""

    memory: Memory
    layout: VcpuLayout

    # -- guest register frame ----------------------------------------------

    def reg(self, index: int) -> int:
        """Read guest register slot ``index`` (0 = rax, ..., 15 = rip)."""
        return self.memory.read_u64(self.layout.regs.word_address(index))

    def set_reg(self, index: int, value: int) -> None:
        self.memory.write_u64(self.layout.regs.word_address(index), value)

    @property
    def rax(self) -> int:
        return self.reg(0)

    @property
    def rip(self) -> int:
        return self.reg(15)

    # -- control state --------------------------------------------------------

    @property
    def mode(self) -> int:
        return self.memory.read_u64(self.layout.mode.address)

    @mode.setter
    def mode(self, value: int) -> None:
        self.memory.write_u64(self.layout.mode.address, value)

    @property
    def pending(self) -> bool:
        return bool(self.memory.read_u64(self.layout.pending.address))

    @property
    def trapno(self) -> int:
        return self.memory.read_u64(self.layout.trapno.address)

    @property
    def system_time(self) -> int:
        return self.memory.read_u64(self.layout.time.address)


@dataclass(frozen=True)
class DomainView:
    """Typed accessor for one domain's in-memory structures."""

    memory: Memory
    layout: DomainLayout

    @property
    def domain_id(self) -> int:
        return self.memory.read_u64(self.layout.info.word_address(0))

    @property
    def is_live(self) -> bool:
        return self.memory.read_u64(self.layout.info.word_address(1)) == 1

    @property
    def is_control_domain(self) -> bool:
        """Dom0 manages all other VMs; its failure takes the platform down."""
        return self.layout.domain_id == 0

    def vcpu(self, index: int) -> VcpuView:
        return VcpuView(self.memory, self.layout.vcpus[index])

    @property
    def vcpus(self) -> tuple[VcpuView, ...]:
        return tuple(VcpuView(self.memory, v) for v in self.layout.vcpus)

    # -- event channels ---------------------------------------------------------

    def evtchn_pending_word(self, word: int) -> int:
        return self.memory.read_u64(self.layout.evtchn_pending.word_address(word))

    def is_port_pending(self, port: int) -> bool:
        word, bit = (port // 64) & 3, port % 64
        return bool(self.evtchn_pending_word(word) & (1 << bit))

    def mask_port(self, port: int) -> None:
        """Set the mask bit for ``port`` (masked channels drop events)."""
        word, bit = (port // 64) & 3, port % 64
        addr = self.layout.evtchn_mask.word_address(word)
        self.memory.write_u64(addr, self.memory.read_u64(addr) | (1 << bit))

    # -- time -----------------------------------------------------------------------

    @property
    def wallclock_sec(self) -> int:
        return self.memory.read_u64(self.layout.wallclock.word_address(0))

    @property
    def wallclock_nsec(self) -> int:
        return self.memory.read_u64(self.layout.wallclock.word_address(1))
