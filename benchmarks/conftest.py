"""Shared fixtures for the reproduction benchmarks.

The heavy artifacts — the labeled datasets, the trained classifiers, and the
fault-injection campaign — are built once per session and shared by every
figure/table harness.

Scale: by default the harness runs at roughly 1/3 of the paper's sample
counts (a few minutes end to end).  Set ``REPRO_BENCH_SCALE=3`` to run at
full paper scale (~23,400 training injections, ~17,700 test injections,
30,000-injection campaign), or below 1 for smoke runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.faults import CampaignConfig, CampaignResult, FaultInjectionCampaign
from repro.xentry import (
    TrainedModel,
    TrainingConfig,
    VMTransitionDetector,
    collect_dataset,
    train_and_evaluate,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "5"))


def scaled(n: int) -> int:
    return max(50, int(n * SCALE))


@dataclass(frozen=True)
class TrainedBundle:
    """Datasets plus both trained classifiers (Section III.B artifacts)."""

    decision_tree: TrainedModel
    random_tree: TrainedModel

    @property
    def detector(self) -> VMTransitionDetector:
        """The deployed detector (the paper deploys the random tree)."""
        return VMTransitionDetector.from_classifier(self.random_tree.classifier)


@pytest.fixture(scope="session")
def trained_bundle() -> TrainedBundle:
    """Collect train/test sets and fit both tree algorithms."""
    train = collect_dataset(
        TrainingConfig(
            fault_free_runs=scaled(2000),
            injection_runs=scaled(7800),  # paper: ~23,400 at scale 3
            seed=SEED,
        ),
        stream="train",
    )
    test = collect_dataset(
        TrainingConfig(
            fault_free_runs=scaled(1000),
            injection_runs=scaled(3900),  # paper: ~17,700 at scale ~4.5
            seed=SEED,
        ),
        stream="test",
    )
    return TrainedBundle(
        decision_tree=train_and_evaluate(train, test, algorithm="decision_tree", seed=3),
        random_tree=train_and_evaluate(train, test, algorithm="random_tree", seed=3),
    )


@pytest.fixture(scope="session")
def campaign_result(trained_bundle: TrainedBundle) -> CampaignResult:
    """The Section V fault-injection campaign with Xentry deployed."""
    config = CampaignConfig(n_injections=scaled(10_000), seed=77)  # paper: 30,000
    campaign = FaultInjectionCampaign(config, detector=trained_bundle.detector)
    return campaign.run()


@pytest.fixture(scope="session")
def deployed_detector(
    trained_bundle: TrainedBundle, campaign_result: CampaignResult
) -> VMTransitionDetector:
    """The detector *after* the campaign, with traversal statistics filled."""
    return trained_bundle.detector
