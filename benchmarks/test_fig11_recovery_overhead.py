"""Fig. 11 — Recovery overhead with false positive cases.

Paper (Section VI): assuming a light-weight recovery scheme that copies
critical hypervisor data (~1,900 ns on a 2.13 GHz Xeon E5506) at every VM
exit and re-executes on any positive detection, with the classifier's 0.7%
false-positive rate, the estimated overheads are small: 2.7% on average,
~1.6% for mcf and bzip2, 6.3% for postmark, and the max-min spread across
100 repetitions per application is below 0.03%.
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonTable
from repro.system import PlatformConfig, VirtualPlatform
from repro.workloads import BENCHMARKS
from repro.xentry import RecoveryCostModel, estimate_recovery_overhead

#: Modeled clock of the paper's testbed (Xeon E5506).
CLOCK_GHZ = 2.13


@pytest.fixture(scope="module")
def recovery_model() -> RecoveryCostModel:
    """Parameterize the handler re-execution cost from measured handler
    lengths on the simulated platform."""
    platform = VirtualPlatform(PlatformConfig(seed=8))
    mean_instr = sum(
        platform.mean_handler_instructions(p.name, n_activations=120)
        for p in BENCHMARKS
    ) / len(BENCHMARKS)
    handler_ns = mean_instr / CLOCK_GHZ  # ~1 instruction/cycle
    return RecoveryCostModel(handler_ns=handler_ns)


def run_study(model: RecoveryCostModel):
    return {
        p.name: estimate_recovery_overhead(p, model=model, repetitions=100, seed=3)
        for p in BENCHMARKS
    }


def test_fig11_regenerate(benchmark, recovery_model):
    studies = benchmark(run_study, recovery_model)
    print("\nFig. 11 — recovery overhead with false positive cases "
          "(100 repetitions per application)")
    for name, study in studies.items():
        print(f"{name:<10} mean={study.mean:7.3%}  max={study.max:7.3%}  "
              f"spread={study.spread:8.5%}")
    average = sum(s.mean for s in studies.values()) / len(studies)
    table = ComparisonTable("Fig. 11 headline numbers")
    table.add_percent("average overhead", 0.027, average)
    table.add_percent("mcf", 0.016, studies["mcf"].mean)
    table.add_percent("bzip2", 0.016, studies["bzip2"].mean)
    table.add_percent("postmark (worst)", 0.063, studies["postmark"].mean)
    table.add("max-min spread", "< 0.03%",
              f"{max(s.spread for s in studies.values()):.4%}")
    print("\n" + table.render())


def test_average_near_paper(recovery_model):
    studies = run_study(recovery_model)
    average = sum(s.mean for s in studies.values()) / len(studies)
    assert 0.01 < average < 0.08  # around the paper's 2.7%


def test_postmark_worst_and_mcf_bzip2_low(recovery_model):
    studies = run_study(recovery_model)
    assert studies["postmark"].mean == max(s.mean for s in studies.values())
    assert studies["mcf"].mean < 0.03
    assert studies["bzip2"].mean < 0.03


def test_spread_below_paper_bound(recovery_model):
    """'the difference between the maximum and minimum overheads are less
    than 0.03%'."""
    studies = run_study(recovery_model)
    for name, study in studies.items():
        assert study.spread < 0.0003, name
