"""Fig. 11 — Recovery overhead with false positive cases, plus the
*measured* recovery axis the paper never had.

Paper (Section VI): assuming a light-weight recovery scheme that copies
critical hypervisor data (~1,900 ns on a 2.13 GHz Xeon E5506) at every VM
exit and re-executes on any positive detection, with the classifier's 0.7%
false-positive rate, the estimated overheads are small: 2.7% on average,
~1.6% for mcf and bzip2, 6.3% for postmark, and the max-min spread across
100 repetitions per application is below 0.03%.

The measured half runs real ``--recover`` campaigns through every policy
(reexecute / microreboot / ladder) and reports survival rate, guest-visible
downtime (retired instructions) and post-recovery golden divergence; a
machine-readable summary lands in ``BENCH_recovery.json`` next to this file
(override with ``REPRO_BENCH_OUTPUT``).  CI diffs it non-blocking.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import ComparisonTable, summarize_recovery
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.system import PlatformConfig, VirtualPlatform
from repro.workloads import BENCHMARKS
from repro.xentry import RecoveryCostModel, estimate_recovery_overhead

from benchmarks.conftest import SEED, scaled

#: Modeled clock of the paper's testbed (Xeon E5506).
CLOCK_GHZ = 2.13

#: Injections per measured recovery campaign (one campaign per policy).
RECOVERY_INJECTIONS = scaled(600)

OUTPUT = Path(
    os.environ.get(
        "REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_recovery.json"
    )
)


@pytest.fixture(scope="module")
def recovery_model() -> RecoveryCostModel:
    """Parameterize the handler re-execution cost from measured handler
    lengths on the simulated platform."""
    platform = VirtualPlatform(PlatformConfig(seed=8))
    mean_instr = sum(
        platform.mean_handler_instructions(p.name, n_activations=120)
        for p in BENCHMARKS
    ) / len(BENCHMARKS)
    handler_ns = mean_instr / CLOCK_GHZ  # ~1 instruction/cycle
    return RecoveryCostModel(handler_ns=handler_ns)


def run_study(model: RecoveryCostModel):
    return {
        p.name: estimate_recovery_overhead(p, model=model, repetitions=100, seed=3)
        for p in BENCHMARKS
    }


def test_fig11_regenerate(benchmark, recovery_model):
    studies = benchmark(run_study, recovery_model)
    print("\nFig. 11 — recovery overhead with false positive cases "
          "(100 repetitions per application)")
    for name, study in studies.items():
        print(f"{name:<10} mean={study.mean:7.3%}  max={study.max:7.3%}  "
              f"spread={study.spread:8.5%}")
    average = sum(s.mean for s in studies.values()) / len(studies)
    table = ComparisonTable("Fig. 11 headline numbers")
    table.add_percent("average overhead", 0.027, average)
    table.add_percent("mcf", 0.016, studies["mcf"].mean)
    table.add_percent("bzip2", 0.016, studies["bzip2"].mean)
    table.add_percent("postmark (worst)", 0.063, studies["postmark"].mean)
    table.add("max-min spread", "< 0.03%",
              f"{max(s.spread for s in studies.values()):.4%}")
    print("\n" + table.render())


def test_average_near_paper(recovery_model):
    studies = run_study(recovery_model)
    average = sum(s.mean for s in studies.values()) / len(studies)
    assert 0.01 < average < 0.08  # around the paper's 2.7%


def test_postmark_worst_and_mcf_bzip2_low(recovery_model):
    studies = run_study(recovery_model)
    assert studies["postmark"].mean == max(s.mean for s in studies.values())
    assert studies["mcf"].mean < 0.03
    assert studies["bzip2"].mean < 0.03


def test_spread_below_paper_bound(recovery_model):
    """'the difference between the maximum and minimum overheads are less
    than 0.03%'."""
    studies = run_study(recovery_model)
    for name, study in studies.items():
        assert study.spread < 0.0003, name


# -- the measured recovery axis -----------------------------------------------


def test_recovery_campaigns_measured():
    """Run a real recovery campaign per policy and bank the survival axis.

    The acceptance bar: under the full escalation ladder, >= 90% of detected
    transient single-bit faults recover with zero post-recovery divergence
    against golden.
    """
    policies = {}
    total_trials = 0
    total_elapsed = 0.0
    for policy in ("reexecute", "microreboot", "ladder"):
        config = CampaignConfig(
            n_injections=RECOVERY_INJECTIONS, seed=SEED, recover=policy
        )
        t0 = time.perf_counter()
        result = FaultInjectionCampaign(config).run()
        elapsed = time.perf_counter() - t0
        summary = summarize_recovery(result.records)
        total_trials += len(result.records)
        total_elapsed += elapsed
        policies[policy] = {
            "injections": len(result.records),
            "detected": summary.trials,
            "recovered": summary.recovered,
            "clean": summary.clean,
            "divergent": summary.divergent,
            "success_rate": summary.success_rate,
            "clean_rate": summary.clean_rate,
            "attempts": summary.attempts,
            "actions": {k: v for k, v in sorted(summary.actions.items())},
            "downtime_p50": summary.downtime_p50,
            "downtime_p90": summary.downtime_p90,
            "downtime_max": summary.downtime_max,
            "downtime_total": summary.downtime_total,
            "elapsed_seconds": elapsed,
            "trials_per_sec": len(result.records) / elapsed,
        }

    summary_doc = {
        "format": "xentry-bench-recovery-v1",
        "seed": SEED,
        "injections_per_policy": RECOVERY_INJECTIONS,
        "trials_per_sec": total_trials / total_elapsed,
        "policies": policies,
    }
    OUTPUT.write_text(json.dumps(summary_doc, indent=1))

    print(f"\nmeasured recovery campaigns — "
          f"{RECOVERY_INJECTIONS} injections/policy, seed {SEED}")
    for policy, s in policies.items():
        print(f"  {policy:<12} detected={s['detected']:<4} "
              f"success={s['success_rate']:6.1%} clean={s['clean_rate']:6.1%} "
              f"downtime p50={s['downtime_p50']} p90={s['downtime_p90']} "
              f"max={s['downtime_max']} "
              f"({s['trials_per_sec']:.0f} trials/s)")

    for policy, s in policies.items():
        # Every policy must actually exercise recovery at this scale.
        assert s["detected"] > 0, policy
        # Recovered implies measured-clean: success is *defined* by an empty
        # golden diff, so these must agree exactly.
        assert s["recovered"] == s["clean"], policy
    # The acceptance bar rides on the full escalation ladder.
    assert policies["ladder"]["clean_rate"] >= 0.90
    # Micro-reboot replays the golden suffix from a whole-machine rung, so
    # divergence-free recovery is structural, not statistical.
    assert policies["microreboot"]["divergent"] == 0
