"""Fault-sensitivity ablations: per-register structure and memory faults.

Two more studies the paper's aggregate numbers sit on top of:

* per-register and per-bit-band sensitivity (which architectural state
  manifests/detects how) over the main campaign's records;
* an uncorrected-*memory*-fault campaign (the residual class the paper
  excludes because "combinational logic circuits in CPU are usually not
  protected by ECC" while memory is) — how the same detection stack fares
  when the corruption pre-exists in hypervisor structures.
"""

from __future__ import annotations

import pytest

from repro import rng as rng_mod
from repro.analysis import (
    ComparisonTable,
    coverage_by_technique,
)
from repro.analysis.sensitivity import bit_band_sensitivity, register_sensitivity
from repro.faults import MemoryFaultModel, capture_golden, run_memory_trial
from repro.hypervisor import XenHypervisor
from repro.workloads import VirtMode, WorkloadGenerator, get_profile

from conftest import scaled


def test_register_sensitivity_regenerate(benchmark, campaign_result):
    rows = benchmark(lambda: register_sensitivity(campaign_result.records))
    print("\nPer-register fault sensitivity (campaign records):")
    for label in sorted(rows, key=lambda k: -rows[k].manifestation_rate):
        print("  " + rows[label].row())
    bands = bit_band_sensitivity(campaign_result.records)
    print("\nPer-bit-band sensitivity:")
    for label in ("0-15", "16-31", "32-47", "48-63"):
        if label in bands:
            print("  " + bands[label].row())


def test_rip_and_rsp_are_the_most_lethal(campaign_result):
    rows = register_sensitivity(campaign_result.records)
    ordinary = [r for name, r in rows.items() if name in ("r14", "r15")]
    for critical in ("rip", "rsp"):
        if critical in rows:
            for baseline in ordinary:
                assert (
                    rows[critical].manifestation_rate
                    > baseline.manifestation_rate
                )


@pytest.fixture(scope="module")
def memory_campaign(trained_bundle):
    """A memory-fault campaign over the benchmark mixes."""
    hv = XenHypervisor(seed=88)
    model = MemoryFaultModel()
    records = []
    n_per = max(20, scaled(300))
    for bench in ("postmark", "mcf", "bzip2", "x264"):
        generator = WorkloadGenerator(
            get_profile(bench), VirtMode.PV,
            seed=rng_mod.derive_seed(88, "memcampaign", bench),
        )
        fault_rng = rng_mod.stream(88, "memfaults", bench)
        hv.reset()
        stride = 7  # one target activation + six follow-ups
        stream = generator.activations((n_per // 2) * stride)
        for g in range(n_per // 2):
            activation = stream[g * stride]
            follows = tuple(stream[g * stride + 1 : (g + 1) * stride])
            golden = capture_golden(hv, activation, follows)
            for _ in range(2):
                fault = model.sample(fault_rng, hv.layout)
                records.append(
                    run_memory_trial(
                        hv, activation, fault,
                        detector=trained_bundle.detector,
                        golden=golden, benchmark=bench,
                        followups=follows,
                    )
                )
            hv.restore(golden.checkpoint)
            hv.execute(activation)
    return tuple(records)


def test_memory_campaign_regenerate(benchmark, memory_campaign, campaign_result):
    summary = benchmark(
        lambda: (
            coverage_by_technique(memory_campaign),
            coverage_by_technique(campaign_result.records),
        )
    )
    mem, reg = summary
    table = ComparisonTable("Memory faults vs register faults (extension)")
    table.add("trials", f"{len(campaign_result)} (register)", f"{len(memory_campaign)} (memory)")
    table.add_percent("manifestation rate",
                      reg.total / len(campaign_result),
                      mem.total / len(memory_campaign))
    table.add_percent("coverage (register)", None, reg.coverage)
    table.add_percent("coverage (memory)", None, mem.coverage)
    print("\n" + table.render())


def test_memory_faults_manifest_less_often(memory_campaign, campaign_result):
    """Most memory words are cold within one activation window, so the
    manifestation rate sits below the register campaign's."""
    mem_rate = coverage_by_technique(memory_campaign).total / len(memory_campaign)
    reg_rate = coverage_by_technique(campaign_result.records).total / len(
        campaign_result
    )
    assert mem_rate < reg_rate


def test_memory_faults_largely_bypass_xentry(memory_campaign):
    """The finding this ablation exists for: Xentry's techniques target
    *in-flight CPU* faults — pre-existing memory corruption mostly delivers
    plausible values through legal control flow, so coverage collapses
    relative to the register campaign.  This is the quantitative argument
    for the paper's scoping ("memory is protected by ECC"): detection-based
    schemes do not substitute for it."""
    cov = coverage_by_technique(memory_campaign)
    if cov.total >= 20:
        assert cov.coverage < 0.6          # far below the register campaign
        assert cov.coverage > 0.02         # but the assertions still bite
