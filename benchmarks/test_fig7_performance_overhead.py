"""Fig. 7 — Normalized performance overhead of Xentry (fault-free mode).

Paper: ten runs per benchmark on a Xeon E5506 testbed, normalized to
unmodified Xen 4.1.2.  Runtime detection alone is nearly free; runtime + VM
transition detection averages 2.5%, with mcf/bzip2/freqmine/canneal below 1%
(bzip2 as low as 0.19% average) and postmark worst at 11.7% max.
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonTable, PerfOverheadModel
from repro.workloads import BENCHMARKS, get_profile


@pytest.fixture(scope="module")
def overhead_model(deployed_detector) -> PerfOverheadModel:
    """Overhead model parameterized by the *deployed* detector's real
    traversal statistics (mean comparisons per VM entry during the campaign)."""
    mean_cmp = deployed_detector.mean_comparisons or 9.0
    return PerfOverheadModel(tree_comparisons=mean_cmp)


def run_study(model: PerfOverheadModel):
    return {p.name: model.study(p, seed=4) for p in BENCHMARKS}


def test_fig7_regenerate(benchmark, overhead_model):
    studies = benchmark(run_study, overhead_model)
    print("\nFig. 7 — normalized performance overhead (10 runs per benchmark)")
    for study in studies.values():
        print(study.row())
    average = sum(s.mean_full for s in studies.values()) / len(studies)
    table = ComparisonTable("Fig. 7 headline numbers")
    table.add_percent("average overhead (full Xentry)", 0.025, average)
    table.add_percent("bzip2 average", 0.0019, studies["bzip2"].mean_full)
    table.add_percent("postmark max", 0.117, studies["postmark"].max_full)
    table.add("runtime-only overhead", "very small",
              f"{max(s.mean_runtime_only for s in studies.values()):.3%} worst")
    print("\n" + table.render())


def test_average_overhead_in_paper_band(overhead_model):
    studies = run_study(overhead_model)
    average = sum(s.mean_full for s in studies.values()) / len(studies)
    assert 0.003 < average < 0.08  # around the paper's 2.5%


def test_postmark_is_worst_bzip2_is_best(overhead_model):
    studies = run_study(overhead_model)
    assert studies["postmark"].mean_full == max(s.mean_full for s in studies.values())
    assert studies["bzip2"].mean_full == min(s.mean_full for s in studies.values())


def test_cpu_bound_benchmarks_below_one_percent(overhead_model):
    """mcf, bzip2 and canneal all sit below 1% average in the paper."""
    studies = run_study(overhead_model)
    for name in ("mcf", "bzip2", "canneal"):
        assert studies[name].mean_full < 0.012, name


def test_runtime_only_nearly_free(overhead_model):
    """The shaded Fig. 7 bars: assertions alone cost almost nothing."""
    studies = run_study(overhead_model)
    for study in studies.values():
        assert study.mean_runtime_only < 0.004


def test_max_exceeds_mean(overhead_model):
    """Run-to-run variance: the whisker sits above the average bar."""
    studies = run_study(overhead_model)
    assert any(s.max_full > 1.5 * s.mean_full for s in studies.values())
