"""Fig. 3 — The frequency of hypervisor activities.

Paper: box plots of per-second hypervisor activation rates for six benchmarks
under para-virtualization and hardware-assisted virtualization.  Headline
numbers: PV rates generally between 5,000/s and 100,000/s with freqmine
peaking around 650,000/s; HVM rates mostly between 2,000/s and 10,000/s; PV
consistently higher than HVM.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import BoxStats, ComparisonTable, ascii_boxplot
from repro.workloads import BENCHMARKS, VirtMode, WorkloadGenerator

MEASURE_SECONDS = 600


def measure_rates() -> dict[tuple[str, VirtMode], BoxStats]:
    out: dict[tuple[str, VirtMode], BoxStats] = {}
    for profile in BENCHMARKS:
        for mode in VirtMode:
            generator = WorkloadGenerator(profile, mode, seed=3)
            out[(profile.name, mode)] = BoxStats.from_samples(
                generator.rate_per_second(MEASURE_SECONDS)
            )
    return out


@pytest.fixture(scope="module")
def rates() -> dict[tuple[str, VirtMode], BoxStats]:
    return measure_rates()


def test_fig3_regenerate(benchmark, rates):
    """Regenerate the Fig. 3 box-plot statistics and print them."""
    result = benchmark(measure_rates)
    print("\nFig. 3 — hypervisor activation frequency (activations/second)")
    header = f"{'benchmark':<14} {'min':>12} {'q25':>12} {'median':>12} {'q75':>12} {'max':>12}"
    for mode in VirtMode:
        print(f"\n[{mode.value}]")
        print(header)
        for profile in BENCHMARKS:
            print(result[(profile.name, mode)].row(profile.name))
        print()
        print(ascii_boxplot(
            {p.name: result[(p.name, mode)] for p in BENCHMARKS}
        ))
    table = ComparisonTable("Fig. 3 headline numbers")
    pv_medians = [result[(p.name, VirtMode.PV)].median for p in BENCHMARKS]
    table.add("PV typical range", "5k-100k/s",
              f"{min(pv_medians):,.0f}-{max(r.q75 for k, r in result.items() if k[1] is VirtMode.PV):,.0f}/s")
    table.add("freqmine peak", "~650,000/s",
              f"{result[('freqmine', VirtMode.PV)].maximum:,.0f}/s")
    hvm_medians = [result[(p.name, VirtMode.HVM)].median for p in BENCHMARKS]
    table.add("HVM typical range", "2k-10k/s",
              f"{min(hvm_medians):,.0f}-{max(hvm_medians):,.0f}/s")
    print("\n" + table.render())


def test_pv_medians_within_paper_band(rates):
    for profile in BENCHMARKS:
        median = rates[(profile.name, VirtMode.PV)].median
        assert 5_000 <= median <= 100_000, profile.name


def test_hvm_medians_within_paper_band(rates):
    for profile in BENCHMARKS:
        median = rates[(profile.name, VirtMode.HVM)].median
        assert 1_500 <= median <= 12_000, profile.name


def test_pv_exceeds_hvm_for_every_benchmark(rates):
    """Section II.B: para-virtualization has generally higher frequencies."""
    for profile in BENCHMARKS:
        assert (
            rates[(profile.name, VirtMode.PV)].median
            > rates[(profile.name, VirtMode.HVM)].median
        )


def test_freqmine_reaches_the_peak(rates):
    """The paper's 650k/s peak is in freqmine's tail."""
    stats = rates[("freqmine", VirtMode.PV)]
    assert stats.maximum > 250_000
    assert stats.maximum == max(
        rates[(p.name, VirtMode.PV)].maximum for p in BENCHMARKS
    )
