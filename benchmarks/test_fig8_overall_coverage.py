"""Fig. 8 — Overall detection results.

Paper: 30,000 injections of which ~17,700 manifest; overall coverage up to
99.4% with a 97.6% average; 85.1% of manifested faults detected by hardware
exceptions, 5.2% by software assertions, 6.9% by VM transition detection.
"""

from __future__ import annotations

from repro.analysis import (
    ComparisonTable,
    ascii_stacked_bars,
    coverage_by_benchmark,
    coverage_by_technique,
)
from repro.faults.outcomes import DetectionTechnique


def test_fig8_regenerate(benchmark, campaign_result):
    """Aggregate the campaign into the Fig. 8 stacked-bar table."""
    result = benchmark(lambda: coverage_by_benchmark(campaign_result.records))
    print(f"\nFig. 8 — overall detection results "
          f"({len(campaign_result)} injections, "
          f"{len(campaign_result.manifested)} manifested)")
    for name, cov in result.items():
        print(cov.row(name))
    print()
    print(ascii_stacked_bars({
        name: [
            ("hw", cov.share(DetectionTechnique.HW_EXCEPTION)),
            ("assert", cov.share(DetectionTechnique.SW_ASSERTION)),
            ("transition", cov.share(DetectionTechnique.VM_TRANSITION)),
            ("undetected", cov.share(DetectionTechnique.UNDETECTED)),
        ]
        for name, cov in result.items()
        if name != "AVG"
    }))
    avg = result["AVG"]
    table = ComparisonTable("Fig. 8 headline numbers")
    table.add_percent("average coverage", 0.976, avg.coverage)
    table.add_percent("best-benchmark coverage", 0.994,
                      max(c.coverage for n, c in result.items() if n != "AVG"))
    table.add_percent("hw-exception share", 0.851,
                      avg.share(DetectionTechnique.HW_EXCEPTION))
    table.add_percent("sw-assertion share", 0.052,
                      avg.share(DetectionTechnique.SW_ASSERTION))
    table.add_percent("vm-transition share", 0.069,
                      avg.share(DetectionTechnique.VM_TRANSITION))
    print("\n" + table.render())


def test_hw_exceptions_dominate(campaign_result):
    """'Most of errors (85.1%) are detected by the hardware exceptions'."""
    cov = coverage_by_technique(campaign_result.records)
    assert cov.share(DetectionTechnique.HW_EXCEPTION) > 0.5
    assert cov.share(DetectionTechnique.HW_EXCEPTION) > cov.share(
        DetectionTechnique.SW_ASSERTION
    )
    assert cov.share(DetectionTechnique.HW_EXCEPTION) > cov.share(
        DetectionTechnique.VM_TRANSITION
    )


def test_every_technique_contributes(campaign_result):
    cov = coverage_by_technique(campaign_result.records)
    for technique in (
        DetectionTechnique.HW_EXCEPTION,
        DetectionTechnique.SW_ASSERTION,
        DetectionTechnique.VM_TRANSITION,
    ):
        assert cov.share(technique) > 0.005, technique


def test_overall_coverage_is_high(campaign_result):
    """Average coverage within the high band the paper reports (ours is a
    few points below 97.6% — see EXPERIMENTS.md for the deviation analysis)."""
    cov = coverage_by_technique(campaign_result.records)
    assert cov.coverage > 0.80


def test_substantial_fraction_of_injections_manifest(campaign_result):
    """Paper: 17,700 of 30,000 injections caused failures or corruptions.

    Ours manifests a smaller share (most flips land in dead register slices
    of short handlers), but the population must be large enough for stable
    percentages.
    """
    assert len(campaign_result.manifested) > 0.1 * len(campaign_result)
