"""Machine-level trial throughput: the fault-injection hot path.

Measures trials/sec on a fixed-seed workload shaped like the campaign's
inner loop — capture a golden run, then execute a batch of injected trials
against it — plus the per-trial state-reset cost (restore µs) and the
golden-prefix fast-forward hit rate.  A machine-readable summary is written
to ``BENCH_machine.json`` next to this file (override with
``REPRO_BENCH_OUTPUT``).

The harness deliberately runs unmodified on the pre-optimization code
(feature-detecting the ladder/fast-forward and translation-cache APIs), so
both committed baselines were produced by this exact file against their
pre-change trees.  Two gates: the checkpoint/fast-forward work must hold
≥ 3× the interpreter-era baseline, and the basic-block translation cache
must hold ≥ 1.5× the pre-translation tree (plus carry > 50% of retired
instructions, so the cache can't "pass" by staying cold).  The summary
records translation telemetry — blocks compiled, block-dispatch hit rate,
and the translated/interpreted instruction mix.  CI runs this as a
non-blocking perf smoke because absolute throughput varies across machines.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.faults import FaultModel, capture_golden, run_trial
from repro.hypervisor import Activation, REGISTRY, XenHypervisor

from benchmarks.conftest import SEED, scaled

N_GOLDENS = 6
#: Campaign-scale trial counts (production campaigns run thousands of
#: injections per golden): warmth-gated trace compilation only amortizes
#: at this scale, so benchmarking at toy trial counts would measure
#: compile overhead instead of the steady state campaigns actually see.
TRIALS_PER_GOLDEN = scaled(800)
LADDER_INTERVAL = 32

#: trials/sec of this exact harness against the pre-change implementation
#: (full-copy checkpoints, no resumable core, pre-optimization interpreter),
#: measured on the same machine that produced the committed
#: ``BENCH_machine.json``.  Moves only when the benchmark shape changes;
#: re-measured at the 4800-trial shape (best of repeated fresh-process
#: runs) when the translation-cache PR scaled the workload up.
BASELINE_TRIALS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_MACHINE_BASELINE", "741.8")
)
TARGET_SPEEDUP = 3.0

#: trials/sec of the checkpoint/fast-forward tree *before* the basic-block
#: translation cache landed, same machine and 4800-trial shape as above
#: (best of repeated fresh-process runs).  The translation work gates
#: against this.
TRANSLATION_BASELINE_TRIALS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_TRANSLATION_BASELINE", "2315.7")
)
TRANSLATION_TARGET_SPEEDUP = 1.5

OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_machine.json")
)


def _capture(hv: XenHypervisor, activation: Activation, followups):
    """Golden capture, with the fast-forward ladder when the tree has it."""
    try:
        return capture_golden(
            hv, activation, followups, ladder_interval=LADDER_INTERVAL
        )
    except TypeError:  # pre-change tree: no ladder support
        return capture_golden(hv, activation, followups)


def _run_workload(hv: XenHypervisor):
    """The fixed-seed trial workload; returns (records, elapsed_seconds)."""
    rng = np.random.default_rng(SEED)
    model = FaultModel()
    reasons = [r for r in REGISTRY if r.name in (
        "mmu_update", "grant_table_op", "sched_op", "page_fault", "memory_op",
        "tmem_op",
    )]
    assert len(reasons) == N_GOLDENS
    records = []
    t0 = time.perf_counter()
    for g in range(N_GOLDENS):
        reason = reasons[g % len(reasons)]
        activation = Activation(
            vmer=reason.vmer, args=(8 + g, 1), domain_id=1, seq=g
        )
        golden = _capture(hv, activation, ())
        for _ in range(TRIALS_PER_GOLDEN):
            fault = model.sample(rng, run_length=golden.result.instructions)
            records.append(run_trial(hv, activation, fault, golden=golden))
    return records, time.perf_counter() - t0


def _restore_microseconds(hv: XenHypervisor) -> float | None:
    """Mean per-trial state-reset cost, new (COW) path only."""
    if not hasattr(hv, "capture_machine"):
        return None
    activation = Activation(
        vmer=REGISTRY.by_name("mmu_update").vmer, args=(8, 1), domain_id=1, seq=0
    )
    golden = _capture(hv, activation, ())
    rung = golden.ladder[len(golden.ladder) // 2]
    n = 200
    t0 = time.perf_counter()
    for _ in range(n):
        hv.restore_machine(rung)
    return (time.perf_counter() - t0) / n * 1e6


def test_machine_trial_throughput():
    hv = XenHypervisor(seed=SEED)
    # Age the platform the way the campaign does before taking goldens.
    for i, reason in enumerate(list(REGISTRY)[:5]):
        hv.execute(Activation(vmer=reason.vmer, args=(3, 1), domain_id=1, seq=i))

    records, elapsed = _run_workload(hv)
    trials_per_sec = len(records) / elapsed

    ff = getattr(hv, "ff_stats", None)
    # Block-cache telemetry, feature-detected so the harness still runs
    # against the pre-translation tree to (re)measure its baseline.
    tstats = (
        hv.translation_stats() if hasattr(hv, "translation_stats") else None
    )
    translated = interpreted = 0
    if tstats:
        translated = tstats["translated_instructions"]
        interpreted = tstats["interpreted_instructions"]
    summary = {
        "format": "xentry-bench-machine-v1",
        "seed": SEED,
        "n_trials": len(records),
        "elapsed_seconds": elapsed,
        "trials_per_sec": trials_per_sec,
        "ladder_interval": LADDER_INTERVAL,
        "restore_microseconds": _restore_microseconds(hv),
        "fast_forward": (
            {
                "hit_rate": ff["fast_forwarded"] / max(1, ff["trials"]),
                "instructions_skipped": ff["instructions_skipped"],
            }
            if ff
            else None
        ),
        "translation": (
            {
                "blocks_compiled": tstats["blocks_compiled"],
                "block_executions": tstats["block_executions"],
                "block_hit_rate": tstats["block_hit_rate"],
                "translated_instructions": translated,
                "interpreted_instructions": interpreted,
                "translated_share": (
                    translated / (translated + interpreted)
                    if translated + interpreted
                    else 0.0
                ),
            }
            if tstats
            else None
        ),
        "baseline_trials_per_sec": BASELINE_TRIALS_PER_SEC or None,
        "speedup_vs_baseline": (
            trials_per_sec / BASELINE_TRIALS_PER_SEC
            if BASELINE_TRIALS_PER_SEC
            else None
        ),
        "translation_baseline_trials_per_sec": (
            TRANSLATION_BASELINE_TRIALS_PER_SEC or None
        ),
        "speedup_vs_translation_baseline": (
            trials_per_sec / TRANSLATION_BASELINE_TRIALS_PER_SEC
            if TRANSLATION_BASELINE_TRIALS_PER_SEC
            else None
        ),
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nmachine trial throughput — {len(records)} trials, seed {SEED}")
    print(f"  trials/sec:        {trials_per_sec:10.1f}")
    if summary["restore_microseconds"] is not None:
        print(f"  restore:           {summary['restore_microseconds']:10.2f} µs")
    if ff:
        print(f"  fast-forward hits: {ff['fast_forwarded']}/{ff['trials']} "
              f"({summary['fast_forward']['hit_rate']:.0%}), "
              f"{ff['instructions_skipped']:,} instructions skipped")
    if tstats:
        tr = summary["translation"]
        print(f"  block cache:       {tr['blocks_compiled']} blocks compiled, "
              f"hit rate {tr['block_hit_rate']:.1%}")
        print(f"  instruction mix:   {translated:,} translated / "
              f"{interpreted:,} interpreted "
              f"({tr['translated_share']:.1%} translated)")
    if BASELINE_TRIALS_PER_SEC:
        speedup = summary["speedup_vs_baseline"]
        print(f"  vs baseline:       {speedup:9.2f}x "
              f"(baseline {BASELINE_TRIALS_PER_SEC:.1f} t/s)")
        assert speedup >= TARGET_SPEEDUP, (
            f"trial hot path regressed: {speedup:.2f}x < {TARGET_SPEEDUP}x "
            f"over the pre-change baseline"
        )
    if tstats and TRANSLATION_BASELINE_TRIALS_PER_SEC:
        tspeedup = summary["speedup_vs_translation_baseline"]
        print(f"  vs pre-translate:  {tspeedup:9.2f}x "
              f"(baseline {TRANSLATION_BASELINE_TRIALS_PER_SEC:.1f} t/s)")
        assert tspeedup >= TRANSLATION_TARGET_SPEEDUP, (
            f"translation cache underdelivered: {tspeedup:.2f}x < "
            f"{TRANSLATION_TARGET_SPEEDUP}x over the pre-translation baseline"
        )
        # The cache must actually carry the workload, not just exist.
        assert summary["translation"]["translated_share"] > 0.5
    # The optimization must never change the science: every trial still
    # classifies, and the fast-forward path serves (nearly) all of them.
    assert all(r.benchmark == "" for r in records)
    if ff:
        assert ff["fast_forwarded"] == ff["trials"]
