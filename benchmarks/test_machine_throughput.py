"""Machine-level trial throughput: the fault-injection hot path.

Measures trials/sec on a fixed-seed workload shaped like the campaign's
inner loop — capture a golden run, then execute a batch of injected trials
against it — plus the per-trial state-reset cost (restore µs) and the
golden-prefix fast-forward hit rate.  A machine-readable summary is written
to ``BENCH_machine.json`` next to this file (override with
``REPRO_BENCH_OUTPUT``).

The harness deliberately runs unmodified on the pre-optimization code
(feature-detecting the ladder/fast-forward, translation-cache and
lock-step batch APIs), so every committed baseline was produced by this
exact file against its pre-change tree.  An untimed warm-up pass runs the
whole workload once first, so the timed region measures the steady state
campaigns actually see (production pool workers are pre-warmed at fork
and the translation cache is process-wide); the baselines were all
re-measured through the same warm-up.  Three gates: the
checkpoint/fast-forward work must hold ≥ 3× the interpreter-era baseline,
the basic-block translation cache must hold ≥ 1.5× the pre-translation
tree (plus carry > 50% of retired instructions, so the cache can't "pass"
by staying cold), and lock-step twin batching must hold ≥ 2× the
pre-lockstep tree.  The summary records translation telemetry (blocks
compiled, block-dispatch hit rate, instruction mix) and a ``lockstep``
section (twins batched, dead/peel split, synthesized instructions, proved
hangs).  CI runs this as a non-blocking perf smoke because absolute
throughput varies across machines.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.faults import FaultModel, capture_golden, run_trial
from repro.hypervisor import Activation, REGISTRY, XenHypervisor

try:  # pre-lockstep tree: no twin-batch API — per-trial loop below
    from repro.faults import run_twin_batch
except ImportError:
    run_twin_batch = None

from benchmarks.conftest import SEED, scaled

N_GOLDENS = 6
#: Campaign-scale trial counts (production campaigns run thousands of
#: injections per golden): warmth-gated trace compilation only amortizes
#: at this scale, so benchmarking at toy trial counts would measure
#: compile overhead instead of the steady state campaigns actually see.
TRIALS_PER_GOLDEN = scaled(800)
LADDER_INTERVAL = 32

#: trials/sec of this exact harness against the pre-change implementation
#: (full-copy checkpoints, no resumable core, pre-optimization interpreter),
#: measured on the same machine that produced the committed
#: ``BENCH_machine.json``.  Moves only when the benchmark shape changes;
#: all three baselines below were re-measured (best of repeated
#: fresh-process runs) when the lock-step PR added the untimed warm-up
#: pass, so every number is a steady-state figure from this exact file.
BASELINE_TRIALS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_MACHINE_BASELINE", "810.6")
)
TARGET_SPEEDUP = 3.0

#: trials/sec of the checkpoint/fast-forward tree *before* the basic-block
#: translation cache landed, same machine, harness and 4800-trial shape as
#: above.  The translation work gates against this.
TRANSLATION_BASELINE_TRIALS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_TRANSLATION_BASELINE", "2801.1")
)
TRANSLATION_TARGET_SPEEDUP = 1.5

#: trials/sec of the translation-cache tree *before* lock-step twin
#: batching landed, same machine, harness and 4800-trial shape as above —
#: this exact harness file (warm-up pass included) run against the
#: pre-lockstep tree in fresh processes; the feature detection above
#: takes the per-trial path there.  The twin-batch work gates against
#: this steady-state figure, not the colder 3688.8 t/s the pre-lockstep
#: tree recorded without the warm-up pass.
LOCKSTEP_BASELINE_TRIALS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_LOCKSTEP_BASELINE", "5296.4")
)
LOCKSTEP_TARGET_SPEEDUP = 2.0

OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_machine.json")
)


def _capture(hv: XenHypervisor, activation: Activation, followups):
    """Golden capture, with the fast-forward ladder when the tree has it."""
    try:
        return capture_golden(
            hv, activation, followups, ladder_interval=LADDER_INTERVAL
        )
    except TypeError:  # pre-change tree: no ladder support
        return capture_golden(hv, activation, followups)


def _run_workload(hv: XenHypervisor):
    """The fixed-seed trial workload; returns (records, elapsed_seconds)."""
    rng = np.random.default_rng(SEED)
    model = FaultModel()
    reasons = [r for r in REGISTRY if r.name in (
        "mmu_update", "grant_table_op", "sched_op", "page_fault", "memory_op",
        "tmem_op",
    )]
    assert len(reasons) == N_GOLDENS
    records = []
    t0 = time.perf_counter()
    for g in range(N_GOLDENS):
        reason = reasons[g % len(reasons)]
        activation = Activation(
            vmer=reason.vmer, args=(8 + g, 1), domain_id=1, seq=g
        )
        golden = _capture(hv, activation, ())
        # Fault sampling is hoisted out of the trial loop either way, so
        # the RNG stream — and therefore the trial set — is identical on
        # trees with and without the twin-batch API.
        faults = [
            model.sample(rng, run_length=golden.result.instructions)
            for _ in range(TRIALS_PER_GOLDEN)
        ]
        if run_twin_batch is not None:
            records.extend(
                run_twin_batch(hv, activation, faults, golden=golden)
            )
        else:
            for fault in faults:
                records.append(run_trial(hv, activation, fault, golden=golden))
    return records, time.perf_counter() - t0


def _restore_microseconds(hv: XenHypervisor) -> float | None:
    """Mean per-trial state-reset cost, new (COW) path only."""
    if not hasattr(hv, "capture_machine"):
        return None
    activation = Activation(
        vmer=REGISTRY.by_name("mmu_update").vmer, args=(8, 1), domain_id=1, seq=0
    )
    golden = _capture(hv, activation, ())
    rung = golden.ladder[len(golden.ladder) // 2]
    n = 200
    t0 = time.perf_counter()
    for _ in range(n):
        hv.restore_machine(rung)
    return (time.perf_counter() - t0) / n * 1e6


def _aged_machine() -> XenHypervisor:
    hv = XenHypervisor(seed=SEED)
    # Age the platform the way the campaign does before taking goldens.
    for i, reason in enumerate(list(REGISTRY)[:5]):
        hv.execute(Activation(vmer=reason.vmer, args=(3, 1), domain_id=1, seq=i))
    return hv


def test_machine_trial_throughput():
    # Untimed warm-up: one full pass on a throwaway machine, so the timed
    # region below measures the steady state campaigns actually see.
    # Production pool workers are pre-warmed at fork (engine/pool.py
    # ``warm_worker``) and the translation cache is process-wide, so heat
    # carries across machines; without this pass the measurement would be
    # dominated by one-time trace compilation and heat-gate crossings.
    _run_workload(_aged_machine())

    hv = _aged_machine()
    records, elapsed = _run_workload(hv)
    trials_per_sec = len(records) / elapsed

    ff = getattr(hv, "ff_stats", None)
    ls = getattr(hv, "lockstep_stats", None)
    proved_hangs = sum(getattr(c, "proved_hangs", 0) for c in hv.cores)
    proved_hang_instructions = sum(
        getattr(c, "proved_hang_instructions", 0) for c in hv.cores
    )
    # Block-cache telemetry, feature-detected so the harness still runs
    # against the pre-translation tree to (re)measure its baseline.
    tstats = (
        hv.translation_stats() if hasattr(hv, "translation_stats") else None
    )
    translated = interpreted = 0
    if tstats:
        translated = tstats["translated_instructions"]
        interpreted = tstats["interpreted_instructions"]
    summary = {
        "format": "xentry-bench-machine-v1",
        "seed": SEED,
        "n_trials": len(records),
        "elapsed_seconds": elapsed,
        "trials_per_sec": trials_per_sec,
        "ladder_interval": LADDER_INTERVAL,
        "restore_microseconds": _restore_microseconds(hv),
        "fast_forward": (
            {
                "hit_rate": ff["fast_forwarded"] / max(1, ff["trials"]),
                "instructions_skipped": ff["instructions_skipped"],
            }
            if ff
            else None
        ),
        "translation": (
            {
                "blocks_compiled": tstats["blocks_compiled"],
                "block_executions": tstats["block_executions"],
                "block_hit_rate": tstats["block_hit_rate"],
                "translated_instructions": translated,
                "interpreted_instructions": interpreted,
                "translated_share": (
                    translated / (translated + interpreted)
                    if translated + interpreted
                    else 0.0
                ),
            }
            if tstats
            else None
        ),
        "lockstep": (
            {
                "twin_batches": ls["twin_batches"],
                "twins": ls["twins"],
                "dead_twins": ls["dead_twins"],
                "peeled_twins": ls["peeled_twins"],
                "dead_rate": ls["dead_twins"] / max(1, ls["twins"]),
                "peel_rate": ls["peeled_twins"] / max(1, ls["twins"]),
                "synthesized_instructions": ls["synthesized_instructions"],
                "read_ff_instructions": ls["read_ff_instructions"],
                "proved_hangs": proved_hangs,
                "proved_hang_instructions": proved_hang_instructions,
            }
            if ls and ls["twins"]
            else None
        ),
        "baseline_trials_per_sec": BASELINE_TRIALS_PER_SEC or None,
        "speedup_vs_baseline": (
            trials_per_sec / BASELINE_TRIALS_PER_SEC
            if BASELINE_TRIALS_PER_SEC
            else None
        ),
        "translation_baseline_trials_per_sec": (
            TRANSLATION_BASELINE_TRIALS_PER_SEC or None
        ),
        "speedup_vs_translation_baseline": (
            trials_per_sec / TRANSLATION_BASELINE_TRIALS_PER_SEC
            if TRANSLATION_BASELINE_TRIALS_PER_SEC
            else None
        ),
        "lockstep_baseline_trials_per_sec": (
            LOCKSTEP_BASELINE_TRIALS_PER_SEC or None
        ),
        "speedup_vs_lockstep_baseline": (
            trials_per_sec / LOCKSTEP_BASELINE_TRIALS_PER_SEC
            if LOCKSTEP_BASELINE_TRIALS_PER_SEC
            else None
        ),
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nmachine trial throughput — {len(records)} trials, seed {SEED}")
    print(f"  trials/sec:        {trials_per_sec:10.1f}")
    if summary["restore_microseconds"] is not None:
        print(f"  restore:           {summary['restore_microseconds']:10.2f} µs")
    if ff:
        print(f"  fast-forward hits: {ff['fast_forwarded']}/{ff['trials']} "
              f"({summary['fast_forward']['hit_rate']:.0%}), "
              f"{ff['instructions_skipped']:,} instructions skipped")
    if tstats:
        tr = summary["translation"]
        print(f"  block cache:       {tr['blocks_compiled']} blocks compiled, "
              f"hit rate {tr['block_hit_rate']:.1%}")
        print(f"  instruction mix:   {translated:,} translated / "
              f"{interpreted:,} interpreted "
              f"({tr['translated_share']:.1%} translated)")
    if summary["lockstep"]:
        lk = summary["lockstep"]
        print(f"  twin batching:     {lk['twins']} twins in "
              f"{lk['twin_batches']} batches — {lk['dead_twins']} dead "
              f"({lk['dead_rate']:.0%}), {lk['peeled_twins']} peeled; "
              f"{lk['synthesized_instructions']:,} instructions synthesized")
        print(f"  proved hangs:      {lk['proved_hangs']} "
              f"({lk['proved_hang_instructions']:,} instructions skipped)")
    if BASELINE_TRIALS_PER_SEC:
        speedup = summary["speedup_vs_baseline"]
        print(f"  vs baseline:       {speedup:9.2f}x "
              f"(baseline {BASELINE_TRIALS_PER_SEC:.1f} t/s)")
        assert speedup >= TARGET_SPEEDUP, (
            f"trial hot path regressed: {speedup:.2f}x < {TARGET_SPEEDUP}x "
            f"over the pre-change baseline"
        )
    if tstats and TRANSLATION_BASELINE_TRIALS_PER_SEC:
        tspeedup = summary["speedup_vs_translation_baseline"]
        print(f"  vs pre-translate:  {tspeedup:9.2f}x "
              f"(baseline {TRANSLATION_BASELINE_TRIALS_PER_SEC:.1f} t/s)")
        assert tspeedup >= TRANSLATION_TARGET_SPEEDUP, (
            f"translation cache underdelivered: {tspeedup:.2f}x < "
            f"{TRANSLATION_TARGET_SPEEDUP}x over the pre-translation baseline"
        )
        # The cache must actually carry the workload, not just exist.
        assert summary["translation"]["translated_share"] > 0.5
    if summary["lockstep"] and LOCKSTEP_BASELINE_TRIALS_PER_SEC:
        lspeedup = summary["speedup_vs_lockstep_baseline"]
        print(f"  vs pre-lockstep:   {lspeedup:9.2f}x "
              f"(baseline {LOCKSTEP_BASELINE_TRIALS_PER_SEC:.1f} t/s)")
        assert lspeedup >= LOCKSTEP_TARGET_SPEEDUP, (
            f"twin batching underdelivered: {lspeedup:.2f}x < "
            f"{LOCKSTEP_TARGET_SPEEDUP}x over the pre-lockstep baseline"
        )
        # The scan must actually settle twins, not just exist.
        assert summary["lockstep"]["dead_twins"] > 0
    # The optimization must never change the science: every trial still
    # classifies, and the fast-forward path serves (nearly) all of them.
    assert all(r.benchmark == "" for r in records)
    if ff:
        assert ff["fast_forwarded"] == ff["trials"]
