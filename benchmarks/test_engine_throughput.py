"""Campaign-engine throughput: trials/sec serial vs ``--jobs 2/4``.

Measures the same campaign executed three ways — the serial
``FaultInjectionCampaign`` loop, and the sharded engine with 2 and 4 worker
processes — verifying bit-identical results while reporting throughput and
speedup.  A machine-readable summary is written to ``BENCH_engine.json``
next to this file (override with ``REPRO_BENCH_OUTPUT``).

Scale with ``REPRO_BENCH_SCALE`` like the other harnesses; at the default
scale this is a small campaign so the whole file stays in CI budget.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine import CampaignEngine, plan_campaign
from repro.faults import CampaignConfig, FaultInjectionCampaign

from benchmarks.conftest import SEED, scaled

N_INJECTIONS = scaled(600)
OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_engine.json")
)


def _timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - t0
    return {
        "label": label,
        "elapsed_seconds": elapsed,
        "trials": len(result),
        "trials_per_sec": len(result) / elapsed if elapsed > 0 else 0.0,
    }, result


def test_engine_throughput_and_speedup():
    config = CampaignConfig(n_injections=N_INJECTIONS, seed=SEED)
    runs = []

    serial_stats, serial = _timed(
        "serial", lambda: FaultInjectionCampaign(config).run()
    )
    runs.append(serial_stats)
    for jobs in (2, 4):
        stats, result = _timed(
            f"jobs={jobs}",
            lambda jobs=jobs: CampaignEngine(
                config, jobs=jobs, n_shards=2 * jobs
            ).run(),
        )
        # Parallelism must never change the science.
        assert result.records == serial.records
        stats["speedup_vs_serial"] = (
            serial_stats["elapsed_seconds"] / stats["elapsed_seconds"]
        )
        runs.append(stats)

    summary = {
        "format": "xentry-bench-engine-v1",
        "n_injections": len(serial),
        "n_shards_planned": plan_campaign(config, 8).n_shards,
        "seed": SEED,
        "runs": runs,
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nengine throughput — {len(serial)} injections, seed {SEED}")
    print(f"{'config':<10} {'elapsed':>9} {'trials/s':>10} {'speedup':>9}")
    for stats in runs:
        speedup = stats.get("speedup_vs_serial", 1.0)
        print(
            f"{stats['label']:<10} {stats['elapsed_seconds']:8.2f}s "
            f"{stats['trials_per_sec']:10.1f} {speedup:8.2f}x"
        )
    print(f"summary written to {OUTPUT}")

    # Sanity floor, not a strict scaling claim: pooled runs must at least
    # not collapse (worker startup amortized over the campaign).
    pooled = runs[1]
    assert pooled["trials_per_sec"] > 0.3 * serial_stats["trials_per_sec"]
