"""Campaign-engine throughput: serial vs ``--jobs``, cold vs warm cache.

Measures the same campaign executed several ways — the serial
``FaultInjectionCampaign`` loop, the sharded engine with 2 and 4 worker
processes, and the 4-worker engine against a cold then warm golden artifact
cache — verifying bit-identical results while reporting throughput and
speedup.  A machine-readable summary is written to ``BENCH_engine.json``
next to this file (override with ``REPRO_BENCH_OUTPUT``).

Scale with ``REPRO_BENCH_SCALE`` like the other harnesses; at the default
scale this is a small campaign so the whole file stays in CI budget.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path

from repro.engine import CampaignEngine, EngineTelemetry, plan_campaign
from repro.faults import CampaignConfig, FaultInjectionCampaign

from benchmarks.conftest import SEED, scaled

N_INJECTIONS = scaled(600)
#: Acceptance floor for the golden artifact cache: a warm 4-worker run must
#: beat the cacheless 4-worker run by this factor (zero captures + retired
#: translation pre-warm vs full capture cost).
TARGET_WARM_SPEEDUP = 1.5
OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_engine.json")
)


def _timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - t0
    return {
        "label": label,
        "elapsed_seconds": elapsed,
        "trials": len(result),
        "trials_per_sec": len(result) / elapsed if elapsed > 0 else 0.0,
    }, result


def test_engine_throughput_and_speedup():
    config = CampaignConfig(n_injections=N_INJECTIONS, seed=SEED)
    runs = []

    serial_stats, serial = _timed(
        "serial", lambda: FaultInjectionCampaign(config).run()
    )
    runs.append(serial_stats)
    for jobs in (2, 4):
        stats, result = _timed(
            f"jobs={jobs}",
            lambda jobs=jobs: CampaignEngine(
                config, jobs=jobs, n_shards=2 * jobs
            ).run(),
        )
        # Parallelism must never change the science.
        assert result.records == serial.records
        stats["speedup_vs_serial"] = (
            serial_stats["elapsed_seconds"] / stats["elapsed_seconds"]
        )
        runs.append(stats)

    # Golden artifact cache: the same 4-worker campaign against a cold then
    # a warm content-addressed cache.  The warm run must execute zero golden
    # captures (manifest hit rate 1.0) and its speedup over the no-cache
    # 4-worker run is the headline number of the cache.
    no_cache_jobs4 = runs[-1]
    with tempfile.TemporaryDirectory() as tmp:
        cached = dataclasses.replace(config, artifacts=str(Path(tmp) / "cache"))
        for phase in ("cold-cache", "warm-cache"):
            telemetry = EngineTelemetry()
            stats, result = _timed(
                f"jobs=4 {phase}",
                lambda: CampaignEngine(
                    cached, jobs=4, n_shards=8, telemetry=telemetry
                ).run(),
            )
            # The cache must never change the science either.
            assert result.records == serial.records
            cache = telemetry.golden_cache_summary()
            stats["golden_cache"] = cache
            stats["speedup_vs_serial"] = (
                serial_stats["elapsed_seconds"] / stats["elapsed_seconds"]
            )
            stats["speedup_vs_no_cache"] = (
                no_cache_jobs4["elapsed_seconds"] / stats["elapsed_seconds"]
            )
            runs.append(stats)
        assert cache["hit_rate"] == 1.0, cache
        assert cache.get("golden_misses", 0) == 0, cache
        assert runs[-1]["speedup_vs_no_cache"] >= TARGET_WARM_SPEEDUP, (
            f"warm cache regressed: {runs[-1]['speedup_vs_no_cache']:.2f}x "
            f"< {TARGET_WARM_SPEEDUP}x over the cacheless {runs[-1]['label']} run"
        )

    summary = {
        "format": "xentry-bench-engine-v2",
        "n_injections": len(serial),
        "n_shards_planned": plan_campaign(config, 8).n_shards,
        "seed": SEED,
        "runs": runs,
        "warm_cache_speedup_vs_no_cache": runs[-1]["speedup_vs_no_cache"],
        "target_warm_speedup": TARGET_WARM_SPEEDUP,
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nengine throughput — {len(serial)} injections, seed {SEED}")
    print(f"{'config':<18} {'elapsed':>9} {'trials/s':>10} {'speedup':>9}")
    for stats in runs:
        speedup = stats.get("speedup_vs_serial", 1.0)
        print(
            f"{stats['label']:<18} {stats['elapsed_seconds']:8.2f}s "
            f"{stats['trials_per_sec']:10.1f} {speedup:8.2f}x"
        )
    warm = runs[-1]
    print(
        f"warm cache vs no cache (jobs=4): "
        f"{warm['speedup_vs_no_cache']:.2f}x "
        f"(capture {warm['golden_cache'].get('golden_capture_seconds', 0.0):.2f}s, "
        f"load {warm['golden_cache'].get('golden_load_seconds', 0.0):.2f}s)"
    )
    print(f"summary written to {OUTPUT}")

    # Sanity floor, not a strict scaling claim: pooled runs must at least
    # not collapse (worker startup amortized over the campaign).
    pooled = runs[1]
    assert pooled["trials_per_sec"] > 0.3 * serial_stats["trials_per_sec"]
