"""Section III.B — classifier construction and accuracy.

Paper: training set of 12,024 samples (10,280 correct / 1,744 incorrect),
test set of 6,596 samples (5,295 / 1,301); "the random tree algorithm
achieves slightly high accuracy (98.6%) than decision tree (96.1%)"; the
deployed classifier's false positive rate is 0.7% (used in Section VI).
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonTable
from repro.ml import compile_tree


def test_sec3_regenerate(benchmark, trained_bundle):
    """Print the classifier-construction table (paper vs measured)."""

    def evaluate():
        return {
            "decision_tree": trained_bundle.decision_tree.confusion,
            "random_tree": trained_bundle.random_tree.confusion,
        }

    result = benchmark(evaluate)
    table = ComparisonTable("Section III.B — classifier accuracy")
    table.add("training set", "12,024 samples (1,744 incorrect)",
              trained_bundle.random_tree.train_set.describe())
    table.add("test set", "6,596 samples (1,301 incorrect)",
              trained_bundle.random_tree.test_set.describe())
    table.add_percent("decision tree accuracy", 0.961, result["decision_tree"].accuracy)
    table.add_percent("random tree accuracy", 0.986, result["random_tree"].accuracy)
    table.add_percent("false positive rate", 0.007,
                      result["random_tree"].false_positive_rate)
    print("\n" + table.render())
    print("\n" + trained_bundle.decision_tree.report())
    print("\n" + trained_bundle.random_tree.report())


def test_both_algorithms_reach_paper_accuracy_band(trained_bundle):
    """Both trees land in the paper's 96-99% accuracy band."""
    assert trained_bundle.decision_tree.accuracy > 0.95
    assert trained_bundle.random_tree.accuracy > 0.95


def test_random_tree_not_worse_than_decision_tree(trained_bundle):
    """The paper's ordering: random tree >= decision tree (98.6 vs 96.1)."""
    assert (
        trained_bundle.random_tree.accuracy
        >= trained_bundle.decision_tree.accuracy - 0.005
    )


def test_false_positive_rate_near_paper_operating_point(trained_bundle):
    """FP rate in the sub-1.5% band around the paper's 0.7%."""
    assert trained_bundle.random_tree.false_positive_rate < 0.015


def test_rules_compile_to_integer_comparisons(trained_bundle):
    """Section IV: the rules are 'a series of branches with conditions'."""
    rules = compile_tree(trained_bundle.random_tree.classifier)
    assert rules.n_nodes > 1
    assert rules.max_depth <= 32
    # Spot-check equivalence on the test set.
    test = trained_bundle.random_tree.test_set
    assert (
        rules.predict(test.X[:500])
        == trained_bundle.random_tree.classifier.predict(test.X[:500])
    ).all()
