"""Supervisor overhead: fault-free supervised engine vs the bare serial loop.

The supervision layer (retry accounting, chaos hooks, watchdog plumbing)
wraps every shard attempt; on a healthy campaign it must be invisible.
This harness runs the same campaign through the bare serial
``FaultInjectionCampaign`` loop and through a supervised ``CampaignEngine``
with ``jobs=1, n_shards=1`` — same process, no pool, one shard, so both
sides execute the identical trial work and the *only* delta is the
supervision wrapper (retry loop, chaos checks, journalling hooks,
telemetry).  Shard-granularity costs (per-shard warmup and golden
regeneration) belong to the planner and are measured by
``test_engine_throughput.py``, not here.  Records must be bit-identical
and the supervised run must stay within a small overhead envelope.

Each variant runs ``REPS`` times and the fastest rep is compared (min, not
mean, is the standard noise filter for micro-overhead claims).  A summary
is written to ``BENCH_supervisor.json`` (override with
``REPRO_BENCH_OUTPUT``).  Scale with ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine import CampaignEngine, RetryPolicy
from repro.faults import CampaignConfig, FaultInjectionCampaign

from benchmarks.conftest import SEED, scaled

N_INJECTIONS = scaled(600)
REPS = 3
#: Acceptance envelope: supervised fault-free throughput within 2% of serial.
MAX_OVERHEAD = 0.02
OUTPUT = Path(
    os.environ.get(
        "REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_supervisor.json"
    )
)


def _best_of(fn):
    best, result = float("inf"), None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_supervisor_overhead_is_negligible():
    config = CampaignConfig(n_injections=N_INJECTIONS, seed=SEED)

    serial_s, serial = _best_of(lambda: FaultInjectionCampaign(config).run())
    supervised_s, supervised = _best_of(
        lambda: CampaignEngine(
            config, jobs=1, n_shards=1,
            retry=RetryPolicy(max_retries=2, seed=SEED),
        ).run()
    )

    # Supervision must never change the science.
    assert supervised.records == serial.records
    assert not supervised.degraded

    overhead = supervised_s / serial_s - 1.0
    # Advisory context: how the supervised hot path sits against the
    # committed machine-throughput baseline (different machine classes make
    # this a reference point, not an assertion).
    baseline_path = Path(__file__).parent / "BENCH_machine.json"
    baseline_tps = None
    if baseline_path.exists():
        baseline_tps = json.loads(baseline_path.read_text()).get("trials_per_sec")
    summary = {
        "format": "xentry-bench-supervisor-v1",
        "n_injections": len(serial),
        "seed": SEED,
        "reps": REPS,
        "serial_seconds": serial_s,
        "supervised_seconds": supervised_s,
        "serial_trials_per_sec": len(serial) / serial_s,
        "supervised_trials_per_sec": len(supervised) / supervised_s,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "machine_baseline_trials_per_sec": baseline_tps,
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nsupervisor overhead — {len(serial)} injections, best of {REPS}")
    print(f"serial      {serial_s:8.2f}s  {len(serial) / serial_s:10.1f} trials/s")
    print(
        f"supervised  {supervised_s:8.2f}s  "
        f"{len(supervised) / supervised_s:10.1f} trials/s"
    )
    print(f"overhead    {overhead:+8.2%}  (envelope {MAX_OVERHEAD:.0%})")
    if baseline_tps:
        ratio = (len(supervised) / supervised_s) / baseline_tps
        print(f"vs machine baseline {baseline_tps:.1f} trials/s: {ratio:.2f}x")
    print(f"summary written to {OUTPUT}")

    assert overhead < MAX_OVERHEAD, (
        f"supervised fault-free run is {overhead:.2%} slower than serial "
        f"(envelope {MAX_OVERHEAD:.0%})"
    )
