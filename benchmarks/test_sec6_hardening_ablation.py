"""Section VI hardening ablation — evaluating the paper's future-work ideas.

The paper proposes two mitigations for the dominant undetected-fault classes
of Table II: duplicating values pushed to the stack and verifying them on pop
(stack values, 20%), and checking the variation between adjacent rdtsc reads
(time values, 53%).  This harness implements both (see
``repro.hypervisor.Hardening``) and measures what they buy: the change in
undetected shares, the coverage delta, and the instruction-count cost.
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonTable, coverage_by_technique, undetected_breakdown
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.faults.outcomes import UndetectedKind
from repro.hypervisor import Activation, Hardening, REGISTRY, XenHypervisor

from conftest import scaled


@pytest.fixture(scope="module")
def ablation(trained_bundle):
    """Identical campaigns on the baseline and the hardened hypervisor."""
    results = {}
    for name, hardening in (
        ("baseline", None),
        ("hardened", Hardening(stack_redundancy=True, time_variation_check=True)),
    ):
        hv = XenHypervisor(n_domains=3, seed=77, hardening=hardening)
        campaign = FaultInjectionCampaign(
            CampaignConfig(n_injections=scaled(4000), seed=77),
            detector=trained_bundle.detector,
            hypervisor=hv,
        )
        results[name] = campaign.run()
    return results


def test_sec6_ablation_regenerate(benchmark, ablation):
    summary = benchmark(
        lambda: {
            name: (
                coverage_by_technique(result.records),
                undetected_breakdown(result.records),
            )
            for name, result in ablation.items()
        }
    )
    table = ComparisonTable("Section VI hardening ablation (baseline -> hardened)")
    base_cov, base_und = summary["baseline"]
    hard_cov, hard_und = summary["hardened"]
    table.add_percent("overall coverage", base_cov.coverage, hard_cov.coverage,
                      "paper column = baseline")
    table.add_percent("undetected: time values",
                      base_und[UndetectedKind.TIME_VALUES],
                      hard_und[UndetectedKind.TIME_VALUES],
                      "share of undetected")
    table.add_percent("undetected: stack values",
                      base_und[UndetectedKind.STACK_VALUES],
                      hard_und[UndetectedKind.STACK_VALUES],
                      "share of undetected")
    print("\n" + table.render())
    base_n = sum(1 for r in ablation["baseline"].manifested if not r.detected)
    hard_n = sum(1 for r in ablation["hardened"].manifested if not r.detected)
    print(f"absolute undetected faults: baseline {base_n}, hardened {hard_n}")


def test_hardening_improves_coverage(ablation):
    base = coverage_by_technique(ablation["baseline"].records)
    hard = coverage_by_technique(ablation["hardened"].records)
    assert hard.coverage >= base.coverage - 0.01  # never meaningfully worse


def test_hardening_reduces_absolute_time_undetected(ablation):
    """The rdtsc-variation check must cut the number of undetected
    time-value faults (normalized per manifested fault)."""

    def time_miss_rate(result):
        manifested = len(result.manifested)
        misses = sum(
            1
            for r in result.manifested
            if not r.detected and r.undetected_kind is UndetectedKind.TIME_VALUES
        )
        return misses / manifested

    assert time_miss_rate(ablation["hardened"]) <= time_miss_rate(
        ablation["baseline"]
    )


def test_hardening_cost_is_bounded(trained_bundle):
    """The checks add instructions to every activation; the tax must stay
    small (the paper argues for *selective*, low-cost redundancy)."""
    plain = XenHypervisor(seed=3)
    hardened = XenHypervisor(
        seed=3, hardening=Hardening(stack_redundancy=True, time_variation_check=True)
    )
    total_plain = total_hard = 0
    for i, reason in enumerate(REGISTRY):
        act = Activation(vmer=reason.vmer, args=(3, 2), domain_id=1, seq=i)
        total_plain += plain.execute(act).instructions
        total_hard += hardened.execute(act).instructions
    overhead = total_hard / total_plain - 1.0
    print(f"\nhardening instruction overhead: {overhead:.2%}")
    assert overhead < 0.15
