"""Table II — Undetected faults.

Paper: the small population of undetected manifested faults breaks down as
mis-classified 10%, stack values 20%, time values 53%, other values 17% —
time-value delivery (unverifiable by duplication, since replicated rdtsc
reads differ) dominates.
"""

from __future__ import annotations

from repro.analysis import ComparisonTable, undetected_breakdown
from repro.faults.outcomes import UndetectedKind

PAPER = {
    UndetectedKind.MIS_CLASSIFY: 0.10,
    UndetectedKind.STACK_VALUES: 0.20,
    UndetectedKind.TIME_VALUES: 0.53,
    UndetectedKind.OTHER_VALUES: 0.17,
}


def test_table2_regenerate(benchmark, campaign_result):
    shares = benchmark(lambda: undetected_breakdown(campaign_result.records))
    table = ComparisonTable("Table II — undetected faults")
    for kind in UndetectedKind:
        table.add_percent(kind.value, PAPER[kind], shares.get(kind, 0.0))
    print("\n" + table.render())
    n_undetected = sum(
        1 for r in campaign_result.manifested if not r.detected
    )
    print(f"(undetected manifested faults: {n_undetected})")


def test_shares_sum_to_one(campaign_result):
    shares = undetected_breakdown(campaign_result.records)
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_time_values_are_a_leading_class(campaign_result):
    """The paper's core Table II observation: time delivery dominates the
    undetected population because it is pure branch-free data flow."""
    shares = undetected_breakdown(campaign_result.records)
    assert shares[UndetectedKind.TIME_VALUES] > 0.15
    assert shares[UndetectedKind.TIME_VALUES] >= shares[UndetectedKind.STACK_VALUES]


def test_every_kind_is_observed(campaign_result):
    shares = undetected_breakdown(campaign_result.records)
    for kind in UndetectedKind:
        assert shares.get(kind, 0.0) > 0.0, kind


def test_misclassify_is_minor(campaign_result):
    """Mis-classified (feature-visible but missed) faults are the smallest
    systematic class in the paper (10%)."""
    shares = undetected_breakdown(campaign_result.records)
    assert shares[UndetectedKind.MIS_CLASSIFY] < 0.5
