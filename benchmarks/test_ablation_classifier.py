"""Classifier ablations — the studies the paper ran but omitted.

Section III.B: "Due to the space limit, we omit the evaluation results and
discussions on various features, tree depth, and training set size."  This
harness performs those three studies on the reproduction: which of the five
Table I features carry the signal, how deep the tree must be, and how the
accuracy scales with the training set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import Dataset, RandomTreeClassifier, evaluate

#: Feature subsets for the ablation (indices into VMER, RT, BR, RM, WM).
FEATURE_SETS = {
    "all five (paper)": (0, 1, 2, 3, 4),
    "without VMER": (1, 2, 3, 4),
    "without RT": (0, 2, 3, 4),
    "VMER + RT only": (0, 1),
    "VMER only": (0,),
    "RT only": (1,),
}

DEPTHS = (2, 4, 8, 16, 32)
TRAIN_FRACTIONS = (0.05, 0.15, 0.4, 1.0)


def project(dataset: Dataset, columns: tuple[int, ...]) -> Dataset:
    return Dataset(
        dataset.X[:, list(columns)],
        dataset.y,
        tuple(dataset.feature_names[c] for c in columns),
    )


def fit_eval(train: Dataset, test: Dataset, **kw) -> float:
    clf = RandomTreeClassifier(
        max_depth=kw.get("max_depth", 32), min_samples_leaf=1, seed=3
    )
    clf.fit(train.oversampled(1, 3))
    return evaluate(test.y, clf.predict(test.X)).accuracy


class TestFeatureAblation:
    @pytest.fixture(scope="class")
    def accuracies(self, trained_bundle):
        train = trained_bundle.random_tree.train_set
        test = trained_bundle.random_tree.test_set
        return {
            name: fit_eval(project(train, cols), project(test, cols))
            for name, cols in FEATURE_SETS.items()
        }

    def test_ablation_regenerate(self, benchmark, accuracies):
        benchmark(lambda: accuracies)
        print("\nFeature ablation (random tree accuracy):")
        for name, acc in sorted(accuracies.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<20} {acc:7.2%}")

    def test_full_feature_set_is_best_or_tied(self, accuracies):
        best = max(accuracies.values())
        assert accuracies["all five (paper)"] >= best - 0.005

    def test_vmer_is_load_bearing(self, accuracies):
        """Counter values only make sense relative to the exit reason —
        dropping VMER may shuffle sub-percent noise (the counters correlate
        with the reason), but must not *beat* the full set meaningfully."""
        assert accuracies["all five (paper)"] >= accuracies["without VMER"] - 0.01

    def test_single_features_are_weakest(self, accuracies):
        assert accuracies["VMER only"] <= accuracies["all five (paper)"]
        assert accuracies["RT only"] <= accuracies["all five (paper)"]


class TestDepthSweep:
    @pytest.fixture(scope="class")
    def by_depth(self, trained_bundle):
        train = trained_bundle.random_tree.train_set
        test = trained_bundle.random_tree.test_set
        return {d: fit_eval(train, test, max_depth=d) for d in DEPTHS}

    def test_depth_sweep_regenerate(self, benchmark, by_depth):
        benchmark(lambda: by_depth)
        print("\nTree-depth sweep (random tree accuracy):")
        for depth, acc in by_depth.items():
            print(f"  depth {depth:>2}: {acc:7.2%}")

    def test_accuracy_saturates_with_depth(self, by_depth):
        assert by_depth[32] >= by_depth[2]
        # Depth 16 already captures nearly everything depth 32 does.
        assert by_depth[32] - by_depth[16] < 0.02


class TestTrainingSizeSweep:
    @pytest.fixture(scope="class")
    def by_fraction(self, trained_bundle):
        train = trained_bundle.random_tree.train_set
        test = trained_bundle.random_tree.test_set
        rng = np.random.default_rng(11)
        out = {}
        for fraction in TRAIN_FRACTIONS:
            if fraction >= 1.0:
                subset = train
            else:
                n = max(50, int(len(train) * fraction))
                subset = train.subset(rng.permutation(len(train))[:n])
            out[fraction] = fit_eval(subset, test)
        return out

    def test_size_sweep_regenerate(self, benchmark, by_fraction):
        benchmark(lambda: by_fraction)
        print("\nTraining-set-size sweep (random tree accuracy):")
        for fraction, acc in by_fraction.items():
            print(f"  {fraction:>5.0%} of the training set: {acc:7.2%}")

    def test_more_data_does_not_hurt(self, by_fraction):
        assert by_fraction[1.0] >= by_fraction[0.05] - 0.01
