"""ML inference throughput: per-row tree walks vs vectorized batch traversal.

Measures rows/sec classifying a large feature matrix through the compiled
rule table (``CompiledRules``) and the random forest, each both ways: the
per-row ``predict`` oracle and the level-synchronous ``predict_batch``.
Bit-identity between the two paths is asserted on every run — the speedup
must never change a single label.  A machine-readable summary is written to
``BENCH_ml.json`` next to this file (override with ``REPRO_BENCH_OUTPUT``).

The acceptance gate for the vectorization work is ≥ 10× on the single tree
at 200k rows; CI runs this as a non-blocking perf smoke because absolute
throughput varies across machines.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ml import (
    Dataset,
    DecisionTreeClassifier,
    RandomForestClassifier,
    compile_tree,
)

from benchmarks.conftest import SEED, scaled

N_ROWS = scaled(200_000)
N_TRAIN = 2_000
N_TREES = 15
TARGET_TREE_SPEEDUP = 10.0

OUTPUT = Path(
    os.environ.get("REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_ml.json")
)


def _training_data(rng: np.random.Generator) -> Dataset:
    """A feature-shaped dataset: 5 integer counters, threshold-separable
    labels with noise, mimicking the VM-transition feature space."""
    X = np.column_stack([
        rng.integers(0, 40, N_TRAIN),
        rng.integers(50, 800, N_TRAIN),
        rng.integers(0, 120, N_TRAIN),
        rng.integers(0, 90, N_TRAIN),
        rng.integers(0, 60, N_TRAIN),
    ]).astype(np.int64)
    y = ((X[:, 1] > 400) ^ (rng.random(N_TRAIN) < 0.05)).astype(np.int8)
    return Dataset(X, y)


def _timed(fn, X):
    t0 = time.perf_counter()
    labels = fn(X)
    elapsed = time.perf_counter() - t0
    return labels, {
        "elapsed_seconds": elapsed,
        "rows_per_sec": len(X) / elapsed if elapsed > 0 else 0.0,
    }


def test_ml_inference_throughput():
    rng = np.random.default_rng(SEED)
    train = _training_data(rng)
    rules = compile_tree(DecisionTreeClassifier(max_depth=16).fit(train))
    forest = RandomForestClassifier(n_trees=N_TREES, max_depth=12, seed=SEED)
    forest.fit(train)

    X = np.column_stack([
        rng.integers(0, 40, N_ROWS),
        rng.integers(50, 800, N_ROWS),
        rng.integers(0, 120, N_ROWS),
        rng.integers(0, 90, N_ROWS),
        rng.integers(0, 60, N_ROWS),
    ]).astype(np.int64)

    models = {}
    for name, model in (("tree", rules), ("forest", forest)):
        row_labels, row_stats = _timed(model.predict, X)
        batch_labels, batch_stats = _timed(model.predict_batch, X)
        # Vectorization must never change a label.
        assert (batch_labels == row_labels).all()
        models[name] = {
            "per_row": row_stats,
            "batch": batch_stats,
            "speedup": (
                batch_stats["rows_per_sec"] / row_stats["rows_per_sec"]
                if row_stats["rows_per_sec"]
                else 0.0
            ),
        }
    models["tree"]["max_depth"] = rules.max_depth
    models["tree"]["mean_traversal_depth"] = rules.mean_traversal_depth(X)
    models["forest"]["n_trees"] = N_TREES

    summary = {
        "format": "xentry-bench-ml-v1",
        "seed": SEED,
        "n_rows": N_ROWS,
        "models": models,
        "target_tree_speedup": TARGET_TREE_SPEEDUP,
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nml inference throughput — {N_ROWS:,} rows, seed {SEED}")
    print(f"{'model':<8} {'per-row r/s':>13} {'batch r/s':>13} {'speedup':>9}")
    for name, stats in models.items():
        print(
            f"{name:<8} {stats['per_row']['rows_per_sec']:13,.0f} "
            f"{stats['batch']['rows_per_sec']:13,.0f} "
            f"{stats['speedup']:8.1f}x"
        )
    print(f"summary written to {OUTPUT}")

    assert models["tree"]["speedup"] >= TARGET_TREE_SPEEDUP, (
        f"batch traversal regressed: {models['tree']['speedup']:.1f}x "
        f"< {TARGET_TREE_SPEEDUP}x over the per-row oracle at {N_ROWS:,} rows"
    )
    # The forest vote reduction rides the same tables; it must at least not
    # fall behind the scalar path.
    assert models["forest"]["speedup"] > 1.0
