"""Streaming-service throughput at fleet scale.

Runs the detection daemon's synchronous pipeline — fleet emission, bounded
per-host queues, global micro-batching, ``classify_batch`` scoring, full
metrics accounting — over >= 200 simulated hosts and reports sustained
rows/sec plus the p50/p95/p99 decision latency (emission to verdict, via
the analysis-layer CDF).  A machine-readable summary is written to
``BENCH_service.json`` next to this file (override with
``REPRO_BENCH_OUTPUT``) and committed, so the service's perf trajectory
stays CI-visible like the machine/ML benchmarks.

The floor is deliberately loose (absolute throughput varies across
machines); the committed JSON is the honest reference point.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ml import Dataset, DecisionTreeClassifier, compile_tree
from repro.service import DetectionService, FleetConfig, ServiceConfig

from benchmarks.conftest import SEED, scaled

N_HOSTS = 200
VMS_PER_HOST = 8
N_ROWS = scaled(400_000)
BATCH_ROWS = 1024
MIN_ROWS_PER_SEC = 20_000.0

OUTPUT = Path(
    os.environ.get(
        "REPRO_BENCH_OUTPUT", Path(__file__).parent / "BENCH_service.json"
    )
)


def _detector():
    """A realistically-sized compiled tree over the 5-feature space."""
    rng = np.random.default_rng(SEED)
    n = 4_000
    X = np.column_stack([
        rng.integers(0, 38, n),
        rng.integers(40, 900, n),
        rng.integers(0, 120, n),
        rng.integers(0, 90, n),
        rng.integers(0, 60, n),
    ]).astype(np.int64)
    # Positive labels sit at the top of the nominal RT envelope, so the
    # fitted tree behaves like a deployed detector: clean traffic rarely
    # trips it, scaled-out injected rows usually do.
    y = ((X[:, 1] > 870) ^ (rng.random(n) < 0.01)).astype(np.int8)
    return compile_tree(DecisionTreeClassifier(max_depth=16).fit(Dataset(X, y)))


def test_service_throughput():
    config = ServiceConfig(
        fleet=FleetConfig(
            hosts=N_HOSTS,
            vms_per_host=VMS_PER_HOST,
            seed=SEED,
            inject_fraction=0.02,
            rows_per_tick=4,
        ),
        batch_rows=BATCH_ROWS,
        queue_depth=4096,
        max_rows=N_ROWS,
    )
    service = DetectionService(config, _detector())
    t0 = time.perf_counter()
    report = service.run()
    elapsed = time.perf_counter() - t0

    assert report.totals.rows_scored == N_ROWS
    assert report.totals.rows_dropped == 0
    rows_per_sec = report.totals.rows_scored / elapsed
    pct = report.latency_percentiles

    summary = {
        "format": "xentry-bench-service-v1",
        "seed": SEED,
        "hosts": N_HOSTS,
        "vms_per_host": VMS_PER_HOST,
        "n_rows": N_ROWS,
        "batch_rows": BATCH_ROWS,
        "rows_per_sec": rows_per_sec,
        "elapsed_seconds": elapsed,
        "ticks": report.ticks,
        "detections": report.totals.detections,
        "detection_outcomes": report.totals.outcome_counts(),
        "latency_seconds": pct,
        "min_rows_per_sec": MIN_ROWS_PER_SEC,
    }
    OUTPUT.write_text(json.dumps(summary, indent=1))

    print(f"\nservice throughput — {N_HOSTS} hosts x {VMS_PER_HOST} VMs, "
          f"{N_ROWS:,} rows, batch {BATCH_ROWS}")
    print(f"  sustained: {rows_per_sec:,.0f} rows/s over {elapsed:.1f}s "
          f"({report.ticks:,} ticks)")
    print(f"  decisions: {report.totals.detections:,} detections "
          f"(TP {report.totals.true_positive:,} / "
          f"FP {report.totals.false_positive:,})")
    print(f"  latency:   p50 {pct['p50'] * 1e3:.2f} ms  "
          f"p95 {pct['p95'] * 1e3:.2f} ms  p99 {pct['p99'] * 1e3:.2f} ms")
    print(f"summary written to {OUTPUT}")

    assert rows_per_sec >= MIN_ROWS_PER_SEC, (
        f"service pipeline sustained {rows_per_sec:,.0f} rows/s, "
        f"below the {MIN_ROWS_PER_SEC:,.0f} floor"
    )
